//! Environment-knob parsing contracts.
//!
//! Kept in its own test binary (one test, own process) because
//! environment variables are process-global: the test owns
//! `CEDAR_SWEEP_THREADS` and `CEDAR_FAULT_SEED` end to end and cannot
//! race other tests. It pins the error-handling split:
//!
//! * thread counts (`CEDAR_SWEEP_THREADS`, and `CEDAR_NUM_THREADS`
//!   through the same parser) are *tuning* knobs — a garbage value logs
//!   a warning and falls back to the configured default, because a bad
//!   thread count should never abort a simulation whose results don't
//!   depend on it;
//! * `CEDAR_FAULT_SEED` *changes results* — a garbage value is a hard
//!   `InvalidConfig` error, because silently running a different fault
//!   plan than the one asked for is exactly what the deterministic
//!   fault layer exists to prevent;
//! * `CEDAR_TRACE_SEED` / `CEDAR_TRACE_SAMPLE_PPM` follow the strict
//!   convention too — tracing changes observable output (the `trace.*`
//!   stats keys and every trace report), so both variables are validated
//!   whenever set, even when the sampling rate would end up zero.

use cedar::experiments::sweep::sweep_threads;
use cedar_machine::config::{chunk_cycles_from_env, fault_seed_from_env, trace_plan_from_env};
use cedar_machine::MachineError;

#[test]
fn env_knobs_fall_back_or_fail_loudly() {
    // SAFETY: this binary runs exactly one test, so no other thread
    // touches the environment concurrently.

    // --- CEDAR_SWEEP_THREADS: lenient, warn-and-fall-back ---
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    std::env::set_var("CEDAR_SWEEP_THREADS", "3");
    assert_eq!(sweep_threads(), 3);
    for garbage in ["zero", "0", "-2", "1.5", ""] {
        std::env::set_var("CEDAR_SWEEP_THREADS", garbage);
        assert_eq!(
            sweep_threads(),
            host,
            "CEDAR_SWEEP_THREADS={garbage:?} must fall back to host parallelism"
        );
    }
    std::env::remove_var("CEDAR_SWEEP_THREADS");
    assert_eq!(sweep_threads(), host);

    // --- CEDAR_CHUNK_CYCLES: lenient, warn-and-fall-back ---
    // Chunk length is a tuning knob — the engine promises bit-identical
    // results at every value, so garbage must never abort a run. 0 is a
    // *legal* value (automatic lookahead), unlike the thread knobs.
    std::env::remove_var("CEDAR_CHUNK_CYCLES");
    assert_eq!(chunk_cycles_from_env(), None);
    std::env::set_var("CEDAR_CHUNK_CYCLES", "0");
    assert_eq!(chunk_cycles_from_env(), Some(0), "0 means automatic");
    std::env::set_var("CEDAR_CHUNK_CYCLES", "1");
    assert_eq!(chunk_cycles_from_env(), Some(1), "1 is the per-cycle hatch");
    std::env::set_var("CEDAR_CHUNK_CYCLES", " 4 ");
    assert_eq!(chunk_cycles_from_env(), Some(4), "whitespace is trimmed");
    for garbage in ["auto", "-1", "1.5", ""] {
        std::env::set_var("CEDAR_CHUNK_CYCLES", garbage);
        assert_eq!(
            chunk_cycles_from_env(),
            None,
            "CEDAR_CHUNK_CYCLES={garbage:?} must fall back to automatic"
        );
    }
    std::env::remove_var("CEDAR_CHUNK_CYCLES");

    // --- CEDAR_FAULT_SEED: strict, error on garbage ---
    std::env::remove_var("CEDAR_FAULT_SEED");
    assert_eq!(fault_seed_from_env().unwrap(), None);
    std::env::set_var("CEDAR_FAULT_SEED", "42");
    assert_eq!(fault_seed_from_env().unwrap(), Some(42));
    std::env::set_var("CEDAR_FAULT_SEED", "0xCEDA");
    assert_eq!(fault_seed_from_env().unwrap(), Some(0xCEDA));
    for garbage in ["not-a-seed", "-1", "0x", "1e9"] {
        std::env::set_var("CEDAR_FAULT_SEED", garbage);
        let err = fault_seed_from_env().unwrap_err();
        assert!(
            matches!(err, MachineError::InvalidConfig { .. }),
            "CEDAR_FAULT_SEED={garbage:?} must be InvalidConfig, got {err:?}"
        );
        assert!(
            err.to_string().contains("CEDAR_FAULT_SEED"),
            "the error should name the variable: {err}"
        );
    }
    std::env::remove_var("CEDAR_FAULT_SEED");

    // --- CEDAR_TRACE_SEED / CEDAR_TRACE_SAMPLE_PPM: strict pair ---
    std::env::remove_var("CEDAR_TRACE_SEED");
    std::env::remove_var("CEDAR_TRACE_SAMPLE_PPM");
    assert_eq!(trace_plan_from_env().unwrap(), None);

    // The seed alone never turns tracing on...
    std::env::set_var("CEDAR_TRACE_SEED", "0xCEDA");
    assert_eq!(trace_plan_from_env().unwrap(), None);
    // ...and neither does an explicit zero rate.
    std::env::set_var("CEDAR_TRACE_SAMPLE_PPM", "0");
    assert_eq!(trace_plan_from_env().unwrap(), None);

    std::env::set_var("CEDAR_TRACE_SAMPLE_PPM", "10000");
    let plan = trace_plan_from_env().unwrap().expect("tracing on");
    assert_eq!((plan.seed, plan.sample_ppm), (0xCEDA, 10_000));
    std::env::remove_var("CEDAR_TRACE_SEED");
    let plan = trace_plan_from_env().unwrap().expect("tracing on");
    assert_eq!(
        (plan.seed, plan.sample_ppm),
        (0, 10_000),
        "seed defaults to 0"
    );

    // Garbage in either variable is a hard error naming the variable —
    // even when the other variable would make the result None.
    for (var, garbage) in [
        ("CEDAR_TRACE_SAMPLE_PPM", "lots"),
        ("CEDAR_TRACE_SAMPLE_PPM", "-1"),
        ("CEDAR_TRACE_SAMPLE_PPM", "1000001"),
        ("CEDAR_TRACE_SAMPLE_PPM", "1e4"),
        ("CEDAR_TRACE_SEED", "not-a-seed"),
        ("CEDAR_TRACE_SEED", "0x"),
    ] {
        std::env::remove_var("CEDAR_TRACE_SEED");
        std::env::set_var("CEDAR_TRACE_SAMPLE_PPM", "0"); // would be None if valid
        std::env::set_var(var, garbage);
        let err = trace_plan_from_env().unwrap_err();
        assert!(
            matches!(err, MachineError::InvalidConfig { .. }),
            "{var}={garbage:?} must be InvalidConfig, got {err:?}"
        );
        assert!(
            err.to_string().contains(var),
            "the error should name the variable: {err}"
        );
    }
    std::env::remove_var("CEDAR_TRACE_SEED");
    std::env::remove_var("CEDAR_TRACE_SAMPLE_PPM");
}

//! Environment-knob parsing contracts.
//!
//! Kept in its own test binary (one test, own process) because
//! environment variables are process-global: the test owns
//! `CEDAR_SWEEP_THREADS` and `CEDAR_FAULT_SEED` end to end and cannot
//! race other tests. It pins the error-handling split:
//!
//! * thread counts (`CEDAR_SWEEP_THREADS`, and `CEDAR_NUM_THREADS`
//!   through the same parser) are *tuning* knobs — a garbage value logs
//!   a warning and falls back to the configured default, because a bad
//!   thread count should never abort a simulation whose results don't
//!   depend on it;
//! * `CEDAR_FAULT_SEED` *changes results* — a garbage value is a hard
//!   `InvalidConfig` error, because silently running a different fault
//!   plan than the one asked for is exactly what the deterministic
//!   fault layer exists to prevent;
//! * `CEDAR_TRACE_SEED` / `CEDAR_TRACE_SAMPLE_PPM` follow the strict
//!   convention too — tracing changes observable output (the `trace.*`
//!   stats keys and every trace report), so both variables are validated
//!   whenever set, even when the sampling rate would end up zero.

use cedar::experiments::sweep::sweep_threads;
use cedar_machine::config::{
    checkpoint_every_from_env, checkpoint_path_from_env, chunk_cycles_from_env,
    fault_seed_from_env, trace_plan_from_env,
};
use cedar_machine::{MachineConfig, MachineError};

#[test]
fn env_knobs_fall_back_or_fail_loudly() {
    // SAFETY: this binary runs exactly one test, so no other thread
    // touches the environment concurrently.

    // --- CEDAR_SWEEP_THREADS: lenient, warn-and-fall-back ---
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    std::env::set_var("CEDAR_SWEEP_THREADS", "3");
    assert_eq!(sweep_threads(), 3);
    for garbage in ["zero", "0", "-2", "1.5", ""] {
        std::env::set_var("CEDAR_SWEEP_THREADS", garbage);
        assert_eq!(
            sweep_threads(),
            host,
            "CEDAR_SWEEP_THREADS={garbage:?} must fall back to host parallelism"
        );
    }
    std::env::remove_var("CEDAR_SWEEP_THREADS");
    assert_eq!(sweep_threads(), host);

    // --- CEDAR_CHUNK_CYCLES: lenient, warn-and-fall-back ---
    // Chunk length is a tuning knob — the engine promises bit-identical
    // results at every value, so garbage must never abort a run. 0 is a
    // *legal* value (automatic lookahead), unlike the thread knobs.
    std::env::remove_var("CEDAR_CHUNK_CYCLES");
    assert_eq!(chunk_cycles_from_env(), None);
    std::env::set_var("CEDAR_CHUNK_CYCLES", "0");
    assert_eq!(chunk_cycles_from_env(), Some(0), "0 means automatic");
    std::env::set_var("CEDAR_CHUNK_CYCLES", "1");
    assert_eq!(chunk_cycles_from_env(), Some(1), "1 is the per-cycle hatch");
    std::env::set_var("CEDAR_CHUNK_CYCLES", " 4 ");
    assert_eq!(chunk_cycles_from_env(), Some(4), "whitespace is trimmed");
    for garbage in ["auto", "-1", "1.5", ""] {
        std::env::set_var("CEDAR_CHUNK_CYCLES", garbage);
        assert_eq!(
            chunk_cycles_from_env(),
            None,
            "CEDAR_CHUNK_CYCLES={garbage:?} must fall back to automatic"
        );
    }
    std::env::remove_var("CEDAR_CHUNK_CYCLES");

    // --- CEDAR_FAULT_SEED: strict, error on garbage ---
    std::env::remove_var("CEDAR_FAULT_SEED");
    assert_eq!(fault_seed_from_env().unwrap(), None);
    std::env::set_var("CEDAR_FAULT_SEED", "42");
    assert_eq!(fault_seed_from_env().unwrap(), Some(42));
    std::env::set_var("CEDAR_FAULT_SEED", "0xCEDA");
    assert_eq!(fault_seed_from_env().unwrap(), Some(0xCEDA));
    for garbage in ["not-a-seed", "-1", "0x", "1e9"] {
        std::env::set_var("CEDAR_FAULT_SEED", garbage);
        let err = fault_seed_from_env().unwrap_err();
        assert!(
            matches!(err, MachineError::InvalidConfig { .. }),
            "CEDAR_FAULT_SEED={garbage:?} must be InvalidConfig, got {err:?}"
        );
        assert!(
            err.to_string().contains("CEDAR_FAULT_SEED"),
            "the error should name the variable: {err}"
        );
    }
    std::env::remove_var("CEDAR_FAULT_SEED");

    // --- CEDAR_TRACE_SEED / CEDAR_TRACE_SAMPLE_PPM: strict pair ---
    std::env::remove_var("CEDAR_TRACE_SEED");
    std::env::remove_var("CEDAR_TRACE_SAMPLE_PPM");
    assert_eq!(trace_plan_from_env().unwrap(), None);

    // The seed alone never turns tracing on...
    std::env::set_var("CEDAR_TRACE_SEED", "0xCEDA");
    assert_eq!(trace_plan_from_env().unwrap(), None);
    // ...and neither does an explicit zero rate.
    std::env::set_var("CEDAR_TRACE_SAMPLE_PPM", "0");
    assert_eq!(trace_plan_from_env().unwrap(), None);

    std::env::set_var("CEDAR_TRACE_SAMPLE_PPM", "10000");
    let plan = trace_plan_from_env().unwrap().expect("tracing on");
    assert_eq!((plan.seed, plan.sample_ppm), (0xCEDA, 10_000));
    std::env::remove_var("CEDAR_TRACE_SEED");
    let plan = trace_plan_from_env().unwrap().expect("tracing on");
    assert_eq!(
        (plan.seed, plan.sample_ppm),
        (0, 10_000),
        "seed defaults to 0"
    );

    // Garbage in either variable is a hard error naming the variable —
    // even when the other variable would make the result None.
    for (var, garbage) in [
        ("CEDAR_TRACE_SAMPLE_PPM", "lots"),
        ("CEDAR_TRACE_SAMPLE_PPM", "-1"),
        ("CEDAR_TRACE_SAMPLE_PPM", "1000001"),
        ("CEDAR_TRACE_SAMPLE_PPM", "1e4"),
        ("CEDAR_TRACE_SEED", "not-a-seed"),
        ("CEDAR_TRACE_SEED", "0x"),
    ] {
        std::env::remove_var("CEDAR_TRACE_SEED");
        std::env::set_var("CEDAR_TRACE_SAMPLE_PPM", "0"); // would be None if valid
        std::env::set_var(var, garbage);
        let err = trace_plan_from_env().unwrap_err();
        assert!(
            matches!(err, MachineError::InvalidConfig { .. }),
            "{var}={garbage:?} must be InvalidConfig, got {err:?}"
        );
        assert!(
            err.to_string().contains(var),
            "the error should name the variable: {err}"
        );
    }
    std::env::remove_var("CEDAR_TRACE_SEED");
    std::env::remove_var("CEDAR_TRACE_SAMPLE_PPM");

    // --- CEDAR_CHECKPOINT_EVERY: strict, error on garbage ---
    // Checkpointing silently off when CI or an operator asked for it
    // would void the crash-recovery guarantee: the run would finish,
    // report correct results, and leave nothing to resume from.
    std::env::remove_var("CEDAR_CHECKPOINT_EVERY");
    assert_eq!(checkpoint_every_from_env().unwrap(), None);
    std::env::set_var("CEDAR_CHECKPOINT_EVERY", "50000");
    assert_eq!(checkpoint_every_from_env().unwrap(), Some(50_000));
    std::env::set_var("CEDAR_CHECKPOINT_EVERY", " 128 ");
    assert_eq!(
        checkpoint_every_from_env().unwrap(),
        Some(128),
        "whitespace is trimmed"
    );
    std::env::set_var("CEDAR_CHECKPOINT_EVERY", "0");
    assert_eq!(
        checkpoint_every_from_env().unwrap(),
        Some(0),
        "0 is legal: it switches a configured interval off"
    );
    for garbage in ["often", "-1", "1.5", "1e6", ""] {
        std::env::set_var("CEDAR_CHECKPOINT_EVERY", garbage);
        let err = checkpoint_every_from_env().unwrap_err();
        assert!(
            matches!(err, MachineError::InvalidConfig { .. }),
            "CEDAR_CHECKPOINT_EVERY={garbage:?} must be InvalidConfig, got {err:?}"
        );
        assert!(
            err.to_string().contains("CEDAR_CHECKPOINT_EVERY"),
            "the error should name the variable: {err}"
        );
    }
    std::env::remove_var("CEDAR_CHECKPOINT_EVERY");

    // --- CEDAR_CHECKPOINT_PATH: strict, error on empty ---
    // An empty value almost certainly means a CI variable expansion came
    // up empty; "checkpoint to nowhere" must not pass silently.
    std::env::remove_var("CEDAR_CHECKPOINT_PATH");
    assert_eq!(checkpoint_path_from_env().unwrap(), None);
    std::env::set_var("CEDAR_CHECKPOINT_PATH", "/tmp/cedar.snap");
    assert_eq!(
        checkpoint_path_from_env().unwrap(),
        Some(std::path::PathBuf::from("/tmp/cedar.snap"))
    );
    for empty in ["", "   "] {
        std::env::set_var("CEDAR_CHECKPOINT_PATH", empty);
        let err = checkpoint_path_from_env().unwrap_err();
        assert!(
            matches!(err, MachineError::InvalidConfig { .. }),
            "CEDAR_CHECKPOINT_PATH={empty:?} must be InvalidConfig, got {err:?}"
        );
        assert!(
            err.to_string().contains("CEDAR_CHECKPOINT_PATH"),
            "the error should name the variable: {err}"
        );
    }
    std::env::remove_var("CEDAR_CHECKPOINT_PATH");

    // --- the pair through the config builder ---
    std::env::set_var("CEDAR_CHECKPOINT_EVERY", "4096");
    std::env::set_var("CEDAR_CHECKPOINT_PATH", "/tmp/cedar.snap");
    let cfg = MachineConfig::cedar().with_env_checkpoint().unwrap();
    assert_eq!(cfg.checkpoint_every, 4096);
    assert_eq!(
        cfg.checkpoint_path,
        Some(std::path::PathBuf::from("/tmp/cedar.snap"))
    );
    // An interval without a destination cannot validate: the misconfig
    // surfaces at machine construction, not as a skipped checkpoint.
    std::env::remove_var("CEDAR_CHECKPOINT_PATH");
    let cfg = MachineConfig::cedar().with_env_checkpoint().unwrap();
    assert_eq!(cfg.checkpoint_every, 4096);
    assert!(
        cfg.validate().unwrap_err().contains("checkpoint"),
        "interval-without-path must fail validation"
    );
    std::env::remove_var("CEDAR_CHECKPOINT_EVERY");
}

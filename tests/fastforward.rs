//! Equivalence tests for the event-horizon fast-forward.
//!
//! The fast-forward path (`MachineConfig::fast_forward`, on by default)
//! skips cycles in which no subsystem can change externally visible
//! state, bulk-crediting them into the same counters a cycle-by-cycle run
//! would have bumped. Its contract is *bit-for-bit* equivalence: the same
//! cycle count, the same final memory digest and the same full stats tree
//! as a run with skipping disabled — at every thread count. These tests
//! pin that contract on the paper's Table 1 rows, on a Perfect code
//! through the Fortran pipeline, and on synthetic barrier-heavy programs
//! built to maximize quiescent stretches.

use cedar_fortran::compile::Backend;
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::{MemOperand, Op, Program, ProgramBuilder, VectorOp};
use cedar_machine::sched::BarrierScope;
use cedar_machine::stats::export::flat_text;
use cedar_machine::{ClusterId, MachineConfig, MachineStats};
use cedar_perfect::codes::{spec, CodeName};
use cedar_xylem::costs::XylemCosts;

const LIMIT: u64 = 1_000_000_000;

/// `CEDAR_NO_FASTFWD=1` (a CI matrix leg) overrides the config flag, so
/// "fast-forward on" runs silently stop skipping. The *equivalence*
/// assertions must hold on every leg; the "actually skipped" assertions
/// only apply when skipping is possible at all.
fn skipping_possible() -> bool {
    !cedar_machine::config::fastfwd_disabled_from_env()
}

/// Everything a run can leak about its execution, plus how many cycles
/// the fast-forward jumped over while producing it.
struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
    skipped: u64,
}

/// Compare a fast-forwarded run against the unskipped baseline, with a
/// readable counter diff on mismatch.
fn assert_equivalent(label: &str, base: &Fingerprint, got: &Fingerprint) {
    assert_eq!(
        base.cycles, got.cycles,
        "{label}: fast-forward run took {} cycles, baseline took {}",
        got.cycles, base.cycles
    );
    assert_eq!(
        base.memory, got.memory,
        "{label}: fast-forward run left different memory state"
    );
    if base.stats != got.stats {
        let baseline = flat_text(&base.stats);
        let fast = flat_text(&got.stats);
        let diff: Vec<String> = baseline
            .lines()
            .zip(fast.lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  baseline:     {a}\n  fast-forward: {b}"))
            .collect();
        panic!(
            "{label}: fast-forward stats tree differs from baseline:\n{}",
            diff.join("\n")
        );
    }
}

fn fingerprint_run(
    cfg: MachineConfig,
    build: impl FnOnce(&mut Machine) -> Vec<(CeId, Program)>,
) -> Fingerprint {
    let mut m = Machine::new(cfg).unwrap();
    let progs = build(&mut m);
    let r = m.run(progs, LIMIT).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
        skipped: m.fastforward_skipped_cycles(),
    }
}

fn run_rank64(version: Rank64Version, fast_forward: bool, threads: usize) -> Fingerprint {
    let clusters = 4;
    let cfg = MachineConfig::cedar_with_clusters(clusters)
        .with_threads(threads)
        .with_fast_forward(fast_forward);
    fingerprint_run(cfg, |m| {
        Rank64 {
            n: 64,
            k: 64,
            version,
        }
        .build(m, clusters)
    })
}

/// Every Table 1 memory version produces a bit-identical fingerprint with
/// fast-forward on, serially and in the parallel engine.
#[test]
fn table1_rows_match_with_fastforward_on() {
    for version in [
        Rank64Version::GmNoPrefetch,
        Rank64Version::GmPrefetch { block_words: 32 },
        Rank64Version::GmCache,
    ] {
        let label = format!("table1 {version:?}");
        let base = run_rank64(version, false, 1);
        assert_eq!(base.skipped, 0, "{label}: baseline must not skip");
        for threads in [1, 2, 4] {
            let got = run_rank64(version, true, threads);
            assert_equivalent(&format!("{label} x{threads} threads"), &base, &got);
        }
    }
}

/// A barrier-heavy synthetic: each round, one CE per cluster computes for
/// thousands of cycles while its seven siblings wait at a cluster
/// barrier. Almost the entire run is quiescent, so this both maximizes
/// what fast-forward can get wrong and proves it actually skips.
fn barrier_storm(m: &mut Machine, rounds: u32, work: u32) -> Vec<(CeId, Program)> {
    let clusters = m.config().clusters;
    let cpc = m.config().ces_per_cluster;
    let bars: Vec<_> = (0..clusters)
        .map(|c| m.alloc_barrier(BarrierScope::Cluster(ClusterId(c)), cpc as u32))
        .collect();
    let mut progs = Vec::new();
    for ce in 0..clusters * cpc {
        let cluster = ce / cpc;
        let mut b = ProgramBuilder::new();
        b.repeat(rounds, |b| {
            // Rotate the long worker so every CE takes turns stalling the
            // others (and the waiters' credit lands on every engine).
            if ce % cpc == 0 {
                b.scalar(work);
            } else {
                b.vector(VectorOp {
                    length: 16,
                    flops_per_element: 2,
                    operand: MemOperand::None,
                });
            }
            b.push(Op::Barrier {
                barrier: bars[cluster],
            });
        });
        progs.push((CeId(ce), b.build()));
    }
    progs
}

fn run_barrier_storm(fast_forward: bool, threads: usize) -> Fingerprint {
    let cfg = MachineConfig::cedar()
        .with_threads(threads)
        .with_fast_forward(fast_forward);
    fingerprint_run(cfg, |m| barrier_storm(m, 20, 4_000))
}

/// The barrier storm is bit-identical with fast-forward on at 1, 2 and 4
/// threads — and the skip counter confirms the fast path actually ran.
#[test]
fn barrier_storm_matches_and_actually_skips() {
    let base = run_barrier_storm(false, 1);
    assert_eq!(base.skipped, 0);
    for threads in [1, 2, 4] {
        let got = run_barrier_storm(true, threads);
        assert_equivalent(&format!("barrier storm x{threads} threads"), &base, &got);
        if skipping_possible() {
            assert!(
                got.skipped > base.cycles / 2,
                "barrier storm should be mostly skippable: skipped {} of {} cycles",
                got.skipped,
                base.cycles
            );
        }
    }
}

/// Global barriers poll memory with exponential backoff; the stretches
/// between polls are exactly the kind of short quiescent window the
/// chunked skip has to credit correctly (CE stall attribution, module
/// queues, timeline buckets).
#[test]
fn global_barrier_imbalance_matches() {
    let run = |fast_forward: bool| {
        let cfg = MachineConfig::cedar().with_fast_forward(fast_forward);
        fingerprint_run(cfg, |m| {
            let total = m.config().total_ces();
            let barrier = m.alloc_barrier(BarrierScope::Global, total as u32);
            let mut progs = Vec::new();
            for ce in 0..total {
                let mut b = ProgramBuilder::new();
                b.repeat(4, |b| {
                    if ce == 0 {
                        b.scalar(20_000);
                    }
                    b.push(Op::Barrier { barrier });
                });
                progs.push((CeId(ce), b.build()));
            }
            progs
        })
    };
    let base = run(false);
    let got = run(true);
    assert_equivalent("global barrier imbalance", &base, &got);
    if skipping_possible() {
        assert!(got.skipped > 0, "imbalanced global barrier should skip");
    }
}

fn run_perfect(fast_forward: bool, threads: usize) -> Fingerprint {
    let clusters = 4;
    let src = spec(CodeName::Trfd).to_source();
    let compiled = Restructurer::default().restructure(&src, Level::Automatable);
    let backend = Backend::new(XylemCosts::cedar());
    let cfg = MachineConfig::cedar_with_clusters(clusters)
        .with_threads(threads)
        .with_fast_forward(fast_forward);
    fingerprint_run(cfg, |m| backend.lower(&compiled, m, clusters))
}

/// A Perfect-benchmark code through the full Fortran pipeline: the
/// fingerprint with fast-forward on equals the unskipped baseline at 1, 2
/// and 4 threads.
#[test]
fn perfect_trfd_matches_across_thread_counts() {
    let base = run_perfect(false, 1);
    assert!(base.cycles > 0);
    for threads in [1, 2, 4] {
        let got = run_perfect(true, threads);
        assert_equivalent(&format!("perfect TRFD x{threads} threads"), &base, &got);
    }
}

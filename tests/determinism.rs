//! Determinism / equivalence tests for the parallel execution engine.
//!
//! The multi-threaded engine (`MachineConfig::num_threads > 1`) promises
//! bit-for-bit equivalence with the single-threaded simulator: identical
//! cycle counts, identical final memory state, and an identical
//! stats-counter tree, whatever the thread count. These tests pin that
//! guarantee on the workloads the paper's tables are built from: the
//! rank-64 update (Table 1 rows: every memory version at every cluster
//! count) and a Perfect-benchmark code compiled through the Fortran
//! pipeline.
//!
//! The guarantee extends to fault injection: when `CEDAR_FAULT_SEED` is
//! set (CI's faults leg), every workload here reruns with a transient
//! fault plan at that seed, and the equivalence assertions then cover
//! the drop/NACK/retry machinery too — injected faults are part of the
//! fingerprint, so they must land on the same packets at every thread
//! count. The same mechanism covers journey tracing: CI's tracing leg
//! sets `CEDAR_TRACE_SAMPLE_PPM`, and the `trace.*` stats keys then join
//! the fingerprint.

use cedar_fortran::compile::Backend;
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::config::{fault_seed_from_env, trace_plan_from_env};
use cedar_machine::machine::Machine;
use cedar_machine::stats::export::flat_text;
use cedar_machine::{FaultPlan, MachineConfig, MachineStats};

/// CI's faults leg: `CEDAR_FAULT_SEED` turns every determinism workload
/// into a faulty one (2000 ppm drops, 1000 ppm NACKs at that seed). A
/// garbage value is a hard error — the strict parser, pinned separately
/// in `env_knobs.rs`, forbids silently running a different plan.
fn with_env_faults(cfg: MachineConfig) -> MachineConfig {
    match fault_seed_from_env().expect("CEDAR_FAULT_SEED must be a u64") {
        Some(seed) => cfg.with_faults(FaultPlan {
            drop_per_million: 2_000,
            nack_per_million: 1_000,
            ..FaultPlan::none(seed)
        }),
        None => cfg,
    }
}

/// CI's tracing leg: `CEDAR_TRACE_SAMPLE_PPM` (with `CEDAR_TRACE_SEED`)
/// turns every determinism workload into a traced one. Sampled journeys
/// land in the `trace.*` stats keys, so the equivalence assertions then
/// cover the tracing layer's cross-thread merge too.
fn with_env_knobs(cfg: MachineConfig) -> MachineConfig {
    let cfg = with_env_faults(cfg);
    match trace_plan_from_env().expect("CEDAR_TRACE_* must be valid") {
        Some(plan) => cfg.with_trace(plan),
        None => cfg,
    }
}
use cedar_perfect::codes::{spec, CodeName};
use cedar_xylem::costs::XylemCosts;

/// Everything a run can leak about its execution: cycle count, a digest
/// of the persistent memory state (global sync words + cache tag arrays),
/// and the full stats-counter tree.
struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
}

/// Compare `got` (run on `threads` threads) against the single-threaded
/// `base`, with a readable counter diff on mismatch.
fn assert_equivalent(label: &str, threads: usize, base: &Fingerprint, got: &Fingerprint) {
    assert_eq!(
        base.cycles, got.cycles,
        "{label}: {threads}-thread run took {} cycles, serial took {}",
        got.cycles, base.cycles
    );
    assert_eq!(
        base.memory, got.memory,
        "{label}: {threads}-thread run left different memory state"
    );
    if base.stats != got.stats {
        let serial = flat_text(&base.stats);
        let parallel = flat_text(&got.stats);
        let diff: Vec<String> = serial
            .lines()
            .zip(parallel.lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  serial:   {a}\n  {threads}-thread: {b}"))
            .collect();
        panic!(
            "{label}: {threads}-thread stats tree differs from serial:\n{}",
            diff.join("\n")
        );
    }
}

fn run_rank64(clusters: usize, threads: usize, version: Rank64Version, n: u32) -> Fingerprint {
    let cfg = with_env_knobs(MachineConfig::cedar_with_clusters(clusters).with_threads(threads));
    let mut m = Machine::new(cfg).unwrap();
    let kern = Rank64 { n, k: 64, version };
    let progs = kern.build(&mut m, clusters);
    let r = m.run(progs, 1_000_000_000).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    }
}

/// Like [`run_rank64`] with the lookahead-chunk length and fast-forward
/// pinned through the config builder (not the environment, so these legs
/// stay meaningful under CI's `CEDAR_CHUNK_CYCLES` matrix).
fn run_rank64_chunked(
    threads: usize,
    chunk: usize,
    fastfwd: bool,
    version: Rank64Version,
    n: u32,
) -> Fingerprint {
    let cfg = with_env_knobs(
        MachineConfig::cedar_with_clusters(4)
            .with_threads(threads)
            .with_chunk_cycles(chunk)
            .with_fast_forward(fastfwd),
    );
    let mut m = Machine::new(cfg).unwrap();
    let kern = Rank64 { n, k: 64, version };
    let progs = kern.build(&mut m, 4);
    let r = m.run(progs, 1_000_000_000).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    }
}

/// The lookahead-chunking guarantee: every chunk length — the per-cycle
/// hatch (1), a mid-range cap (4), the automatic bound (0, which
/// resolves to `service_cycles + 4` = 6 on a quiet Cedar), and an
/// oversized cap the lookahead must clamp (64) — produces the serial
/// fingerprint at every thread count, fast-forward on or off.
#[test]
fn chunk_lengths_are_deterministic() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    for fastfwd in [true, false] {
        let base = run_rank64_chunked(1, 0, fastfwd, version, 64);
        assert!(base.cycles > 0);
        for chunk in [1usize, 4, 0, 64] {
            for threads in [2usize, 4, 8] {
                let got = run_rank64_chunked(threads, chunk, fastfwd, version, 64);
                assert_equivalent(
                    &format!("rank64 chunk={chunk} fastfwd={fastfwd}"),
                    threads,
                    &base,
                    &got,
                );
            }
        }
    }
}

/// The cache version keeps the network busier (misses and write-backs
/// rather than regular prefetch bursts), so its chunk schedule collapses
/// to one cycle far more often — a different interleaving of the chunked
/// and per-cycle paths that must still be invisible.
#[test]
fn chunking_is_deterministic_under_cache_traffic() {
    let version = Rank64Version::GmCache;
    let base = run_rank64_chunked(1, 0, true, version, 64);
    for chunk in [0usize, 4] {
        for threads in [2usize, 4] {
            let got = run_rank64_chunked(threads, chunk, true, version, 64);
            assert_equivalent(
                &format!("rank64 gm-cache chunk={chunk}"),
                threads,
                &base,
                &got,
            );
        }
    }
}

/// The headline guarantee: the rank-64 kernel on the full machine is
/// bit-identical at 1, 2 and 4 threads.
#[test]
fn rank64_is_deterministic_across_thread_counts() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let base = run_rank64(4, 1, version, 64);
    assert!(base.cycles > 0);
    for threads in [2, 4] {
        let got = run_rank64(4, threads, version, 64);
        assert_equivalent("rank64 gm+prefetch", threads, &base, &got);
    }
}

/// Every Table 1 row (memory version × cluster count, at test scale)
/// produces the same fingerprint under the parallel engine, including
/// thread counts that split the clusters unevenly (3 threads over 4
/// clusters → shards of 2/1/1).
#[test]
fn table1_rows_are_deterministic() {
    for version in [
        Rank64Version::GmNoPrefetch,
        Rank64Version::GmPrefetch { block_words: 32 },
        Rank64Version::GmCache,
    ] {
        let label = format!("table1 {version:?} x4 clusters");
        let base = run_rank64(4, 1, version, 64);
        for threads in [2, 3, 4] {
            let got = run_rank64(4, threads, version, 64);
            assert_equivalent(&label, threads, &base, &got);
        }
    }
    // A partial machine with an uneven shard split: 3 clusters over 2
    // threads (shards of 2/1).
    let version = Rank64Version::GmCache;
    let base = run_rank64(3, 1, version, 64);
    let got = run_rank64(3, 2, version, 64);
    assert_equivalent("table1 GmCache x3 clusters", 2, &base, &got);
}

/// Thread counts beyond the cluster count are capped, not an error: an
/// 8-thread request on a 4-cluster machine behaves like 4 threads.
#[test]
fn excess_threads_are_capped_at_the_cluster_count() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let base = run_rank64(4, 1, version, 32);
    let got = run_rank64(4, 8, version, 32);
    assert_equivalent("rank64 with excess threads", 8, &base, &got);
}

fn run_perfect(code: CodeName, threads: usize) -> Fingerprint {
    let clusters = 4;
    let src = spec(code).to_source();
    let compiled = Restructurer::default().restructure(&src, Level::Automatable);
    let backend = Backend::new(XylemCosts::cedar());
    let cfg = with_env_knobs(MachineConfig::cedar_with_clusters(clusters).with_threads(threads));
    let mut m = Machine::new(cfg).unwrap();
    let progs = backend.lower(&compiled, &mut m, clusters);
    let r = m.run(progs, 4_000_000_000).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    }
}

/// A Perfect-benchmark code through the full Fortran pipeline (TRFD at
/// the automatable level) is bit-identical at 1, 2 and 4 threads.
#[test]
fn perfect_trfd_is_deterministic_across_thread_counts() {
    let base = run_perfect(CodeName::Trfd, 1);
    assert!(base.cycles > 0);
    for threads in [2, 4] {
        let got = run_perfect(CodeName::Trfd, threads);
        assert_equivalent("perfect TRFD automatable", threads, &base, &got);
    }
}

//! Crash-recovery proof harness for the snapshot subsystem.
//!
//! The checkpoint/restore guarantee is determinism-grade: a run killed
//! at an arbitrary cycle and resumed from its last auto-checkpoint
//! produces the *bit-identical* report — cycle count, memory digest and
//! full stats tree — of the uninterrupted run. These tests kill runs at
//! adversarial points (mid outage window, under fault retries, under
//! journey tracing, mid lookahead chunk) across the full engine matrix:
//! serial and parallel, every chunk length class, fast-forward on and
//! off, tree-walking and lowered execution, and the Fortran pipeline.
//!
//! The second half pins the failure envelope: torn, truncated,
//! corrupted, foreign and future-versioned images — and images restored
//! onto differently shaped machines — are each rejected with a
//! structured `MachineError::Snapshot`, never a panic and never a
//! silent partial restore. A property test drives the corruption case
//! harder: *any* single bit flip anywhere in an image must be caught.

use std::path::PathBuf;

use proptest::prelude::*;

use cedar_fortran::compile::Backend;
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::Program;
use cedar_machine::stats::export::flat_text;
use cedar_machine::{
    FaultPlan, LinkOutage, MachineConfig, MachineError, MachineStats, ModuleOutage, TracePlan,
};
use cedar_perfect::codes::{spec, CodeName};
use cedar_xylem::costs::XylemCosts;

const LIMIT: u64 = 1_000_000_000;

/// Everything a run can leak: cycle count, a digest of the persistent
/// memory state, and the full stats-counter tree.
struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
}

fn assert_identical(label: &str, base: &Fingerprint, got: &Fingerprint) {
    assert_eq!(
        base.cycles, got.cycles,
        "{label}: resumed run took {} cycles, uninterrupted took {}",
        got.cycles, base.cycles
    );
    assert_eq!(
        base.memory, got.memory,
        "{label}: resumed run left different memory state"
    );
    if base.stats != got.stats {
        let a = flat_text(&base.stats);
        let b = flat_text(&got.stats);
        let diff: Vec<String> = a
            .lines()
            .zip(b.lines())
            .filter(|(x, y)| x != y)
            .map(|(x, y)| format!("  uninterrupted: {x}\n  resumed:       {y}"))
            .collect();
        panic!(
            "{label}: resumed stats tree differs from uninterrupted:\n{}",
            diff.join("\n")
        );
    }
}

/// A per-test scratch snapshot path under the system temp dir, removed
/// on drop so reruns never resume from a stale image.
struct SnapFile(PathBuf);

impl SnapFile {
    fn new(test: &str) -> SnapFile {
        let p = std::env::temp_dir().join(format!("cedar-snap-{}-{test}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        SnapFile(p)
    }
}

impl Drop for SnapFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn build_rank64(m: &mut Machine, clusters: usize, version: Rank64Version) -> Vec<(CeId, Program)> {
    Rank64 {
        n: 64,
        k: 64,
        version,
    }
    .build(m, clusters)
}

fn uninterrupted(cfg: &MachineConfig, clusters: usize, version: Rank64Version) -> Fingerprint {
    let mut m = Machine::new(cfg.clone()).unwrap();
    let progs = build_rank64(&mut m, clusters, version);
    let r = m.run(progs, LIMIT).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    }
}

/// The core harness move: kill a checkpointing run at `kill_at` cycles
/// via the cycle limit, assert the crash left a valid image behind, then
/// resume it on a fresh machine and return the resumed fingerprint.
fn kill_then_resume(
    label: &str,
    cfg: &MachineConfig,
    clusters: usize,
    version: Rank64Version,
    every: u64,
    kill_at: u64,
    snap: &SnapFile,
) -> Fingerprint {
    let killed_cfg = cfg.clone().with_checkpoint(every, &snap.0);
    let mut killed = Machine::new(killed_cfg).unwrap();
    let progs = build_rank64(&mut killed, clusters, version);
    match killed.run(progs, kill_at) {
        Err(MachineError::CycleLimitExceeded { .. }) => {}
        other => panic!("{label}: kill run should hit the cycle limit, got {other:?}"),
    }
    drop(killed); // the crash: the mid-run machine is gone
    assert!(
        snap.0.exists(),
        "{label}: no checkpoint file at {} after the kill",
        snap.0.display()
    );

    let mut resumed = Machine::new(cfg.clone()).unwrap();
    let progs = build_rank64(&mut resumed, clusters, version);
    let r = resumed
        .resume_from_file(progs, &snap.0, LIMIT)
        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
    Fingerprint {
        cycles: r.cycles,
        memory: resumed.memory_digest(),
        stats: r.stats,
    }
}

/// Serial engine: kills at an early, a late and a nearly-done cycle all
/// resume to the uninterrupted fingerprint, and resuming from the same
/// image twice is idempotent.
#[test]
fn serial_kill_and_resume_is_bit_identical() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let cfg = MachineConfig::cedar_with_clusters(4);
    let base = uninterrupted(&cfg, 4, version);
    let t = base.cycles;
    assert!(t > 100, "workload too small to place kills ({t} cycles)");
    let snap = SnapFile::new("serial");
    for kill_at in [t / 3, 2 * t / 3, t - 2] {
        let label = format!("serial kill@{kill_at}/{t}");
        let got = kill_then_resume(&label, &cfg, 4, version, t / 7, kill_at, &snap);
        assert_identical(&label, &base, &got);
    }
    // Idempotence: the image survives a restore and replays identically.
    let image = std::fs::read(&snap.0).unwrap();
    for round in 0..2 {
        let mut m = Machine::new(cfg.clone()).unwrap();
        let progs = build_rank64(&mut m, 4, version);
        let r = m.resume(progs, &image, LIMIT).unwrap();
        let got = Fingerprint {
            cycles: r.cycles,
            memory: m.memory_digest(),
            stats: r.stats,
        };
        assert_identical(&format!("serial re-resume round {round}"), &base, &got);
    }
}

/// Parallel engine: checkpoints are taken at chunk-exchange boundaries
/// only, so every chunk length class — per-cycle hatch (1), mid-range
/// cap (4), automatic horizon (0) and an oversized cap the lookahead
/// clamps (64) — must kill and resume to the serial fingerprint, with
/// fast-forward on and off, the flow-level network fast path on and
/// off, and across memory versions.
#[test]
fn parallel_kill_and_resume_matches_serial_across_chunk_lengths() {
    let cases: [(usize, usize, bool, bool, Rank64Version); 4] = [
        (
            4,
            0,
            true,
            true,
            Rank64Version::GmPrefetch { block_words: 32 },
        ),
        (4, 4, false, true, Rank64Version::GmCache),
        (2, 64, true, false, Rank64Version::GmNoPrefetch),
        (3, 1, true, false, Rank64Version::GmCache),
    ];
    for (threads, chunk, fastfwd, flow, version) in cases {
        let cfg = MachineConfig::cedar_with_clusters(4)
            .with_chunk_cycles(chunk)
            .with_fast_forward(fastfwd)
            .with_flow_path(flow);
        let base = uninterrupted(&cfg.clone().with_threads(1), 4, version);
        let t = base.cycles;
        let label = format!("parallel t={threads} chunk={chunk} fastfwd={fastfwd} flow={flow}");
        let snap = SnapFile::new(&format!("par-{threads}-{chunk}-{fastfwd}-{flow}"));
        let got = kill_then_resume(
            &label,
            &cfg.with_threads(threads),
            4,
            version,
            t / 5,
            2 * t / 3,
            &snap,
        );
        assert_identical(&label, &base, &got);
    }
}

/// Lowered execution: the micro-op streams, lowering cache and program
/// metadata all survive the round trip, serially and chunked.
#[test]
fn lowered_kill_and_resume_is_bit_identical() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    for threads in [1usize, 4] {
        let cfg = MachineConfig::cedar_with_clusters(4)
            .with_lowered(true)
            .with_threads(threads);
        let base = uninterrupted(&cfg, 4, version);
        let t = base.cycles;
        let label = format!("lowered t={threads}");
        let snap = SnapFile::new(&format!("low-{threads}"));
        let got = kill_then_resume(&label, &cfg, 4, version, t / 6, t / 2, &snap);
        assert_identical(&label, &base, &got);
    }
}

/// The adversarial kill: fault injection with drop/NACK rates plus a
/// link outage and a module outage, and journey tracing sampling — the
/// run is killed *inside* the outage window, so the restored image holds
/// in-flight retries, an offline module, a partially filled trace store
/// and open journey spans. Resume must still be bit-identical, serially
/// and in parallel.
#[test]
fn kill_inside_an_outage_window_under_tracing_resumes_identically() {
    let version = Rank64Version::GmCache;
    // Scout the faultless run length to place the outage windows.
    let t0 = uninterrupted(&MachineConfig::cedar_with_clusters(4), 4, version).cycles;
    let (from, until) = (t0 / 4, 3 * t0 / 4);
    let plan = FaultPlan {
        drop_per_million: 2_000,
        nack_per_million: 1_000,
        link_outages: vec![LinkOutage {
            port: 1,
            from,
            until,
        }],
        module_outages: vec![ModuleOutage {
            module: 0,
            from,
            until,
        }],
        ..FaultPlan::none(7)
    };
    let trace = TracePlan {
        seed: 11,
        sample_ppm: 250_000,
    };
    for threads in [1usize, 4] {
        let cfg = MachineConfig::cedar_with_clusters(4)
            .with_threads(threads)
            .with_faults(plan.clone())
            .with_trace(trace);
        let base = uninterrupted(&cfg, 4, version);
        let t = base.cycles;
        // Kill mid-window, checkpointing often enough that the restored
        // image was taken inside the window too.
        let kill_at = (from + until) / 2;
        assert!(kill_at < t, "outage window fell past the faulty run's end");
        let every = ((until - from) / 8).max(1);
        let label = format!("faults+trace t={threads} kill@{kill_at} in [{from},{until})");
        let snap = SnapFile::new(&format!("fault-{threads}"));
        let got = kill_then_resume(&label, &cfg, 4, version, every, kill_at, &snap);
        assert_identical(&label, &base, &got);
    }
}

/// The full Fortran pipeline (Perfect TRFD restructured at the
/// automatable level) kills and resumes bit-identically.
#[test]
fn fortran_pipeline_kill_and_resume_is_bit_identical() {
    let clusters = 4;
    let src = spec(CodeName::Trfd).to_source();
    let compiled = Restructurer::default().restructure(&src, Level::Automatable);
    let backend = Backend::new(XylemCosts::cedar());

    let run = |cfg: MachineConfig, snap: Option<(&SnapFile, u64, u64)>| -> Fingerprint {
        let with_ckpt = match snap {
            Some((s, every, _)) => cfg.with_checkpoint(every, &s.0),
            None => cfg,
        };
        let mut m = Machine::new(with_ckpt).unwrap();
        let progs = backend.lower(&compiled, &mut m, clusters);
        match snap {
            None => {
                let r = m.run(progs, 4 * LIMIT).unwrap();
                Fingerprint {
                    cycles: r.cycles,
                    memory: m.memory_digest(),
                    stats: r.stats,
                }
            }
            Some((s, _, kill_at)) => {
                match m.run(progs, kill_at) {
                    Err(MachineError::CycleLimitExceeded { .. }) => {}
                    other => panic!("TRFD kill run should hit the limit, got {other:?}"),
                }
                drop(m);
                let mut resumed =
                    Machine::new(MachineConfig::cedar_with_clusters(clusters)).unwrap();
                let progs = backend.lower(&compiled, &mut resumed, clusters);
                let r = resumed.resume_from_file(progs, &s.0, 4 * LIMIT).unwrap();
                Fingerprint {
                    cycles: r.cycles,
                    memory: resumed.memory_digest(),
                    stats: r.stats,
                }
            }
        }
    };

    let base = run(MachineConfig::cedar_with_clusters(clusters), None);
    let t = base.cycles;
    let snap = SnapFile::new("trfd");
    let got = run(
        MachineConfig::cedar_with_clusters(clusters),
        Some((&snap, t / 5, 2 * t / 3)),
    );
    assert_identical("perfect TRFD", &base, &got);
}

/// Between-runs archival: `checkpoint` a finished machine, `restore` the
/// image onto a sibling that was killed halfway (so its state provably
/// differs — the serialized cycle counter alone separates them), and the
/// sibling must come back byte-for-byte: its own re-checkpoint
/// reproduces the original image exactly.
#[test]
fn between_run_checkpoint_restores_byte_identically() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let cfg = MachineConfig::cedar_with_clusters(2);

    let mut a = Machine::new(cfg.clone()).unwrap();
    let progs_a = build_rank64(&mut a, 2, version);
    let t = a.run(progs_a, LIMIT).unwrap().cycles;
    let mut image_a = Vec::new();
    a.checkpoint(&mut image_a).unwrap();

    let mut b = Machine::new(cfg).unwrap();
    let progs_b = build_rank64(&mut b, 2, version);
    assert!(matches!(
        b.run(progs_b, t / 2),
        Err(MachineError::CycleLimitExceeded { .. })
    ));
    let mut before = Vec::new();
    b.checkpoint(&mut before).unwrap();
    assert_ne!(
        before, image_a,
        "a half-finished machine should checkpoint differently"
    );

    b.restore(&mut &image_a[..]).unwrap();
    assert_eq!(a.memory_digest(), b.memory_digest());
    let mut after = Vec::new();
    b.checkpoint(&mut after).unwrap();
    assert_eq!(
        image_a, after,
        "restored machine should re-checkpoint to the identical image"
    );
}

/// A valid mid-run image for the rejection tests, plus the config that
/// wrote it.
fn reference_image() -> (Vec<u8>, MachineConfig) {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let cfg = MachineConfig::cedar_with_clusters(2);
    let snap = SnapFile::new("reference");
    let t = uninterrupted(&cfg, 2, version).cycles;
    let killed_cfg = cfg.clone().with_checkpoint(t / 4, &snap.0);
    let mut m = Machine::new(killed_cfg).unwrap();
    let progs = build_rank64(&mut m, 2, version);
    assert!(matches!(
        m.run(progs, t / 2),
        Err(MachineError::CycleLimitExceeded { .. })
    ));
    (std::fs::read(&snap.0).unwrap(), cfg)
}

fn expect_snapshot_err(result: Result<(), MachineError>, needle: &str, label: &str) {
    match result {
        Err(MachineError::Snapshot(msg)) => assert!(
            msg.contains(needle),
            "{label}: error should mention {needle:?}, got {msg:?}"
        ),
        other => panic!("{label}: expected a snapshot error, got {other:?}"),
    }
}

/// Torn, truncated, foreign and future-versioned images are rejected
/// with distinct structured errors before any machine state is touched.
#[test]
fn damaged_images_are_rejected_with_structured_errors() {
    let (image, cfg) = reference_image();
    let mut m = Machine::new(cfg).unwrap();

    let header_short = &image[..20];
    expect_snapshot_err(
        m.restore(&mut &header_short[..]),
        "too short",
        "header-truncated",
    );

    let torn = &image[..image.len() - 7];
    expect_snapshot_err(m.restore(&mut &torn[..]), "torn file", "payload-truncated");

    let mut foreign = image.clone();
    foreign[..8].copy_from_slice(b"NOTCEDAR");
    expect_snapshot_err(m.restore(&mut &foreign[..]), "bad magic", "foreign magic");

    let mut future = image.clone();
    future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    expect_snapshot_err(
        m.restore(&mut &future[..]),
        "format version",
        "future version",
    );

    let mut corrupt = image.clone();
    let mid = 28 + (corrupt.len() - 28) / 2;
    corrupt[mid] ^= 0x40;
    expect_snapshot_err(
        m.restore(&mut &corrupt[..]),
        "checksum mismatch",
        "corrupted payload",
    );
}

/// Structural disagreements — a differently shaped machine, missing
/// programs, an image with no run context — get named errors, not
/// garbage state.
#[test]
fn mismatched_machines_are_rejected_with_named_errors() {
    let (image, cfg) = reference_image();

    // Wrong cluster count.
    let mut wrong = Machine::new(MachineConfig::cedar_with_clusters(4)).unwrap();
    expect_snapshot_err(
        wrong.restore(&mut &image[..]),
        "cluster count",
        "shape mismatch",
    );

    // Right shape, but no programs loaded: a mid-run image cannot land on
    // an idle machine.
    let mut idle = Machine::new(cfg.clone()).unwrap();
    expect_snapshot_err(
        idle.restore(&mut &image[..]),
        "engine slots",
        "programs missing",
    );

    // A between-runs archive image holds no run context to resume.
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let mut done = Machine::new(cfg.clone()).unwrap();
    let progs = build_rank64(&mut done, 2, version);
    done.run(progs, LIMIT).unwrap();
    let mut archive = Vec::new();
    done.checkpoint(&mut archive).unwrap();
    let mut m = Machine::new(cfg).unwrap();
    let progs = build_rank64(&mut m, 2, version);
    match m.resume(progs, &archive, LIMIT) {
        Err(MachineError::Snapshot(msg)) => assert!(
            msg.contains("no run context"),
            "resume of an archive image: got {msg:?}"
        ),
        other => panic!("resume of an archive image should fail, got {other:?}"),
    }
}

proptest! {
    // One machine build per case; restore rejects corrupt images at the
    // header, before touching any state.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single bit flip anywhere in a snapshot image — header, length
    /// field, checksum or payload — is caught by validation: restore
    /// returns a structured error, never Ok and never a panic.
    #[test]
    fn any_single_bit_flip_is_rejected(pos_seed in 0u64..1_000_000, bit in 0usize..8) {
        use std::sync::OnceLock;
        static IMAGE: OnceLock<(Vec<u8>, MachineConfig)> = OnceLock::new();
        let (image, cfg) = IMAGE.get_or_init(reference_image);
        let mut flipped = image.clone();
        let pos = (pos_seed as usize) % flipped.len();
        flipped[pos] ^= 1 << bit;
        let mut m = Machine::new(cfg.clone()).unwrap();
        let r = m.restore(&mut &flipped[..]);
        prop_assert!(
            matches!(r, Err(MachineError::Snapshot(_))),
            "bit {bit} of byte {pos} flipped, restore returned {r:?}"
        );
    }
}

//! Tests of the experiment runners at debug-friendly scale: the tables
//! render, the paper's qualitative claims hold on the simulator.

use cedar::experiments::table1;
use cedar::methodology::bands::Band;
use cedar::methodology::ppt::{ppt2, ppt3};
use cedar::perfect::codes::CodeName;
use cedar::perfect::reference::{cray1_mflops, paper, ymp, ymp_parallel_mflops};

#[test]
fn table1_small_instance_preserves_the_ordering() {
    let t1 = table1::run(64).unwrap();
    assert_eq!(t1.rows.len(), 3);
    for clusters in 0..4 {
        let nopref = t1.rows[0].measured[clusters];
        let pref = t1.rows[1].measured[clusters];
        let cache = t1.rows[2].measured[clusters];
        assert!(
            pref > nopref,
            "prefetch wins at {} clusters: {nopref} vs {pref}",
            clusters + 1
        );
        assert!(
            cache > nopref,
            "cache wins at {} clusters: {nopref} vs {cache}",
            clusters + 1
        );
    }
    // The cache version scales nearly linearly (paper: 52 -> 208).
    let cache = &t1.rows[2].measured;
    assert!(
        cache[3] > 3.0 * cache[0],
        "cache should scale ~4x over clusters: {cache:?}"
    );
    // Rendering includes both measured and paper rows.
    let s = t1.render();
    assert!(s.contains("GM/no-pref") && s.contains("paper"));
}

#[test]
fn table5_reference_side_reproduces_the_papers_verdicts() {
    // The YMP is unstable (needs ~6 exclusions); Cedar's row is measured
    // on the simulator in the full bench — here we verify the reference
    // machines, which are pure data.
    let ymp_rates: Vec<f64> = CodeName::ALL
        .iter()
        .map(|&c| ymp_parallel_mflops(c))
        .collect();
    let r = ppt2("YMP/8", &ymp_rates, 2);
    assert!(!r.passes, "the YMP fails PPT2 in the paper");
    assert!(
        r.in_0.unwrap() > 30.0,
        "YMP In(13,0) is terrible (paper 75.3): {:?}",
        r.in_0
    );
    assert!(
        r.exclusions_needed.unwrap_or(99) >= 4,
        "YMP needs about half the codes excluded (paper: 6): {:?}",
        r.exclusions_needed
    );

    let cray1: Vec<f64> = CodeName::ALL.iter().map(|&c| cray1_mflops(c)).collect();
    let r1 = ppt2("Cray 1", &cray1, 2);
    assert!(r1.passes, "the Cray 1 passes with two exclusions");
}

#[test]
fn table6_reference_side_matches_band_counts() {
    let ymp_speedups: Vec<f64> = CodeName::ALL.iter().map(|&c| ymp(c).auto_speedup).collect();
    let r = ppt3("Cray YMP", &ymp_speedups, 8);
    assert_eq!(
        (r.high, r.intermediate, r.unacceptable),
        paper::YMP_BANDS,
        "Table 6 YMP column"
    );
}

#[test]
fn fig3_ymp_points_have_one_unacceptable() {
    use cedar::methodology::bands::classify;
    let mut bad = 0;
    for c in CodeName::ALL {
        if let Some(s) = ymp(c).manual_speedup {
            if classify(s, 8) == Band::Unacceptable {
                bad += 1;
            }
        }
    }
    assert_eq!(
        bad, 1,
        "paper: the YMP has one unacceptable point, Cedar none"
    );
}

#[test]
fn cm5_reference_is_intermediate_everywhere() {
    let pts = cedar::perfect::reference::cm5_banded_series();
    assert!(!pts.is_empty());
    for p in &pts {
        // 28-67 MFLOPS on 32 processors without FP accelerators is the
        // paper's intermediate regime.
        assert!(p.mflops >= 28.0 && p.mflops <= 67.0);
    }
}

#[test]
fn report_tables_render_nonempty() {
    use cedar::report::Table;
    let mut t = Table::new("x");
    t.header(&["a"]);
    t.row(vec!["1".into()]);
    assert!(!t.render().is_empty());
    assert!(!t.to_csv().is_empty());
}

//! Fault-injection integration tests.
//!
//! Three contracts, in order of importance:
//!
//! 1. **Disabled faults are invisible.** A zero-rate [`FaultPlan`] must
//!    leave every fingerprint — cycles, memory digest, the full stats
//!    registry — byte-identical to a run with no plan at all.
//! 2. **Enabled faults are deterministic.** A fixed plan produces
//!    bit-identical fingerprints whatever the thread count and whether
//!    the event-horizon fast-forward is on or off; the injected drops
//!    are a function of the plan, not of the host.
//! 3. **Recovery is complete.** Every doomed packet is eventually
//!    retried to completion (run finishes, controllers drained, packet
//!    conservation holds at quiesce, final memory state matches the
//!    healthy run) or surfaces as a structured error.

use proptest::prelude::*;

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::stats::export::flat_text;
use cedar_machine::{
    FaultPlan, LinkOutage, MachineConfig, MachineError, MachineStats, ModuleOutage,
};

/// Everything a run can leak: cycle count, persistent-memory digest, and
/// the full stats-counter tree.
#[derive(Debug)]
struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
}

fn run_rank64(cfg: MachineConfig, n: u32) -> cedar_machine::Result<Fingerprint> {
    run_rank64_version(cfg, n, Rank64Version::GmPrefetch { block_words: 32 })
}

fn run_rank64_version(
    cfg: MachineConfig,
    n: u32,
    version: Rank64Version,
) -> cedar_machine::Result<Fingerprint> {
    let clusters = cfg.clusters;
    let mut m = Machine::new(cfg)?;
    let kern = Rank64 { n, k: 64, version };
    let progs = kern.build(&mut m, clusters);
    let r = m.run(progs, 1_000_000_000)?;
    Ok(Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    })
}

fn assert_identical(label: &str, base: &Fingerprint, got: &Fingerprint) {
    assert_eq!(base.cycles, got.cycles, "{label}: cycle counts differ");
    assert_eq!(base.memory, got.memory, "{label}: memory digests differ");
    if base.stats != got.stats {
        let diff: Vec<String> = flat_text(&base.stats)
            .lines()
            .zip(flat_text(&got.stats).lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  base: {a}\n  got:  {b}"))
            .collect();
        panic!("{label}: stats trees differ:\n{}", diff.join("\n"));
    }
}

/// A plan that cannot fire is treated exactly like no plan: same cycles,
/// same memory, and the same stats registry — no fault counters, no
/// retry controllers, no sequence numbers anywhere in the fingerprint.
#[test]
fn zero_rate_plan_is_byte_identical_to_no_plan() {
    let plain = run_rank64(MachineConfig::cedar_with_clusters(2), 64).unwrap();
    let zeroed = run_rank64(
        MachineConfig::cedar_with_clusters(2).with_faults(FaultPlan::none(0xDEAD_BEEF)),
        64,
    )
    .unwrap();
    assert_identical("zero-rate plan", &plain, &zeroed);
    assert_eq!(
        flat_text(&plain.stats),
        flat_text(&zeroed.stats),
        "a disabled plan must not add stats keys"
    );
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        drop_per_million: 2_000,
        nack_per_million: 1_000,
        module_outages: vec![ModuleOutage {
            module: 3,
            from: 1_000,
            until: 3_000,
        }],
        ..FaultPlan::none(0xCEDA_0001)
    }
}

/// The tentpole determinism guarantee: one fixed faulty plan, six host
/// configurations (1/2/4 threads × fast-forward on/off), one
/// fingerprint. The drops and NACKs land on exactly the same packets
/// everywhere because every decision hashes `(seed, site, sequence)`,
/// never host state.
#[test]
fn faulty_plan_is_deterministic_across_threads_and_fastforward() {
    let mut base: Option<Fingerprint> = None;
    for threads in [1usize, 2, 4] {
        for fastfwd in [true, false] {
            let cfg = MachineConfig::cedar_with_clusters(4)
                .with_threads(threads)
                .with_fast_forward(fastfwd)
                .with_faults(faulty_plan());
            let got = run_rank64(cfg, 64).unwrap();
            assert!(
                got.stats.counter("net.fwd.drops") > 0,
                "the plan was meant to actually drop packets"
            );
            match &base {
                None => base = Some(got),
                Some(b) => {
                    assert_identical(&format!("{threads} threads, fastfwd={fastfwd}"), b, &got)
                }
            }
        }
    }
}

/// Transient faults slow the run down but never change its answer: the
/// final memory digest under faults matches the healthy run's.
#[test]
fn faulty_run_converges_to_the_healthy_answer() {
    let clean = run_rank64(MachineConfig::cedar_with_clusters(4), 64).unwrap();
    let faulty = run_rank64(
        MachineConfig::cedar_with_clusters(4).with_faults(faulty_plan()),
        64,
    )
    .unwrap();
    assert_eq!(
        clean.memory, faulty.memory,
        "recovery must reproduce the healthy final memory state"
    );
    assert!(
        faulty.cycles > clean.cycles,
        "recovery is not free: {} faulty vs {} clean cycles",
        faulty.cycles,
        clean.cycles
    );
}

/// A scheduled link outage refuses injections (counted), a scheduled
/// module outage answers with NACKs (counted); both windows end and the
/// run still completes.
#[test]
fn scheduled_outages_are_survivable_and_counted() {
    let plan = FaultPlan {
        link_outages: vec![LinkOutage {
            port: 0,
            from: 500,
            until: 2_500,
        }],
        module_outages: vec![ModuleOutage {
            module: 0,
            from: 500,
            until: 4_000,
        }],
        ..FaultPlan::none(1)
    };
    let fp = run_rank64(MachineConfig::cedar_with_clusters(2).with_faults(plan), 64).unwrap();
    assert!(
        fp.stats.counter("net.fwd.link_blocked") > 0,
        "the downed port should have refused at least one injection"
    );
    assert!(
        fp.stats.counter("gmem.nacks") > 0,
        "the offline module should have NACKed at least one request"
    );
    // Prefetch NACKs are recovered by the prefetch unit's timeout (the
    // reply is simply discarded), so the controllers see at most — not
    // exactly — the module's NACK count.
    assert!(
        fp.stats.counter("fault.nacks") <= fp.stats.counter("gmem.nacks"),
        "controllers cannot observe more NACKs than the modules issued"
    );
    assert!(
        fp.stats.counter("fault.retries") + fp.stats.counter("prefetch.retries") > 0,
        "surviving the outage should have taken at least one retry"
    );
}

/// The link-outage path through the *parallel* engine: a downed port's
/// refused injections are charged to `net.fwd.link_blocked` at the
/// staging buffer (the serial `try_inject` checks the outage before
/// capacity and charges per attempt), so the counter — and everything
/// downstream of the stalled CE — must match the serial run exactly at
/// every thread count and chunk length.
#[test]
fn link_outages_are_deterministic_across_threads_and_chunking() {
    let plan = || FaultPlan {
        link_outages: vec![LinkOutage {
            port: 0,
            from: 500,
            until: 2_500,
        }],
        ..FaultPlan::none(7)
    };
    let base = run_rank64(
        MachineConfig::cedar_with_clusters(2).with_faults(plan()),
        64,
    )
    .unwrap();
    assert!(
        base.stats.counter("net.fwd.link_blocked") > 0,
        "the downed port should have refused at least one injection"
    );
    for threads in [2usize, 4] {
        for chunk in [0usize, 1, 4] {
            let got = run_rank64(
                MachineConfig::cedar_with_clusters(2)
                    .with_threads(threads)
                    .with_chunk_cycles(chunk)
                    .with_faults(plan()),
                64,
            )
            .unwrap();
            assert_identical(&format!("{threads} threads, chunk={chunk}"), &base, &got);
        }
    }
}

/// A module that never comes back exhausts the bounded retries and
/// surfaces as a structured `Faulted` error naming the stuck CE — not a
/// hang, not a panic. The no-prefetch kernel keeps the traffic on the
/// CE's sequenced retry controller (the prefetch unit retries without a
/// bound and would instead ride the run into its cycle budget).
#[test]
fn permanent_outage_exhausts_retries_into_a_faulted_error() {
    let plan = FaultPlan {
        module_outages: vec![ModuleOutage {
            module: 0,
            from: 0,
            until: u64::MAX,
        }],
        max_retries: 2,
        ..FaultPlan::none(2)
    };
    let err = run_rank64_version(
        MachineConfig::cedar_with_clusters(1).with_faults(plan),
        64,
        Rank64Version::GmNoPrefetch,
    )
    .unwrap_err();
    match err {
        MachineError::Faulted { ref reason, .. } => {
            assert!(
                reason.contains("attempts"),
                "reason should mention the exhausted attempts: {reason}"
            );
        }
        other => panic!("expected MachineError::Faulted, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation at quiesce, for arbitrary seeds and rates: the run
    /// completes (every drop was retried to completion — the machine is
    /// not done while any controller holds an op), both networks satisfy
    /// `injected = delivered + dropped`, and the final memory state is
    /// the healthy one.
    #[test]
    fn drops_are_always_retried_to_completion(
        seed in 0u64..u64::MAX,
        drop_ppm in 200u32..5_000,
    ) {
        let plan = FaultPlan {
            drop_per_million: drop_ppm,
            nack_per_million: drop_ppm / 2,
            ..FaultPlan::none(seed)
        };
        let clean = run_rank64(MachineConfig::cedar_with_clusters(2), 64).unwrap();
        let fp = run_rank64(
            MachineConfig::cedar_with_clusters(2).with_faults(plan),
            64,
        )
        .unwrap();
        for net in ["net.fwd", "net.rev"] {
            let injected = fp.stats.counter(&format!("{net}.packets_injected"));
            let delivered = fp.stats.counter(&format!("{net}.packets_delivered"));
            let dropped = fp.stats.counter(&format!("{net}.drops"));
            prop_assert_eq!(
                injected,
                delivered + dropped,
                "{} leaked packets at quiesce",
                net
            );
        }
        prop_assert_eq!(fp.memory, clean.memory);
    }
}

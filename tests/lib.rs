//! Shared helpers for the cross-crate integration tests.

use cedar_machine::machine::Machine;

/// A full Cedar, panicking on configuration errors (tests only).
pub fn cedar() -> Machine {
    Machine::cedar().expect("canonical Cedar configuration is valid")
}

//! Equivalence battery for the ahead-of-run program lowering.
//!
//! Lowering (`MachineConfig::lowered`, on by default) compiles each CE
//! program once into a flat micro-op stream: branch targets resolved,
//! pure scalar/vector runs fused into single bulk-timed micro-ops,
//! pure `Repeat` bodies collapsed into one charge, and prefetch
//! arm+fire pairs glued into a superinstruction. Straight-line timed
//! work is then charged as one stall whose end the engine reports to
//! the fast-forward scheduler, so quiescent CEs tick in O(1). Its
//! contract is *bit-for-bit* equivalence with the tree-walking
//! interpreter (kept verbatim behind the `CEDAR_NO_LOWER` escape
//! hatch): the same cycle count, the same memory digest, the same full
//! stats registry — attribution vectors, histograms, journey stamps —
//! at every thread count, with fast-forward and the flow path on or
//! off, under fault injection, and under journey tracing.
//!
//! These tests pin that contract on the paper's Table 1 rows and on a
//! Perfect-benchmark code through the full Fortran pipeline. The
//! randomized cross-check on arbitrary generated programs lives in
//! `properties.rs`; the environment-variable hatch is exercised in its
//! own process in `lower_env.rs`.

use cedar_fortran::compile::Backend;
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::stats::export::{chrome_trace_with_journeys, flat_text};
use cedar_machine::{FaultPlan, MachineConfig, MachineStats, TracePlan};
use cedar_perfect::codes::{spec, CodeName};
use cedar_xylem::costs::XylemCosts;

const LIMIT: u64 = 1_000_000_000;

/// `CEDAR_NO_LOWER=1` (a CI matrix leg) overrides the config flag, so
/// "lowered on" runs silently fall back to the interpreter. The
/// equivalence assertions must hold on every leg; the "actually
/// lowered" assertions only apply when lowering is possible at all.
fn lowering_possible() -> bool {
    !cedar_machine::config::lowered_disabled_from_env()
}

/// Everything a run can leak about its execution, plus whether the
/// machine actually executed the flat streams while producing it.
struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
    lowered: bool,
}

/// Compare a lowered run against the interpreter baseline, with a
/// readable counter diff on mismatch.
fn assert_equivalent(label: &str, base: &Fingerprint, got: &Fingerprint) {
    assert_eq!(
        base.cycles, got.cycles,
        "{label}: lowered run took {} cycles, interpreter took {}",
        got.cycles, base.cycles
    );
    assert_eq!(
        base.memory, got.memory,
        "{label}: lowered run left different memory state"
    );
    if base.stats != got.stats {
        let tree = flat_text(&base.stats);
        let flat = flat_text(&got.stats);
        let diff: Vec<String> = tree
            .lines()
            .zip(flat.lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  interpreter: {a}\n  lowered:     {b}"))
            .collect();
        panic!(
            "{label}: lowered stats tree differs from the interpreter:\n{}",
            diff.join("\n")
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn fingerprint_rank64(
    version: Rank64Version,
    lowered: bool,
    fast_forward: bool,
    flow: bool,
    threads: usize,
    faults: Option<FaultPlan>,
    trace: Option<TracePlan>,
) -> Fingerprint {
    let clusters = 4;
    let mut cfg = MachineConfig::cedar_with_clusters(clusters)
        .with_threads(threads)
        .with_fast_forward(fast_forward)
        .with_flow_path(flow)
        .with_lowered(lowered);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    if let Some(plan) = trace {
        cfg = cfg.with_trace(plan);
    }
    let mut m = Machine::new(cfg).unwrap();
    let progs = Rank64 {
        n: 64,
        k: 64,
        version,
    }
    .build(&mut m, clusters);
    let r = m.run(progs, LIMIT).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
        lowered: m.lowered_enabled(),
    }
}

/// Every Table 1 memory version produces a bit-identical fingerprint
/// with lowering on — serially and in the parallel engine, with the
/// event-horizon fast-forward on and off, and with the network flow
/// path on and off (all three fast paths compose).
#[test]
fn table1_rows_match_with_lowering_on() {
    for version in [
        Rank64Version::GmNoPrefetch,
        Rank64Version::GmPrefetch { block_words: 32 },
        Rank64Version::GmCache,
    ] {
        let label = format!("table1 {version:?}");
        let base = fingerprint_rank64(version, false, false, true, 1, None, None);
        assert!(!base.lowered, "{label}: baseline must interpret");
        for threads in [1, 4] {
            for fast_forward in [false, true] {
                let got =
                    fingerprint_rank64(version, true, fast_forward, true, threads, None, None);
                assert_equivalent(
                    &format!("{label} x{threads} threads, fast-forward {fast_forward}"),
                    &base,
                    &got,
                );
            }
        }
        // One leg against the per-flit network oracle, so the flat
        // streams compose with the slow network sweep too.
        let got = fingerprint_rank64(version, true, true, false, 1, None, None);
        assert_equivalent(&format!("{label} per-flit network"), &base, &got);
    }
}

/// A Perfect-benchmark code through the full Fortran pipeline: loops,
/// self-scheduling, barriers and sync ops in one real program, where
/// every lowering fixup (branch targets, frame kinds, chunk epochs) has
/// to hold at once.
#[test]
fn perfect_trfd_matches_with_lowering_on() {
    let clusters = 4;
    let src = spec(CodeName::Trfd).to_source();
    let compiled = Restructurer::default().restructure(&src, Level::Automatable);
    let backend = Backend::new(XylemCosts::cedar());
    let run = |lowered: bool, threads: usize| {
        let cfg = MachineConfig::cedar_with_clusters(clusters)
            .with_threads(threads)
            .with_lowered(lowered);
        let mut m = Machine::new(cfg).unwrap();
        let progs = backend.lower(&compiled, &mut m, clusters);
        let r = m.run(progs, LIMIT).unwrap();
        Fingerprint {
            cycles: r.cycles,
            memory: m.memory_digest(),
            stats: r.stats,
            lowered: m.lowered_enabled(),
        }
    };
    let base = run(false, 1);
    assert!(base.cycles > 0);
    for threads in [1, 4] {
        let got = run(true, threads);
        assert_equivalent(&format!("perfect TRFD x{threads} threads"), &base, &got);
    }
}

/// The equivalence survives fault injection: drops and NACKs replay the
/// same retry schedules whether the program is interpreted or lowered,
/// so fault-site sequence counters and recovery stalls stay aligned.
#[test]
fn lowering_matches_interpreter_under_fault_injection() {
    let plan = FaultPlan {
        drop_per_million: 2_000,
        nack_per_million: 1_000,
        ..FaultPlan::none(0xCEDA)
    };
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let base = fingerprint_rank64(version, false, true, true, 1, Some(plan.clone()), None);
    for threads in [1, 4] {
        let got = fingerprint_rank64(version, true, true, true, threads, Some(plan.clone()), None);
        assert_equivalent(&format!("faulty rank64 x{threads} threads"), &base, &got);
    }
}

/// The equivalence survives journey tracing at CI's sampling rate and
/// at an explicit rate of zero: `trace.*` keys join the registry (and
/// hence the fingerprint), so every journey stamp recorded from a flat
/// stream must equal the interpreter's schedule.
#[test]
fn lowering_matches_interpreter_under_tracing() {
    let version = Rank64Version::GmCache;
    for sample_ppm in [0, 10_000] {
        let plan = TracePlan {
            seed: 0xCEDA,
            sample_ppm,
        };
        let base = fingerprint_rank64(version, false, true, true, 1, None, Some(plan));
        for threads in [1, 4] {
            let got = fingerprint_rank64(version, true, true, true, threads, None, Some(plan));
            assert_equivalent(
                &format!("traced rank64 ppm={sample_ppm} x{threads} threads"),
                &base,
                &got,
            );
        }
    }
}

/// Journey hop timestamps survive bulk-charged timed runs exactly: the
/// raw trace-event streams are element-for-element identical, and so is
/// the full Chrome export with journeys attached — no collapsed or
/// reordered `TraceEvent`s.
#[test]
fn journey_hop_stamps_survive_bulk_timing() {
    let run = |lowered: bool| {
        let clusters = 4;
        let cfg = MachineConfig::cedar_with_clusters(clusters)
            .with_lowered(lowered)
            .with_trace(TracePlan {
                seed: 0xCEDA,
                sample_ppm: 1_000_000,
            });
        let mut m = Machine::new(cfg).unwrap();
        let progs = Rank64 {
            n: 64,
            k: 64,
            version: Rank64Version::GmPrefetch { block_words: 32 },
        }
        .build(&mut m, clusters);
        let r = m.run(progs, LIMIT).unwrap();
        (r.stats, m)
    };
    let (tree_stats, tree) = run(false);
    let (flat_stats, flat) = run(true);

    let base = tree.trace_events();
    let got = flat.trace_events();
    assert!(!base.is_empty(), "full sampling must catch journeys");
    assert_eq!(base.len(), got.len(), "trace event count drifted");
    if let Some(i) = (0..base.len()).find(|&i| base[i] != got[i]) {
        panic!(
            "trace stream diverges at event {i}:\n  interpreter: {:?}\n  lowered:     {:?}",
            base[i], got[i]
        );
    }
    assert_eq!(
        chrome_trace_with_journeys(tree.timeline(), &tree_stats, 170.0, &tree.trace_journeys()),
        chrome_trace_with_journeys(flat.timeline(), &flat_stats, 170.0, &flat.trace_journeys()),
        "Chrome export with journeys drifted under lowering"
    );
}

/// The dense prefetching Table 1 kernel actually goes through the
/// compiler: the machine reports flat streams enabled, and the cached
/// program metadata shows fusion did real work (its arm+fire pairs
/// glue into `ArmFire` superinstructions, so there are strictly fewer
/// micro-ops than source ops).
#[test]
fn dense_kernel_actually_lowers_and_fuses() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let got = fingerprint_rank64(version, true, true, true, 1, None, None);
    if !lowering_possible() {
        assert!(!got.lowered, "CEDAR_NO_LOWER must force the interpreter");
        return;
    }
    assert!(
        got.lowered,
        "lowering requested and possible, but not enabled"
    );
    let clusters = 4;
    let cfg = MachineConfig::cedar_with_clusters(clusters);
    let mut m = Machine::new(cfg).unwrap();
    let progs = Rank64 {
        n: 64,
        k: 64,
        version,
    }
    .build(&mut m, clusters);
    m.run(progs, LIMIT).unwrap();
    let meta = m.program_meta().expect("a completed run caches metadata");
    assert!(meta.source_ops > 0);
    assert!(
        meta.fused_ops > 0,
        "the prefetching kernel must fuse some of its {} ops",
        meta.source_ops
    );
    // Loops expand (Repeat becomes EnterRepeat..LoopEnd), so the stream
    // is not strictly smaller — but fusion must at least beat the loop
    // overhead's 1-op-per-loop expansion.
    assert!(
        meta.uops < 2 * meta.source_ops,
        "micro-op stream blew up: {} uops from {} ops",
        meta.uops,
        meta.source_ops
    );
    assert!(meta.max_loop_depth >= 3, "rank64 nests three loops deep");
    // The same metadata flows into the stats registry for reports.
    let stats = m.stats();
    let text = flat_text(&stats);
    for key in [
        "program.ops",
        "program.uops",
        "program.fused_ops",
        "program.max_loop_depth",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(key)),
            "stats registry is missing {key}:\n{text}"
        );
    }
}

/// Enabling the VM model forces the interpreter (page faults interleave
/// with fetch in ways the bulk-timed path does not model), and the
/// forced run is bit-identical to an explicit `with_lowered(false)`.
#[test]
fn vm_model_forces_the_interpreter() {
    let run = |lowered: bool| {
        let clusters = 4;
        let mut cfg = MachineConfig::cedar_with_clusters(clusters).with_lowered(lowered);
        cfg.vm.enabled = true;
        let mut m = Machine::new(cfg).unwrap();
        assert!(
            !m.lowered_enabled(),
            "VM runs must fall back to the interpreter (lowered={lowered})"
        );
        let progs = Rank64 {
            n: 32,
            k: 64,
            version: Rank64Version::GmNoPrefetch,
        }
        .build(&mut m, clusters);
        let r = m.run(progs, LIMIT).unwrap();
        Fingerprint {
            cycles: r.cycles,
            memory: m.memory_digest(),
            stats: r.stats,
            lowered: m.lowered_enabled(),
        }
    };
    let base = run(false);
    let got = run(true);
    assert_equivalent("vm forces interpreter", &base, &got);
}

//! Equivalence battery for the flow-level network fast path.
//!
//! The flow path (`MachineConfig::flow_path`, on by default) advances
//! steady-state wormhole streams through the omega networks without the
//! dense per-flit bookkeeping: radix-8 switches arbitrate all eight
//! outputs in one SWAR pass, only busy switches are visited, and a tick
//! in which every stream is stalled replays its cached stat charge in
//! O(1) instead of re-walking every queue. Its contract is *bit-for-bit*
//! equivalence with the per-flit oracle sweep (kept behind the
//! `CEDAR_NO_FLOWPATH` escape hatch): the same cycle count, the same
//! memory digest, the same full stats registry — including the `net.*`
//! counter and histogram trees, per-stage conflict/blocked vectors and
//! queue-depth bins — at every thread count, with fast-forward on or
//! off, under fault injection, and under journey tracing.
//!
//! These tests pin that contract on the paper's Table 1 rows and on a
//! synthetic full-stall scenario that proves the replay path actually
//! runs. The randomized cross-check against the oracle on arbitrary
//! traffic lives in `properties.rs`.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::config::NetworkConfig;
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::memory::sync::SyncInstr;
use cedar_machine::network::packet::{MemRequest, Packet, Payload, RequestKind, Stream};
use cedar_machine::network::{NetSink, Omega};
use cedar_machine::program::{AddressExpr, Op, ProgramBuilder};
use cedar_machine::stats::export::{chrome_trace_with_journeys, flat_text};
use cedar_machine::time::Cycle;
use cedar_machine::{FaultPlan, MachineConfig, MachineStats, TracePlan};

const LIMIT: u64 = 1_000_000_000;

/// `CEDAR_NO_FLOWPATH=1` (a CI matrix leg) overrides the config flag, so
/// "flow path on" runs silently fall back to the oracle. The equivalence
/// assertions must hold on every leg; the "actually ran" assertions only
/// apply when the fast path is possible at all.
fn flow_possible() -> bool {
    !cedar_machine::config::flowpath_disabled_from_env()
}

/// Everything a run can leak about its execution, plus how many stalled
/// network ticks the flow path settled by replay while producing it.
struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
    replays: u64,
}

/// Compare a flow-path run against the per-flit oracle baseline, with a
/// readable counter diff on mismatch.
fn assert_equivalent(label: &str, base: &Fingerprint, got: &Fingerprint) {
    assert_eq!(
        base.cycles, got.cycles,
        "{label}: flow-path run took {} cycles, oracle took {}",
        got.cycles, base.cycles
    );
    assert_eq!(
        base.memory, got.memory,
        "{label}: flow-path run left different memory state"
    );
    if base.stats != got.stats {
        let oracle = flat_text(&base.stats);
        let flow = flat_text(&got.stats);
        let diff: Vec<String> = oracle
            .lines()
            .zip(flow.lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  oracle:    {a}\n  flow path: {b}"))
            .collect();
        panic!(
            "{label}: flow-path stats tree differs from the oracle:\n{}",
            diff.join("\n")
        );
    }
}

fn fingerprint_rank64(
    version: Rank64Version,
    flow: bool,
    fast_forward: bool,
    threads: usize,
    faults: Option<FaultPlan>,
    trace: Option<TracePlan>,
) -> Fingerprint {
    let clusters = 4;
    let mut cfg = MachineConfig::cedar_with_clusters(clusters)
        .with_threads(threads)
        .with_fast_forward(fast_forward)
        .with_flow_path(flow);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    if let Some(plan) = trace {
        cfg = cfg.with_trace(plan);
    }
    let mut m = Machine::new(cfg).unwrap();
    let progs = Rank64 {
        n: 64,
        k: 64,
        version,
    }
    .build(&mut m, clusters);
    let r = m.run(progs, LIMIT).unwrap();
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
        replays: m.flow_stall_replays(),
    }
}

/// Every Table 1 memory version produces a bit-identical fingerprint with
/// the flow path on — serially and in the parallel engine, with the
/// event-horizon fast-forward on and off (the two fast paths compose).
#[test]
fn table1_rows_match_with_flow_path_on() {
    for version in [
        Rank64Version::GmNoPrefetch,
        Rank64Version::GmPrefetch { block_words: 32 },
        Rank64Version::GmCache,
    ] {
        let label = format!("table1 {version:?}");
        let base = fingerprint_rank64(version, false, false, 1, None, None);
        assert_eq!(base.replays, 0, "{label}: oracle must not replay");
        for threads in [1, 4] {
            for fast_forward in [false, true] {
                let got = fingerprint_rank64(version, true, fast_forward, threads, None, None);
                assert_equivalent(
                    &format!("{label} x{threads} threads, fast-forward {fast_forward}"),
                    &base,
                    &got,
                );
            }
        }
    }
}

/// The equivalence survives fault injection: drops evaporate and NACKs
/// bounce the same packets whether the sweep is per-flit or flow-level,
/// so the fault-site sequence counters stay aligned.
#[test]
fn flow_path_matches_oracle_under_fault_injection() {
    let plan = FaultPlan {
        drop_per_million: 2_000,
        nack_per_million: 1_000,
        ..FaultPlan::none(0xCEDA)
    };
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let base = fingerprint_rank64(version, false, true, 1, Some(plan.clone()), None);
    for threads in [1, 4] {
        let got = fingerprint_rank64(version, true, true, threads, Some(plan.clone()), None);
        assert_equivalent(&format!("faulty rank64 x{threads} threads"), &base, &got);
    }
}

/// The equivalence survives journey tracing at CI's sampling rate and at
/// an explicit rate of zero: `trace.*` keys join the registry (and hence
/// the fingerprint), so every hop stamp the flow path records must equal
/// the per-flit schedule.
#[test]
fn flow_path_matches_oracle_under_tracing() {
    let version = Rank64Version::GmCache;
    for sample_ppm in [0, 10_000] {
        let plan = TracePlan {
            seed: 0xCEDA,
            sample_ppm,
        };
        let base = fingerprint_rank64(version, false, true, 1, None, Some(plan));
        for threads in [1, 4] {
            let got = fingerprint_rank64(version, true, true, threads, None, Some(plan));
            assert_equivalent(
                &format!("traced rank64 ppm={sample_ppm} x{threads} threads"),
                &base,
                &got,
            );
        }
    }
}

/// Journey hop timestamps inside bulk-advanced streams equal the per-flit
/// schedule exactly: the raw trace-event streams are element-for-element
/// identical, and so is the full Chrome export with journeys attached —
/// no collapsed or reordered `TraceEvent`s.
#[test]
fn journey_hop_stamps_survive_bulk_advance() {
    let run = |flow: bool| {
        let clusters = 4;
        let cfg = MachineConfig::cedar_with_clusters(clusters)
            .with_flow_path(flow)
            .with_trace(TracePlan {
                seed: 0xCEDA,
                sample_ppm: 1_000_000,
            });
        let mut m = Machine::new(cfg).unwrap();
        let progs = Rank64 {
            n: 64,
            k: 64,
            version: Rank64Version::GmPrefetch { block_words: 32 },
        }
        .build(&mut m, clusters);
        let r = m.run(progs, LIMIT).unwrap();
        (r.stats, m)
    };
    let (oracle_stats, oracle) = run(false);
    let (flow_stats, flow) = run(true);

    let base = oracle.trace_events();
    let got = flow.trace_events();
    assert!(!base.is_empty(), "full sampling must catch journeys");
    assert_eq!(base.len(), got.len(), "trace event count drifted");
    if let Some(i) = (0..base.len()).find(|&i| base[i] != got[i]) {
        panic!(
            "trace stream diverges at event {i}:\n  oracle:    {:?}\n  flow path: {:?}",
            base[i], got[i]
        );
    }
    assert_eq!(
        chrome_trace_with_journeys(
            oracle.timeline(),
            &oracle_stats,
            170.0,
            &oracle.trace_journeys()
        ),
        chrome_trace_with_journeys(flow.timeline(), &flow_stats, 170.0, &flow.trace_journeys()),
        "Chrome export with journeys drifted under the flow path"
    );
}

/// A sink whose acceptance is an explicit mask, recording each delivery
/// with its arrival tick.
struct GateSink {
    accepting: bool,
    now: u64,
    delivered: Vec<(u64, usize, u64)>,
}

impl NetSink for GateSink {
    fn try_begin(&mut self, _port: usize) -> bool {
        self.accepting
    }
    fn deliver(&mut self, port: usize, p: Packet) {
        let addr = match p.payload {
            Payload::Request(r) => r.addr,
            _ => u64::MAX,
        };
        self.delivered.push((self.now, port, addr));
    }
}

fn stall_packet(dst: usize, addr: u64) -> Packet {
    Packet {
        dst,
        words: 2,
        payload: Payload::Request(MemRequest {
            ce: CeId(0),
            kind: RequestKind::Read,
            addr,
            stream: Stream::Scalar,
            issued: Cycle(0),
            seq: 0,
            nacked: false,
            trace: 0,
        }),
    }
}

/// A long full-stall window (every stream blocked on a refusing sink) is
/// settled by O(1) replay — and the replayed stat charge, the eventual
/// deliveries and the final registry are bit-identical to the oracle
/// grinding through the same window per flit.
#[test]
fn full_stall_window_replays_and_matches_the_oracle() {
    let cfg = NetworkConfig {
        radix: 8,
        queue_words: 2,
        words_per_cycle: 2,
    };
    let run = |flow: bool| {
        let mut net = Omega::new(32, &cfg);
        net.set_flow_path(flow);
        let size = net.size();
        let mut sink = GateSink {
            accepting: false,
            now: 0,
            delivered: Vec::new(),
        };
        // Head-of-line packets reach the sink, get refused, and block
        // everything behind them: a full stall the flow path can replay.
        for port in 0..8 {
            assert!(net.try_inject(port, stall_packet(port * 3 % size, port as u64)));
        }
        // Epoch 0: the sink refuses everyone for 60 cycles.
        for c in 0..60 {
            sink.now = c;
            net.tick_epoch(&mut sink, 0);
        }
        // Epoch 1: the sink opens and the network drains.
        sink.accepting = true;
        let mut c = 60;
        while !net.is_idle() {
            sink.now = c;
            net.tick_epoch(&mut sink, 1);
            c += 1;
            assert!(c < 1_000, "network did not drain");
        }
        let fingerprint = format!(
            "{:?} conflicts={:?} blocked={:?} depth={:?} in_flight={}",
            net.stats(),
            net.stage_conflicts(),
            net.stage_blocked(),
            net.queue_depth_histogram().bins(),
            net.in_flight_packets()
        );
        (sink.delivered, fingerprint, net.stall_replays())
    };
    let (oracle_deliveries, oracle_fp, oracle_replays) = run(false);
    let (flow_deliveries, flow_fp, flow_replays) = run(true);
    assert_eq!(oracle_replays, 0, "oracle must never replay");
    assert_eq!(
        oracle_deliveries, flow_deliveries,
        "delivery schedule drifted under the flow path"
    );
    assert_eq!(oracle_fp, flow_fp, "stat fingerprint drifted");
    assert!(
        flow_replays >= 50,
        "a 60-cycle full stall should be mostly replayed, got {flow_replays} replays"
    );
}

/// On a full machine the epoch plumbing (global-memory acceptance epochs
/// forward, always-accepting CE sinks reverse) lets the flow path replay
/// genuine stall cycles. Ordinary reads and writes occupy a bank for only
/// `service_cycles = 2`, so some module pops — and hence an epoch bump —
/// lands every other tick; synchronization ops cost 4 cycles, so all 32
/// CEs fetch-adding distinct words of a single bank open pop gaps wide
/// enough for whole-network stalls to repeat. The machine must produce
/// the oracle's exact fingerprint while demonstrably taking the replay
/// path in anger.
#[test]
fn flow_path_replays_under_single_bank_sync_hammering() {
    let run = |flow: bool| {
        let cfg = MachineConfig::cedar()
            .with_fast_forward(false)
            .with_flow_path(flow);
        let mut m = Machine::new(cfg).unwrap();
        let progs = (0..m.config().total_ces())
            .map(|ce| {
                let mut b = ProgramBuilder::new();
                for i in 0..32u64 {
                    // Distinct addresses, same bank: contention without
                    // the sync processor's same-address combining.
                    b.push(Op::SyncOp {
                        addr: AddressExpr::new((ce as u64 * 64 + i) * 32),
                        instr: SyncInstr::fetch_add(1),
                    });
                }
                (CeId(ce), b.build())
            })
            .collect();
        let r = m.run(progs, LIMIT).unwrap();
        Fingerprint {
            cycles: r.cycles,
            memory: m.memory_digest(),
            stats: r.stats,
            replays: m.flow_stall_replays(),
        }
    };
    let base = run(false);
    assert_eq!(base.replays, 0);
    let got = run(true);
    assert_equivalent("single-bank sync hammer", &base, &got);
    if flow_possible() {
        assert!(
            got.replays > 0,
            "a single-bank sync hammer should hit full-stall windows"
        );
    }
}

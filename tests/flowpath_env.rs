//! The `CEDAR_NO_FLOWPATH` escape hatch.
//!
//! Kept in its own test binary (own process): the environment variable is
//! process-global, so the one test below owns it end to end and cannot
//! race other tests. It pins the override contract: `1`/`true`/`yes`
//! force the per-flit oracle sweep even when the config enables the flow
//! path, anything else (including `0`, which CI's matrix passes
//! explicitly) leaves the fast path on — and both modes produce
//! identical results.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::MachineConfig;

fn run_contended() -> (u64, u64, bool, u64) {
    let clusters = 4;
    let cfg = MachineConfig::cedar_with_clusters(clusters).with_fast_forward(false);
    let mut m = Machine::new(cfg).unwrap();
    let progs = Rank64 {
        n: 32,
        k: 64,
        version: Rank64Version::GmNoPrefetch,
    }
    .build(&mut m, clusters);
    let r = m.run(progs, 1_000_000_000).unwrap();
    (
        r.cycles,
        m.memory_digest(),
        m.flow_path_enabled(),
        m.flow_stall_replays(),
    )
}

#[test]
fn cedar_no_flowpath_env_forces_the_oracle() {
    // SAFETY: this binary is single-test, so no other thread reads the
    // environment concurrently.
    std::env::set_var("CEDAR_NO_FLOWPATH", "1");
    let (cycles_off, digest_off, enabled_off, replays_off) = run_contended();
    assert!(!enabled_off, "CEDAR_NO_FLOWPATH=1 must force the oracle");
    assert_eq!(replays_off, 0, "the oracle never replays a stall charge");

    std::env::set_var("CEDAR_NO_FLOWPATH", "true");
    let (_, _, enabled_true, _) = run_contended();
    assert!(
        !enabled_true,
        "CEDAR_NO_FLOWPATH=true must force the oracle"
    );

    // "0" is the explicit *enabled* value (the CI matrix passes it).
    std::env::set_var("CEDAR_NO_FLOWPATH", "0");
    let (cycles_on, digest_on, enabled_on, _) = run_contended();
    assert!(
        enabled_on,
        "CEDAR_NO_FLOWPATH=0 must leave the flow path on"
    );
    assert_eq!(cycles_off, cycles_on, "the hatch must not change the run");
    assert_eq!(digest_off, digest_on, "the hatch must not change memory");

    std::env::remove_var("CEDAR_NO_FLOWPATH");
    let (_, _, enabled_unset, _) = run_contended();
    assert!(enabled_unset, "unset variable must leave the flow path on");
}

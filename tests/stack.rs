//! End-to-end tests across the whole stack: machine ← xylem ← fortran ←
//! perfect, exercised together the way the experiments use them.

use cedar_fortran::compile::Backend;
use cedar_fortran::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram};
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_integration::cedar;
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::program::{MemOperand, VectorOp};
use cedar_perfect::model::{CodeSpec, Component, ParClass};
use cedar_xylem::costs::XylemCosts;
use cedar_xylem::gang::Gang;
use cedar_xylem::loops::Xylem;

/// A miniature application IR for pipeline tests (small enough for debug
/// builds).
fn mini_program() -> SourceProgram {
    let mut src = SourceProgram::new("mini");
    let mut ph = Phase::new("main", 2);
    ph.loops.push(LoopNest {
        trips: 64,
        body: BodyMix {
            vector_ops: 1,
            vector_len: 32,
            flops_per_elem: 2,
            global_frac: 1.0,
            global_writes: 1,
            scalar_global_reads: 0,
            scalar_cycles: 8,
        },
        needs: vec![],
        parallel: true,
        vectorizable: true,
        home: DataHome::Global,
    });
    ph.serial_cycles = 200;
    src.phases.push(ph);
    src
}

#[test]
fn xylem_loop_on_machine_accounts_flops() {
    let mut m = cedar();
    let x = Xylem::default();
    let mut gang = Gang::clusters(2, 8);
    x.cdoall(&mut m, &mut gang, 64, 1, |_, _, b| {
        b.vector(VectorOp {
            length: 16,
            flops_per_element: 2,
            operand: MemOperand::None,
        });
    });
    let r = m.run(gang.finish(), 10_000_000).unwrap();
    // The CDOALL runs the whole iteration space on each of 2 clusters.
    assert_eq!(r.flops, 2 * 64 * 32);
}

#[test]
fn restructuring_levels_order_execution_times() {
    let src = mini_program();
    let rst = Restructurer::default();
    let mut times = Vec::new();
    for level in [Level::Serial, Level::KapCedar, Level::Automatable] {
        let compiled = rst.restructure(&src, level);
        let rep = Backend::default()
            .execute(&compiled, 4, 200_000_000)
            .unwrap();
        assert_eq!(rep.flops, src.flops(), "{level:?} flop accounting");
        times.push((level, rep.seconds));
    }
    assert!(
        times[2].1 < times[0].1,
        "automatable should beat serial: {times:?}"
    );
}

#[test]
fn perfect_model_to_machine_round_trip() {
    // A synthetic two-component code through spec → IR → compile → run.
    let spec = CodeSpec {
        name: "synthetic",
        real_serial_seconds: 10.0,
        sim_flops: 100_000,
        components: vec![
            Component::compute(
                "par",
                0.8,
                ParClass::Kap,
                BodyMix {
                    vector_ops: 2,
                    vector_len: 32,
                    flops_per_elem: 2,
                    global_frac: 1.0,
                    global_writes: 1,
                    scalar_global_reads: 0,
                    scalar_cycles: 8,
                },
            ),
            Component::compute(
                "ser",
                0.2,
                ParClass::Never,
                BodyMix {
                    vector_ops: 1,
                    vector_len: 8,
                    flops_per_elem: 2,
                    global_frac: 1.0,
                    global_writes: 0,
                    scalar_global_reads: 0,
                    scalar_cycles: 8,
                },
            ),
        ],
    };
    let src = spec.to_source();
    let rst = Restructurer::default();
    let serial = Backend::default()
        .execute(&rst.restructure(&src, Level::Serial), 1, 400_000_000)
        .unwrap();
    let auto = Backend::default()
        .execute(&rst.restructure(&src, Level::Automatable), 4, 400_000_000)
        .unwrap();
    assert_eq!(serial.flops, auto.flops);
    let speedup = serial.seconds / auto.seconds;
    // The serial baseline is *scalar*; the 20% Never component still
    // vectorizes (~3.5x), so the Amdahl bound is roughly
    // 1/(0.2/3.5 + 0.8/F) ≈ 13, not 1/0.2 = 5.
    assert!(
        speedup > 4.0 && speedup < 14.0,
        "80% parallel Amdahl-ish bound with vectorized remainder: {speedup:.1}"
    );
}

#[test]
fn ablation_configs_change_the_machine_not_the_answer() {
    // Same program with and without prefetch: identical flops, different
    // time.
    let src = mini_program();
    let rst = Restructurer::default();
    let compiled = rst.restructure(&src, Level::Automatable);
    let a = Backend::new(XylemCosts::cedar())
        .execute(&compiled, 2, 200_000_000)
        .unwrap();
    let b = Backend::new(XylemCosts::cedar_without_prefetch())
        .execute(&compiled, 2, 200_000_000)
        .unwrap();
    assert_eq!(a.flops, b.flops);
    assert!(b.seconds > a.seconds);
}

#[test]
fn rank64_versions_keep_flop_counts_and_order_at_small_scale() {
    let mut rates = Vec::new();
    for version in [
        Rank64Version::GmNoPrefetch,
        Rank64Version::GmPrefetch { block_words: 32 },
        Rank64Version::GmCache,
    ] {
        let mut m = cedar();
        let kern = Rank64 {
            n: 64,
            k: 64,
            version,
        };
        let progs = kern.build(&mut m, 1);
        let r = m.run(progs, 1_000_000_000).unwrap();
        assert_eq!(r.flops, kern.flops());
        rates.push(r.mflops);
    }
    assert!(rates[1] > rates[0], "prefetch beats direct: {rates:?}");
    assert!(rates[2] > rates[0], "cache beats direct: {rates:?}");
}

#[test]
fn machine_is_deterministic_across_identical_stacked_runs() {
    let run = || {
        let src = mini_program();
        let compiled = Restructurer::default().restructure(&src, Level::Automatable);
        Backend::default()
            .execute(&compiled, 4, 200_000_000)
            .unwrap()
            .cycles
    };
    assert_eq!(run(), run());
}

//! Golden snapshot tests for the experiment renderings.
//!
//! Canonical outputs live under `tests/golden/`; each test regenerates
//! its table at a debug-affordable scale and diffs against the snapshot.
//! Because the simulator is deterministic — including under the parallel
//! engine (`CEDAR_NUM_THREADS`) — any drift is a real behaviour change.
//! To bless intentional changes:
//!
//! ```text
//! CEDAR_UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use cedar::experiments::table2::Table2Sizes;
use cedar::experiments::{ppt4, resilience, table1, table2};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name)
}

/// Diff `actual` against the snapshot `name`, or rewrite the snapshot
/// when `CEDAR_UPDATE_GOLDEN=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("CEDAR_UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed golden snapshot {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); bless it with \
             CEDAR_UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    if want != actual {
        let mut diff = String::new();
        for (i, (w, a)) in want.lines().zip(actual.lines()).enumerate() {
            if w != a {
                let _ = writeln!(diff, "line {}:\n  golden: {w}\n  actual: {a}", i + 1);
            }
        }
        let (wn, an) = (want.lines().count(), actual.lines().count());
        if wn != an {
            let _ = writeln!(diff, "line counts differ: golden {wn}, actual {an}");
        }
        panic!(
            "{name} drifted from its golden snapshot \
             (CEDAR_UPDATE_GOLDEN=1 to bless intentional changes):\n{diff}"
        );
    }
}

/// Table 1 + Table 2 at test scale — the snapshot analogue of
/// `results_tables12.txt`.
#[test]
fn tables12_match_golden_snapshot() {
    let t1 = table1::run(64).unwrap();
    let mut out = t1.render();
    let pf = t1.prefetch_factors();
    let cf = t1.cache_factors();
    let _ = writeln!(
        out,
        "prefetch improvement over no-pref: {:.1} / {:.1} / {:.1} / {:.1}",
        pf[0], pf[1], pf[2], pf[3]
    );
    let _ = writeln!(
        out,
        "cache improvement over no-pref   : {:.1} / {:.1} / {:.1} / {:.1}",
        cf[0], cf[1], cf[2], cf[3]
    );
    out.push('\n');
    let t2 = table2::run_sized(Table2Sizes {
        vl_words_per_ce: 1024,
        tm_n: 4096,
        rk_n: 64,
        cg_n: 4096,
    })
    .unwrap();
    out.push_str(&t2.render());
    check_golden("tables12.txt", &out);
}

/// The PPT4 scalability study over a shrunken sweep — the snapshot
/// analogue of `results_ppt4.txt`.
#[test]
fn ppt4_matches_golden_snapshot() {
    let study = ppt4::run_swept(1, &[1024, 4096], &[8, 32], 8192).unwrap();
    check_golden("ppt4.txt", &study.render());
}

/// The resilience study at test scale. Fault injection is seeded and
/// counter-based, so the exact drops, retries and cycle counts of every
/// faulty run are as reproducible as the healthy tables; drift here
/// means the fault path (not just the happy path) changed behaviour.
#[test]
fn resilience_matches_golden_snapshot() {
    let r = resilience::run(64, 0xCEDA_0001).unwrap();
    check_golden("resilience.txt", &r.render());
}

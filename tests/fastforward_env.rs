//! The `CEDAR_NO_FASTFWD` escape hatch.
//!
//! Kept in its own test binary (own process): the environment variable is
//! process-global, so the one test below owns it end to end and cannot
//! race other tests. It pins the override contract: `1`/`true`/`yes`
//! disable the fast-forward even when the config enables it, anything
//! else (including `0`, which CI's matrix passes explicitly) leaves it
//! on — and both modes produce identical results.

use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::ProgramBuilder;
use cedar_machine::MachineConfig;

fn run_stall_program() -> (u64, u64, u64) {
    let mut m = Machine::new(MachineConfig::cedar()).unwrap();
    let mut b = ProgramBuilder::new();
    b.scalar(50_000);
    let r = m.run(vec![(CeId(0), b.build())], 1_000_000).unwrap();
    (r.cycles, m.memory_digest(), m.fastforward_skipped_cycles())
}

#[test]
fn cedar_no_fastfwd_env_disables_skipping() {
    // SAFETY: this binary is single-test, so no other thread reads the
    // environment concurrently.
    std::env::set_var("CEDAR_NO_FASTFWD", "1");
    let (cycles_off, digest_off, skipped_off) = run_stall_program();
    assert_eq!(skipped_off, 0, "CEDAR_NO_FASTFWD=1 must disable skipping");

    std::env::set_var("CEDAR_NO_FASTFWD", "true");
    let (_, _, skipped_true) = run_stall_program();
    assert_eq!(
        skipped_true, 0,
        "CEDAR_NO_FASTFWD=true must disable skipping"
    );

    // "0" is the explicit *enabled* value (the CI matrix passes it).
    std::env::set_var("CEDAR_NO_FASTFWD", "0");
    let (cycles_on, digest_on, skipped_on) = run_stall_program();
    assert!(
        skipped_on > 40_000,
        "a 50k-cycle scalar stall should be almost entirely skipped, got {skipped_on}"
    );
    assert_eq!(cycles_off, cycles_on);
    assert_eq!(digest_off, digest_on);

    std::env::remove_var("CEDAR_NO_FASTFWD");
    let (_, _, skipped_unset) = run_stall_program();
    assert!(
        skipped_unset > 0,
        "unset variable must leave fast-forward on"
    );
}

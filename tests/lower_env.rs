//! The `CEDAR_NO_LOWER` escape hatch.
//!
//! Kept in its own test binary (own process): the environment variable is
//! process-global, so the one test below owns it end to end and cannot
//! race other tests. It pins the override contract: `1`/`true`/`yes`
//! force the tree-walking interpreter even when the config enables
//! lowering, anything else (including `0`, which CI's matrix passes
//! explicitly) leaves the flat streams on — and both modes produce
//! identical results.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::MachineConfig;

fn run_contended() -> (u64, u64, bool) {
    let clusters = 4;
    let cfg = MachineConfig::cedar_with_clusters(clusters).with_fast_forward(false);
    let mut m = Machine::new(cfg).unwrap();
    let progs = Rank64 {
        n: 32,
        k: 64,
        version: Rank64Version::GmNoPrefetch,
    }
    .build(&mut m, clusters);
    let r = m.run(progs, 1_000_000_000).unwrap();
    (r.cycles, m.memory_digest(), m.lowered_enabled())
}

#[test]
fn cedar_no_lower_env_forces_the_interpreter() {
    // SAFETY: this binary is single-test, so no other thread reads the
    // environment concurrently.
    std::env::set_var("CEDAR_NO_LOWER", "1");
    let (cycles_off, digest_off, enabled_off) = run_contended();
    assert!(!enabled_off, "CEDAR_NO_LOWER=1 must force the interpreter");

    std::env::set_var("CEDAR_NO_LOWER", "true");
    let (_, _, enabled_true) = run_contended();
    assert!(
        !enabled_true,
        "CEDAR_NO_LOWER=true must force the interpreter"
    );

    // "0" is the explicit *enabled* value (the CI matrix passes it).
    std::env::set_var("CEDAR_NO_LOWER", "0");
    let (cycles_on, digest_on, enabled_on) = run_contended();
    assert!(enabled_on, "CEDAR_NO_LOWER=0 must leave lowering on");
    assert_eq!(cycles_off, cycles_on, "the hatch must not change the run");
    assert_eq!(digest_off, digest_on, "the hatch must not change memory");

    std::env::remove_var("CEDAR_NO_LOWER");
    let (_, _, enabled_unset) = run_contended();
    assert!(enabled_unset, "unset variable must leave lowering on");
}

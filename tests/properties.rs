//! Property-based tests on the stack's core invariants (proptest), plus
//! conservation laws checked against the machine-wide stats registry.

use proptest::prelude::*;

use cedar_kernels::banded::BandedMatrix;
use cedar_kernels::cg::{cg_solve, dot};
use cedar_kernels::dense::{rank_update, Matrix};
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::config::NetworkConfig;
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::memory::sync::{SyncInstr, SyncOpKind};
use cedar_machine::network::packet::{MemRequest, Packet, Payload, RequestKind, Stream};
use cedar_machine::network::{NetSink, Omega};
use cedar_machine::program::{AddressExpr, MemOperand, Op, Program, ProgramBuilder, VectorOp};
use cedar_machine::sched::BarrierScope;
use cedar_machine::stats::export::flat_text;
use cedar_machine::time::Cycle;
use cedar_machine::{CounterId, CounterScope};
use cedar_methodology::stability::{instability, stability};

#[derive(Default)]
struct Collect {
    got: Vec<(usize, u64)>,
}
impl NetSink for Collect {
    fn try_begin(&mut self, _p: usize) -> bool {
        true
    }
    fn deliver(&mut self, p: usize, pkt: Packet) {
        if let Payload::Request(r) = pkt.payload {
            self.got.push((p, r.addr));
        }
    }
}

/// Records each delivery with its arrival tick, refusing ports according
/// to a mask the traffic generator reseeds as the run progresses — the
/// worst case for the flow path's cached stall charges.
struct MaskedSink {
    refuse_mask: u64,
    now: u64,
    delivered: Vec<(u64, usize, u64)>,
}

impl NetSink for MaskedSink {
    fn try_begin(&mut self, port: usize) -> bool {
        self.refuse_mask & (1 << (port % 64)) == 0
    }
    fn deliver(&mut self, port: usize, pkt: Packet) {
        let addr = match pkt.payload {
            Payload::Request(r) => r.addr,
            _ => u64::MAX,
        };
        self.delivered.push((self.now, port, addr));
    }
}

/// Drive `cycles` of seeded random traffic (bursty injection, variable
/// packet lengths, sink backpressure flipping every 7 cycles) through an
/// omega network, returning the delivery schedule and a fingerprint of
/// every observable stat: the counter struct, per-stage conflict and
/// blocked vectors, queue-depth histogram bins and in-flight count.
fn run_random_traffic(
    flow: bool,
    seed: u64,
    cycles: u64,
    ports: usize,
    cfg: &NetworkConfig,
) -> (Vec<(u64, usize, u64)>, String, u64) {
    let mut net = Omega::new(ports, cfg);
    net.set_flow_path(flow);
    let size = net.size();
    let mut sink = MaskedSink {
        refuse_mask: 0,
        now: 0,
        delivered: Vec::new(),
    };
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut epoch = 0u64;
    for c in 0..cycles {
        sink.now = c;
        if c % 7 == 0 {
            // Sink acceptance changed: the epoch contract requires a bump
            // (injections invalidate the stall cache internally).
            sink.refuse_mask = next();
            epoch += 1;
        }
        for _ in 0..3 {
            let r = next();
            if r % 100 < 60 {
                let port = (r >> 8) as usize % size;
                let dst = (r >> 20) as usize % size;
                let words = 1 + ((r >> 40) % 4) as u8;
                net.try_inject(
                    port,
                    Packet {
                        dst,
                        words,
                        payload: Payload::Request(MemRequest {
                            ce: CeId(0),
                            kind: RequestKind::Read,
                            addr: r,
                            stream: Stream::Scalar,
                            issued: Cycle(0),
                            seq: 0,
                            nacked: false,
                            trace: 0,
                        }),
                    },
                );
            }
        }
        net.tick_epoch(&mut sink, epoch);
    }
    let fingerprint = format!(
        "{:?} conflicts={:?} blocked={:?} depth={:?} in_flight={}",
        net.stats(),
        net.stage_conflicts(),
        net.stage_blocked(),
        net.queue_depth_histogram().bins(),
        net.in_flight_packets()
    );
    (sink.delivered, fingerprint, net.stall_replays())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flow-level fast path is byte-identical to the per-flit oracle
    /// sweep on arbitrary omega traffic: same delivery schedule (tick,
    /// port and payload of every arrival), same `net.*` counters, same
    /// per-stage conflict/blocked vectors, same queue-depth histogram
    /// bins — across radices, queue depths, burst lengths, contention
    /// and sink backpressure. The oracle never replays; the flow path
    /// may, and must charge exactly the same stats when it does.
    #[test]
    fn flow_path_is_bit_identical_to_the_per_flit_oracle(
        radix in prop::sample::select(vec![2usize, 4, 8]),
        ports in prop::sample::select(vec![16usize, 32, 64]),
        queue_words in prop::sample::select(vec![1usize, 2, 4]),
        words_per_cycle in 1u32..3,
        seed in 1u64..100_000,
    ) {
        let cfg = NetworkConfig { radix, queue_words, words_per_cycle };
        let (oracle_deliveries, oracle_fp, oracle_replays) =
            run_random_traffic(false, seed, 400, ports, &cfg);
        let (flow_deliveries, flow_fp, _) =
            run_random_traffic(true, seed, 400, ports, &cfg);
        prop_assert_eq!(oracle_replays, 0, "the oracle must never replay");
        prop_assert_eq!(oracle_deliveries, flow_deliveries);
        prop_assert_eq!(oracle_fp, flow_fp);
    }

    /// Every packet injected into the omega network arrives exactly once,
    /// at the right port, for arbitrary traffic patterns.
    #[test]
    fn network_delivers_everything_exactly_once(
        radix in prop::sample::select(vec![2usize, 4, 8]),
        traffic in prop::collection::vec((0usize..32, 0usize..32, 1u8..4), 1..40),
    ) {
        let mut net = Omega::new(
            32,
            &NetworkConfig { radix, queue_words: 2, words_per_cycle: 1 },
        );
        let size = net.size();
        let mut sink = Collect::default();
        let mut expected = Vec::new();
        let mut pending: Vec<(usize, Packet)> = Vec::new();
        for (tag, &(src, dst, words)) in traffic.iter().enumerate() {
            let (src, dst) = (src % size, dst % size);
            expected.push((dst, tag as u64));
            pending.push((
                src,
                Packet {
                    dst,
                    words,
                    payload: Payload::Request(MemRequest {
                        ce: CeId(0),
                        kind: RequestKind::Read,
                        addr: tag as u64,
                        stream: Stream::Scalar,
                        issued: Cycle(0),
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    }),
                },
            ));
        }
        let mut guard = 0;
        while !pending.is_empty() || !net.is_idle() {
            pending.retain(|(src, pkt)| !net.try_inject(*src, *pkt));
            net.tick(&mut sink);
            guard += 1;
            prop_assert!(guard < 100_000, "network did not drain");
        }
        let mut got = sink.got.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Sync instructions are linearizable at a module: any interleaving of
    /// fetch-adds sums correctly.
    #[test]
    fn sync_fetch_add_is_atomic(deltas in prop::collection::vec(-50i32..50, 1..30)) {
        let mut v = 0i32;
        let mut sum = 0i64;
        for &d in &deltas {
            SyncInstr { test: None, op: SyncOpKind::Add(d) }.apply(&mut v);
            sum += i64::from(d);
        }
        prop_assert_eq!(i64::from(v), sum as i32 as i64);
    }

    /// The open-addressed [`SyncStore`] behind every memory module's
    /// synchronization processor behaves exactly like a hash map of
    /// zero-default words under arbitrary Test-And-Operate sequences:
    /// same outcome per instruction, same surviving words, across
    /// growth, collisions and clears.
    #[test]
    fn sync_store_matches_hashmap_model(
        ops in prop::collection::vec(
            (
                // Cluster addresses so probe chains collide, but spread
                // them with a large stride so growth rehashes matter.
                0u64..24,
                prop::sample::select(vec![0usize, 1, 2, 3]),
                -40i32..40,
            ),
            1..200,
        ),
        clear_at in prop::collection::vec(0usize..200, 0..3),
    ) {
        use std::collections::HashMap;
        use cedar_machine::memory::SyncStore;

        let mut store = SyncStore::new();
        let mut model: HashMap<u64, i32> = HashMap::new();
        for (i, &(slot, which, operand)) in ops.iter().enumerate() {
            if clear_at.contains(&i) {
                store.clear();
                model.clear();
            }
            let addr = slot * 0x1000_0001; // colliding high bits, distinct keys
            let instr = match which {
                0 => SyncInstr::read(),
                1 => SyncInstr::write(operand),
                2 => SyncInstr::fetch_add(operand),
                _ => SyncInstr::test_and_set(),
            };
            let got = instr.apply(store.get_or_insert(addr));
            let want = instr.apply(model.entry(addr).or_insert(0));
            prop_assert_eq!(got, want, "op {i}");
        }
        let mut got: Vec<(u64, i32)> = store.iter().collect();
        got.sort_unstable();
        let mut want: Vec<(u64, i32)> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The machine conserves flops: whatever the program shape, the run
    /// reports exactly the flops the program encodes.
    #[test]
    fn machine_conserves_flops(
        lens in prop::collection::vec(1u32..64, 1..6),
        reps in 1u32..4,
    ) {
        let mut m = Machine::cedar().unwrap();
        let mut b = ProgramBuilder::new();
        let mut expect = 0u64;
        b.repeat(reps, |b| {
            for &l in &lens {
                b.vector(VectorOp {
                    length: l,
                    flops_per_element: 2,
                    operand: MemOperand::None,
                });
            }
        });
        for &l in &lens {
            expect += u64::from(l) * 2 * u64::from(reps);
        }
        let r = m.run(vec![(CeId(0), b.build())], 10_000_000).unwrap();
        prop_assert_eq!(r.flops, expect);
    }

    /// Stability is scale-invariant and within (0, 1].
    #[test]
    fn stability_properties(
        mut xs in prop::collection::vec(0.001f64..1000.0, 2..12),
        scale in 0.001f64..1000.0,
        e in 0usize..3,
    ) {
        prop_assume!(xs.len() >= e + 2);
        let st = stability(&xs, e).unwrap();
        prop_assert!(st > 0.0 && st <= 1.0 + 1e-12);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let st2 = stability(&scaled, e).unwrap();
        prop_assert!((st - st2).abs() < 1e-9 * (1.0 + st.abs()));
        // Instability is its inverse.
        let inst = instability(&xs, e).unwrap();
        prop_assert!((inst * st - 1.0).abs() < 1e-9);
        // Permutation-invariant.
        xs.reverse();
        prop_assert!((stability(&xs, e).unwrap() - st).abs() < 1e-12);
    }

    /// Banded matvec agrees with the dense definition for arbitrary
    /// bands.
    #[test]
    fn banded_matvec_matches_dense(
        n in 3usize..24,
        half in 0usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(2 * half + 1 < 2 * n);
        let bw = 2 * half + 1;
        let f = |i: usize, j: usize| ((i * 31 + j * 17 + seed as usize) % 13) as f64 - 6.0;
        let a = BandedMatrix::from_fn(n, bw, f);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; n];
        a.matvec(&x, &mut y);
        for (i, yi) in y.iter().enumerate() {
            let want: f64 = (0..n).map(|j| a.get(i, j) * x[j]).sum();
            prop_assert!((yi - want).abs() < 1e-9);
        }
    }

    /// rank_update is linear in B: scaling B scales the update.
    #[test]
    fn rank_update_linear_in_b(n in 2usize..12, k in 1usize..5, s in -3.0f64..3.0) {
        let a = Matrix::from_fn(n, k, |i, j| (i + 2 * j) as f64 * 0.5 - 1.0);
        let b1 = Matrix::from_fn(k, n, |i, j| (3 * i + j) as f64 * 0.25 - 2.0);
        let bs = Matrix::from_fn(k, n, |i, j| b1[(i, j)] * s);
        let mut c1 = Matrix::zeros(n, n);
        let mut c2 = Matrix::zeros(n, n);
        rank_update(&mut c1, &a, &b1);
        rank_update(&mut c2, &a, &bs);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((c2[(i, j)] - s * c1[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// CG solves random SPD-ish penta systems to tolerance.
    #[test]
    fn cg_converges_on_diagonally_dominant_systems(n in 8usize..64, seed in 0u64..100) {
        let a = BandedMatrix::from_fn(n, 5, |i, j| {
            if i == j {
                8.0
            } else {
                -(((i + j + seed as usize) % 3) as f64) / 2.0
            }
        });
        // Symmetrize: from_fn above is already symmetric in (i+j).
        let xtrue: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        let res = cg_solve(&a, &b, &mut x, 1e-9, 4 * n);
        prop_assert!(res.converged, "residual {}", res.residual);
        let err: f64 = dot(
            &x.iter().zip(&xtrue).map(|(a, b)| a - b).collect::<Vec<_>>(),
            &x.iter().zip(&xtrue).map(|(a, b)| a - b).collect::<Vec<_>>(),
        );
        prop_assert!(err.sqrt() < 1e-5, "error {err}");
    }
}

proptest! {
    // Full-machine simulations are costly in debug builds; a handful of
    // sampled configurations is enough to exercise every law.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Conservation laws of the instrumentation layer hold for the
    /// rank-64 kernel on the full 32-CE machine, whatever the memory
    /// version, problem size, and — since the parallel engine promises
    /// bit-identical execution — simulation thread count: counters from
    /// every subsystem must account for each other exactly.
    #[test]
    fn stats_conservation_laws_hold_for_rank64(
        version in prop::sample::select(vec![
            Rank64Version::GmNoPrefetch,
            Rank64Version::GmPrefetch { block_words: 32 },
            Rank64Version::GmCache,
        ]),
        n in prop::sample::select(vec![32u32, 64]),
        threads in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let clusters = 4;
        let mut m = Machine::new(
            cedar_machine::MachineConfig::cedar_with_clusters(clusters).with_threads(threads),
        ).unwrap();
        let kern = Rank64 { n, k: 64, version };
        let progs = kern.build(&mut m, clusters);
        let r = m.run(progs, 1_000_000_000).unwrap();
        let s = &r.stats;

        // Cache: hits + misses == accesses, aggregate == sum of clusters.
        prop_assert_eq!(
            s.counter("cache.hits") + s.counter("cache.misses"),
            s.counter("cache.accesses")
        );
        for field in ["accesses", "hits", "misses", "evictions", "writebacks"] {
            let per_cluster: u64 = (0..clusters)
                .map(|c| s.counter(&format!("cache[{c}].{field}")))
                .sum();
            prop_assert_eq!(per_cluster, s.counter(&format!("cache.{field}")), "cache.{}", field);
        }

        // Networks: every packet injected was delivered (the run only
        // ends once all traffic has drained).
        for net in ["net.fwd", "net.rev"] {
            prop_assert_eq!(
                s.counter(&format!("{net}.packets_injected")),
                s.counter(&format!("{net}.packets_delivered")),
                "{} did not drain", net
            );
        }

        // Global memory: totals are the sum over the 32 banks.
        for field in ["accesses", "sync_ops", "conflict_stalls"] {
            let per_bank: u64 = (0..32)
                .map(|b| s.counter(&format!("gmem.bank[{b}].{field}")))
                .sum();
            prop_assert_eq!(per_bank, s.counter(&format!("gmem.{field}")), "gmem.{}", field);
        }

        // Per-CE cycle accounting: every engine cycle lands in exactly
        // one of busy / stall_mem / stall_sync / idle.
        let cycles = s.counter("machine.cycles");
        prop_assert_eq!(cycles, r.cycles);
        for i in 0..m.config().total_ces() {
            let accounted = s.counter(&format!("ce[{i}].busy"))
                + s.counter(&format!("ce[{i}].stall_mem"))
                + s.counter(&format!("ce[{i}].stall_sync"))
                + s.counter(&format!("ce[{i}].idle"));
            prop_assert_eq!(accounted, cycles, "CE {} cycle accounting", i);
        }
        prop_assert_eq!(
            s.counter("ce.busy") + s.counter("ce.stall_mem")
                + s.counter("ce.stall_sync") + s.counter("ce.idle"),
            cycles * m.config().total_ces() as u64
        );

        // The utilization timeline redistributes the same cycles.
        for (i, t) in m.timeline().per_ce_totals().iter().enumerate() {
            let counted = s.counter(&format!("ce[{i}].busy"))
                + s.counter(&format!("ce[{i}].stall_mem"))
                + s.counter(&format!("ce[{i}].stall_sync"))
                + s.counter(&format!("ce[{i}].idle"));
            prop_assert_eq!(t.total(), counted, "timeline total for CE {}", i);
        }

        // Prefetch: all prefetched words either arrived or went stale,
        // and the latency histogram saw each arrived word once.
        let words = s.counter("prefetch.words_returned");
        prop_assert!(words + s.counter("prefetch.stale_words") <= s.counter("prefetch.requests"));
        if let Some(h) = s.histogram("prefetch.latency") {
            prop_assert_eq!(h.total(), words);
        }
    }
}

/// A tiny deterministic stream for program generation (splitmix64), so
/// a single proptest seed expands into an arbitrary instruction mix.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emit a random run of operations covering every `Op` variant the
/// lowering pipeline handles: zero- and nonzero-duration scalar work,
/// every vector operand (the pure ones are fusion bait), prefetch
/// arm/fire/consume/rewind sequences, pure and impure `Repeat`s
/// (including count zero), nested loops past the collapse depth bound,
/// self-scheduled loops over shared counters, sync ops, fences and
/// monitor events. Loop-indexed addresses exercise the flat frame
/// stack's index plumbing.
fn emit_random_ops(b: &mut ProgramBuilder, rng: &mut SplitMix, depth: u32, counters: &[CounterId]) {
    let n = 2 + rng.below(5);
    for _ in 0..n {
        // Nesting-heavy choices only below the recursion cutoff.
        match rng.below(if depth < 2 { 12 } else { 9 }) {
            0 => {
                b.scalar(rng.below(40) as u32); // 0 is a legal duration
            }
            1 => {
                b.push(Op::ScalarFlops {
                    flops: rng.below(6) as u32,
                    cycles_per_flop: 1 + rng.below(3) as u8,
                });
            }
            2 => {
                b.push(Op::ScalarGlobalRead {
                    addr: AddressExpr::new(rng.below(4096) * 8).with_coeff(0, rng.below(8) as i64),
                });
            }
            3 => {
                b.push(Op::ScalarGlobalWrite {
                    addr: AddressExpr::new(rng.below(4096) * 8).with_coeff(1, rng.below(8) as i64),
                });
            }
            4 => {
                let addr = AddressExpr::new(rng.below(2048) * 16)
                    .with_coeff(rng.below(3) as u8, rng.below(16) as i64);
                let operand = match rng.below(7) {
                    0 | 1 => MemOperand::None,
                    2 => MemOperand::GlobalRead {
                        addr,
                        stride: 1 + rng.below(3) as i64,
                    },
                    3 => MemOperand::GlobalWrite {
                        addr,
                        stride: 1 + rng.below(3) as i64,
                    },
                    4 => MemOperand::ClusterRead {
                        addr,
                        stride: 1 + rng.below(3) as i64,
                    },
                    5 => MemOperand::ClusterWrite {
                        addr,
                        stride: 1 + rng.below(3) as i64,
                    },
                    _ => {
                        if rng.below(2) == 0 {
                            MemOperand::GlobalGather { addr }
                        } else {
                            MemOperand::GlobalScatter { addr }
                        }
                    }
                };
                b.vector(VectorOp {
                    length: 1 + rng.below(32) as u32,
                    flops_per_element: rng.below(3) as u8,
                    operand,
                });
            }
            5 => {
                // Prefetch as an atomic arm / fire / consume unit (the
                // arm+fire pair is the ArmFire superinstruction's bait),
                // sometimes rewound and consumed again.
                let length = 1 + rng.below(16) as u32;
                b.push(Op::PrefetchArm {
                    length,
                    stride: 1 + rng.below(2) as i64,
                });
                b.push(Op::PrefetchFire {
                    base: AddressExpr::new(rng.below(2048) * 8),
                });
                b.vector(VectorOp {
                    length,
                    flops_per_element: 1,
                    operand: MemOperand::Prefetched,
                });
                if rng.below(3) == 0 {
                    b.push(Op::PrefetchRewind);
                    b.vector(VectorOp {
                        length,
                        flops_per_element: 2,
                        operand: MemOperand::Prefetched,
                    });
                }
            }
            6 => {
                b.push(Op::SyncOp {
                    addr: AddressExpr::new(0x10_0000 + rng.below(64) * 8),
                    instr: match rng.below(4) {
                        0 => SyncInstr::read(),
                        1 => SyncInstr::write(rng.below(100) as i32),
                        2 => SyncInstr::fetch_add(1 + rng.below(5) as i32),
                        _ => SyncInstr::test_and_set(),
                    },
                });
            }
            7 => {
                b.push(Op::Fence);
            }
            8 => {
                b.push(Op::PostEvent {
                    tag: rng.below(16) as u32,
                });
            }
            9 => {
                // A *pure* repeat — the loop-collapse superinstruction's
                // target (count 0 exercises the skip-jump).
                let count = rng.below(5) as u32;
                let work = 1 + rng.below(20) as u32;
                let veclen = 1 + rng.below(16) as u32;
                b.repeat(count, |b| {
                    b.scalar(work);
                    b.vector(VectorOp {
                        length: veclen,
                        flops_per_element: 2,
                        operand: MemOperand::None,
                    });
                });
            }
            10 => {
                // An arbitrary (usually impure) repeat, recursing.
                let count = rng.below(4) as u32;
                b.repeat(count, |b| emit_random_ops(b, rng, depth + 1, counters));
            }
            _ => {
                let counter = counters[rng.below(counters.len() as u64) as usize];
                let limit = rng.below(24);
                let chunk = 1 + rng.below(3) as u32;
                let cost = rng.below(3) as u32;
                b.self_sched_with_cost(counter, limit, chunk, cost, |b| {
                    emit_random_ops(b, rng, depth + 1, counters)
                });
            }
        }
    }
}

/// One full-machine run of a seeded random program mix: every CE gets
/// its own generated program, all CEs meet at one global barrier at the
/// end, and self-scheduled loops share two global counters across CEs.
fn run_random_programs(seed: u64, lowered: bool, threads: usize) -> (u64, u64, String, bool) {
    let cfg = cedar_machine::MachineConfig::cedar_with_clusters(2)
        .with_threads(threads)
        .with_lowered(lowered);
    run_random_programs_on(seed, cfg)
}

fn run_random_programs_on(
    seed: u64,
    cfg: cedar_machine::MachineConfig,
) -> (u64, u64, String, bool) {
    let mut m = Machine::new(cfg).unwrap();
    let total = m.config().total_ces();
    let counters = [
        m.alloc_counter(CounterScope::Global),
        m.alloc_counter(CounterScope::Global),
    ];
    let barrier = m.alloc_barrier(BarrierScope::Global, total as u32);
    let progs: Vec<(CeId, Program)> = (0..total)
        .map(|ce| {
            let mut rng = SplitMix(seed ^ (ce as u64).wrapping_mul(0xA5A5_5A5A));
            let mut b = ProgramBuilder::new();
            emit_random_ops(&mut b, &mut rng, 0, &counters);
            b.push(Op::Barrier { barrier });
            (CeId(ce), b.build())
        })
        .collect();
    let r = m.run(progs, 1_000_000_000).unwrap();
    (
        r.cycles,
        m.memory_digest(),
        flat_text(&r.stats),
        m.lowered_enabled(),
    )
}

proptest! {
    // Two machine runs per case; the generated programs are short.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The lowering pipeline is byte-identical to the tree-walking
    /// interpreter on arbitrary generated programs — every `Op`
    /// variant, loop shapes past the collapse bound, shared
    /// self-scheduling counters, a global barrier — across thread
    /// counts: same cycle count, same memory digest, same flattened
    /// stats registry.
    #[test]
    fn lowering_is_bit_identical_to_the_interpreter(
        seed in 0u64..100_000,
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let (base_cycles, base_digest, base_stats, _) =
            run_random_programs(seed, false, 1);
        let (flat_cycles, flat_digest, flat_stats, _) =
            run_random_programs(seed, true, threads);
        prop_assert_eq!(base_cycles, flat_cycles, "cycle count drifted");
        prop_assert_eq!(base_digest, flat_digest, "memory digest drifted");
        if base_stats != flat_stats {
            let diff: Vec<String> = base_stats
                .lines()
                .zip(flat_stats.lines())
                .filter(|(a, b)| a != b)
                .map(|(a, b)| format!("  interpreter: {a}\n  lowered:     {b}"))
                .collect();
            prop_assert!(false, "stats drifted:\n{}", diff.join("\n"));
        }
    }

    /// Lookahead-chunked partitioned execution is bit-identical to the
    /// serial engine on arbitrary generated traffic — sync ops,
    /// gathers/scatters, prefetch bursts, shared self-scheduling
    /// counters, a global barrier — at every chunk length: the
    /// automatic horizon (0), the per-cycle hatch (1), a mid-range cap
    /// (4) and an oversized one the lookahead must clamp (64).
    #[test]
    fn chunked_execution_is_bit_identical_to_serial(
        seed in 0u64..100_000,
        chunk in prop::sample::select(vec![0usize, 1, 4, 64]),
    ) {
        let (base_cycles, base_digest, base_stats, _) =
            run_random_programs(seed, true, 1);
        let cfg = cedar_machine::MachineConfig::cedar_with_clusters(2)
            .with_threads(2)
            .with_lowered(true)
            .with_chunk_cycles(chunk);
        let (cycles, digest, stats, _) = run_random_programs_on(seed, cfg);
        prop_assert_eq!(base_cycles, cycles, "cycle count drifted at chunk={}", chunk);
        prop_assert_eq!(base_digest, digest, "memory digest drifted at chunk={}", chunk);
        if base_stats != stats {
            let diff: Vec<String> = base_stats
                .lines()
                .zip(stats.lines())
                .filter(|(a, b)| a != b)
                .map(|(a, b)| format!("  serial:  {a}\n  chunked: {b}"))
                .collect();
            prop_assert!(false, "stats drifted at chunk={}:\n{}", chunk, diff.join("\n"));
        }
    }
}

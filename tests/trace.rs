//! Causal journey tracing: determinism, zero-overhead-off, and report
//! contracts.
//!
//! The tracing layer promises (TracePlan docs):
//!
//! 1. with tracing ON, the sampled journey set, every event stamp, and
//!    every derived report are bit-identical across thread counts AND
//!    fast-forward on/off — sampling decisions are counter-based, never
//!    drawn from execution order;
//! 2. with tracing OFF, the machine's observable output (cycles, memory
//!    digest, stats registry) is byte-identical to a build that never
//!    heard of tracing — no `trace.*` key is ever emitted;
//! 3. the latency-breakdown report decomposes round-trips into the hops
//!    the machine actually models: the `service` segment of every traced
//!    global-memory op is exactly the module service time.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::stats::export::{chrome_trace_with_journeys, flat_text};
use cedar_machine::trace::class;
use cedar_machine::{MachineConfig, MachineStats, TraceEvent, TracePlan};

const PLAN: TracePlan = TracePlan {
    seed: 0xCEDA,
    sample_ppm: 250_000,
};

/// Everything a traced run can leak: the usual fingerprint plus the full
/// trace-event stream.
struct Traced {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
    events: Vec<TraceEvent>,
    dropped: u64,
    machine: Machine,
}

fn run(
    version: Rank64Version,
    threads: usize,
    fast_forward: bool,
    plan: Option<TracePlan>,
) -> Traced {
    let clusters = 4;
    let mut cfg = MachineConfig::cedar_with_clusters(clusters).with_threads(threads);
    cfg.fast_forward = fast_forward;
    if let Some(p) = plan {
        cfg = cfg.with_trace(p);
    }
    let mut m = Machine::new(cfg).unwrap();
    let kern = Rank64 {
        n: 64,
        k: 64,
        version,
    };
    let progs = kern.build(&mut m, clusters);
    let r = m.run(progs, 1_000_000_000).unwrap();
    Traced {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
        events: m.trace_events().to_vec(),
        dropped: m.trace_dropped(),
        machine: m,
    }
}

/// Promise 1: the traced run's complete output — including the raw event
/// stream — is bit-identical at 1/2/4 threads, with fast-forward on and
/// off. This also exercises the parallel engine's shard-trace merge on
/// real traffic.
#[test]
fn traced_runs_are_bit_identical_across_threads_and_fastforward() {
    let version = Rank64Version::GmPrefetch { block_words: 32 };
    let base = run(version, 1, true, Some(PLAN));
    assert!(base.cycles > 0);
    assert!(
        !base.events.is_empty(),
        "a 25% sampling rate must catch journeys on this workload"
    );
    assert_eq!(base.dropped, 0, "test workload must fit the trace buffers");
    for (threads, fast_forward) in [(2, true), (4, true), (1, false), (4, false)] {
        let got = run(version, threads, fast_forward, Some(PLAN));
        let label = format!("{threads} threads, fast-forward {fast_forward}");
        assert_eq!(base.cycles, got.cycles, "{label}: cycle count drifted");
        assert_eq!(base.memory, got.memory, "{label}: memory state drifted");
        assert_eq!(base.stats, got.stats, "{label}: stats registry drifted");
        assert_eq!(base.dropped, got.dropped, "{label}: drop count drifted");
        assert_eq!(
            base.events.len(),
            got.events.len(),
            "{label}: event count drifted"
        );
        if let Some(i) = (0..base.events.len()).find(|&i| base.events[i] != got.events[i]) {
            panic!(
                "{label}: trace stream diverges at event {i}:\n  serial: {:?}\n  other:  {:?}",
                base.events[i], got.events[i]
            );
        }
    }
}

/// Promise 2: a `TracePlan` that samples nothing, or no plan at all,
/// leaves every observable byte identical — and tracing ON changes no
/// simulated outcome, only adds `trace.*` keys to the registry.
#[test]
fn tracing_off_is_byte_identical_and_on_is_read_only() {
    let version = Rank64Version::GmCache;
    let untraced = run(version, 1, true, None);
    let zero_rate = run(
        version,
        1,
        true,
        Some(TracePlan {
            seed: 7,
            sample_ppm: 0,
        }),
    );
    assert_eq!(untraced.cycles, zero_rate.cycles);
    assert_eq!(untraced.memory, zero_rate.memory);
    assert_eq!(
        flat_text(&untraced.stats),
        flat_text(&zero_rate.stats),
        "a zero-rate plan must leave the registry byte-identical"
    );
    assert!(zero_rate.events.is_empty());

    let traced = run(version, 1, true, Some(PLAN));
    assert_eq!(
        untraced.cycles, traced.cycles,
        "tracing changed the simulation"
    );
    assert_eq!(
        untraced.memory, traced.memory,
        "tracing changed memory state"
    );
    for (key, value) in untraced.stats.counters() {
        assert!(
            !key.starts_with("trace."),
            "untraced registry leaked a trace key: {key}"
        );
        assert_eq!(
            traced
                .stats
                .counters()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v),
            Some(value),
            "tracing perturbed counter {key}"
        );
    }
    let extra: Vec<&str> = traced
        .stats
        .counters()
        .map(|(k, _)| k)
        .filter(|k| untraced.stats.counters().all(|(u, _)| u != *k))
        .collect();
    assert!(
        !extra.is_empty() && extra.iter().all(|k| k.starts_with("trace.")),
        "tracing may only add trace.* keys, added: {extra:?}"
    );
}

/// Promise 3, on a Table 1 row (rank-64 GM/prefetch): every traced
/// global-memory op spends exactly the module service time in the
/// `service` segment, and the assembled journey set matches the
/// `trace.journeys` counter the registry reports.
#[test]
fn breakdown_reproduces_module_service_time_on_a_table1_row() {
    // The cache version exercises every journey class at once: prefetched
    // panel copy-in, global write-back, cluster-cache triads, and the
    // per-cluster barriers separating chunks.
    let traced = run(
        Rank64Version::GmCache,
        1,
        true,
        Some(TracePlan {
            seed: 0xCEDA,
            sample_ppm: 1_000_000,
        }),
    );
    let journeys = traced.machine.trace_journeys();
    let counted = traced
        .stats
        .counters()
        .find(|(k, _)| *k == "trace.journeys")
        .map(|(_, v)| v);
    assert_eq!(counted, Some(journeys.len() as u64));

    let breakdown = traced.machine.latency_breakdown();
    // The interleaved modules service one word per SERVICE_CYCLES = 2; a
    // traced op's svc_start -> svc_end span is exactly that, independent
    // of queueing (which lands in module_queue).
    for cls in [class::WRITE, class::PREFETCH] {
        let mean = breakdown
            .mean(cls, "service")
            .unwrap_or_else(|| panic!("no service rows for class {}", class::name(cls)));
        assert!(
            (mean - 2.0).abs() < 1e-9,
            "class {} service mean {mean} != module service time 2",
            class::name(cls)
        );
    }
    // Barrier episodes cover every CE: 8 arrivals per cluster barrier.
    let episodes = traced.machine.barrier_episodes();
    assert!(!episodes.is_empty(), "rank-64 synchronizes via barriers");
    for e in &episodes {
        assert_eq!(e.arrivals.len(), 8, "cluster barrier has 8 participants");
        assert!(e
            .arrivals
            .iter()
            .any(|&(ce, at)| ce == e.last_ce && at == e.last_at));
    }
}

/// The Chrome exporter stays well-formed with journeys attached: one
/// balanced "b"/"e" pair per journey, on top of the existing timeline.
#[test]
fn chrome_export_with_journeys_is_wellformed() {
    let traced = run(Rank64Version::GmCache, 2, true, Some(PLAN));
    let journeys = traced.machine.trace_journeys();
    assert!(!journeys.is_empty());
    let json =
        chrome_trace_with_journeys(traced.machine.timeline(), &traced.stats, 170.0, &journeys);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert_eq!(json.matches(r#""ph":"b""#).count(), journeys.len());
    assert_eq!(json.matches(r#""ph":"e""#).count(), journeys.len());
    assert!(json.contains(r#""cat":"journey""#));
}

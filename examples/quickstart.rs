//! Quickstart: build a Cedar, look at its organization (Figures 1 and 2),
//! and run a first parallel loop through the Xylem runtime.
//!
//! ```text
//! cargo run --release -p cedar-examples --bin quickstart
//! ```

use cedar::machine::program::{MemOperand, VectorOp};
use cedar::xylem::{Gang, Xylem};
use cedar_examples::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("The Cedar system (ISCA 1993) — simulated");

    let mut machine = cedar::cedar_machine()?;
    let cfg = machine.config().clone();
    println!(
        "machine: {} clusters x {} CEs @ {:.0} ns cycle ({} CEs, {:.1} MFLOPS absolute peak)",
        cfg.clusters,
        cfg.ces_per_cluster,
        cfg.cycle_ns,
        cfg.total_ces(),
        cfg.total_ces() as f64 * 2.0 / (cfg.cycle_ns * 1e-3),
    );

    // Figure 1 / Figure 2, rendered from the live configuration.
    println!(
        r#"
          Cedar architecture (Fig. 1)             Cluster (Fig. 2)
   +------------------- global memory ------+     +--- cluster memory ---+
   |  {} interleaved modules + sync procs   |     |  {} MB interleaved   |
   +--------------------+-------------------+     +----------+-----------+
            | forward / reverse omega networks               | memory bus
   +--------+---------+  ({}x{} crossbars,      +------------+-----------+
   | {} ports, {} stages |  {}-word queues)      | {} KB 4-way shared cache|
   +--------+---------+                      +------------+-----------+
            |                                            | cluster switch
   +--------+------- 4 Alliant FX/8 clusters -+   CE CE CE CE CE CE CE CE
   | each: 8 CEs + cache + concurrency bus    |   |  concurrency bus     |
   +------------------------------------------+   +----------------------+
"#,
        cfg.global_memory.modules,
        cfg.cluster_memory.capacity_bytes / (1024 * 1024),
        cfg.network.radix,
        cfg.network.radix,
        cfg.global_memory.modules,
        2,
        cfg.network.queue_words,
        cfg.cache.capacity_bytes / 1024,
    );

    // A first parallel loop: 256 iterations of chained vector work,
    // self-scheduled over all 32 CEs with the measured XDOALL costs.
    banner("an XDOALL over the whole machine");
    let xylem = Xylem::default();
    let mut gang = Gang::clusters(cfg.clusters, cfg.ces_per_cluster);
    xylem.xdoall(&mut machine, &mut gang, 256, 1, |_ce, _i, b| {
        b.vector(VectorOp {
            length: 32,
            flops_per_element: 2,
            operand: MemOperand::None,
        });
    });
    let report = machine.run(gang.finish(), 50_000_000)?;
    println!(
        "256 iterations x 64 flops = {} flops in {} cycles ({:.1} us): {:.1} MFLOPS",
        report.flops,
        report.cycles,
        report.seconds * 1e6,
        report.mflops
    );
    println!(
        "XDOALL startup is ~90 us and each fetch ~30 us, so a tiny loop like this is overhead-bound —"
    );
    println!(
        "exactly why Cedar Fortran also has CDOALL (concurrency bus) and SDOALL/CDOALL nests."
    );
    Ok(())
}

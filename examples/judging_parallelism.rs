//! The §4.3 methodology as a library: the Practical Parallelism Tests
//! applied to published reference data, without any simulation (fast).
//!
//! ```text
//! cargo run --release -p cedar-examples --bin judging_parallelism
//! ```

use cedar::methodology::bands::{acceptable_level, classify, high_level};
use cedar::methodology::metrics::harmonic_mean;
use cedar::methodology::ppt::{ppt2, CodePoint};
use cedar::methodology::{ppt1, ppt3};
use cedar::perfect::codes::CodeName;
use cedar::perfect::reference::{cray1_mflops, ymp, ymp_parallel_mflops};
use cedar_examples::banner;

fn main() {
    banner("Judging parallelism: the five Practical Parallelism Tests");
    println!(
        "high performance : speedup >= P/2        (32 CEs: {})",
        high_level(32)
    );
    println!(
        "acceptable       : speedup >= P/(2 log P) (32 CEs: {:.1})",
        acceptable_level(32)
    );

    banner("PPT1 - delivered performance (YMP/8 manual versions)");
    let pts: Vec<CodePoint> = CodeName::ALL
        .iter()
        .filter_map(|&c| {
            ymp(c).manual_speedup.map(|s| CodePoint {
                code: c.to_string(),
                speedup: s,
            })
        })
        .collect();
    let r = ppt1("Cray YMP/8", 8, pts);
    for (pt, band) in &r.points {
        println!("  {:8} speedup {:4.1}  [{band}]", pt.code, pt.speedup);
    }
    println!(
        "  bands H/I/U = {}/{}/{} -> PPT1 {}",
        r.high,
        r.intermediate,
        r.unacceptable,
        if r.passes { "PASS" } else { "FAIL" }
    );

    banner("PPT2 - stable performance (Table 5 reference ensembles)");
    for (name, rates) in [
        (
            "Cray 1 ",
            CodeName::ALL
                .iter()
                .map(|&c| cray1_mflops(c))
                .collect::<Vec<_>>(),
        ),
        (
            "YMP/8  ",
            CodeName::ALL
                .iter()
                .map(|&c| ymp_parallel_mflops(c))
                .collect::<Vec<_>>(),
        ),
    ] {
        let rep = ppt2(name, &rates, 2);
        println!(
            "  {name} In(13,0)={:6.1}  In(13,2)={:5.1}  In(13,6)={:4.1}  exclusions needed: {:?}  -> {}",
            rep.in_0.unwrap_or(f64::NAN),
            rep.in_2.unwrap_or(f64::NAN),
            rep.in_6.unwrap_or(f64::NAN),
            rep.exclusions_needed,
            if rep.passes { "PASS" } else { "FAIL (unstable)" }
        );
    }

    banner("PPT3 - portability/programmability (YMP autotasked speedups)");
    let speedups: Vec<f64> = CodeName::ALL.iter().map(|&c| ymp(c).auto_speedup).collect();
    let rep = ppt3("Cray YMP", &speedups, 8);
    println!(
        "  restructuring bands H/I/U = {}/{}/{} (paper Table 6: 0/6/7)",
        rep.high, rep.intermediate, rep.unacceptable
    );
    for (c, s) in CodeName::ALL.iter().zip(&speedups) {
        println!("    {:8} {:4.2}x  [{}]", c.to_string(), s, classify(*s, 8));
    }

    banner("rates");
    let hm = harmonic_mean(
        &CodeName::ALL
            .iter()
            .map(|&c| ymp(c).mflops)
            .collect::<Vec<_>>(),
    );
    println!(
        "  YMP/8 baseline harmonic-mean MFLOPS = {hm:.1} (paper: 23.7, 7.4x Cedar's automatable)"
    );
    println!("\nPPT4 needs machine runs (see the ppt4 bench); PPT5 is out of the paper's scope.");
}

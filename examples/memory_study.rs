//! The memory-system study of §4.1 in miniature: the rank-64 update in
//! its three access modes on one cluster, and what the prefetch monitor
//! sees.
//!
//! ```text
//! cargo run --release -p cedar-examples --bin memory_study
//! ```

use cedar::kernels::staged::rank64::{Rank64, Rank64Version};
use cedar::machine::Machine;
use cedar_examples::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("rank-64 update: the three memory versions (one cluster)");
    println!("paper (Table 1, 1 cluster): GM/no-pref 14.5, GM/pref 50.0, GM/cache 52.0 MFLOPS\n");

    for (name, version) in [
        ("GM/no-pref", Rank64Version::GmNoPrefetch),
        ("GM/pref  ", Rank64Version::GmPrefetch { block_words: 32 }),
        ("GM/cache ", Rank64Version::GmCache),
    ] {
        let mut m = Machine::cedar()?;
        let kern = Rank64 {
            n: 128,
            k: 64,
            version,
        };
        let progs = kern.build(&mut m, 1);
        let r = m.run(progs, 2_000_000_000)?;
        println!(
            "{name}: {:6.1} MFLOPS   (prefetch: {} requests, first-word latency {:.1} cy, interarrival {:.2} cy)",
            r.mflops,
            r.prefetch.requests,
            r.prefetch.mean_latency(),
            r.prefetch.mean_interarrival(),
        );
    }

    banner("why: the memory hierarchy's three speeds");
    println!("direct global load : 13-cycle latency, two outstanding requests per CE");
    println!("prefetched stream  : PFU issues up to 512 requests, data flows at link speed");
    println!("cluster cache      : 8 words/cycle per cluster once the panel is staged");
    Ok(())
}

//! One Perfect Benchmarks code through the whole §3–§4 pipeline: serial
//! baseline, 1988 KAP, the automatable transformations, both ablations,
//! and the hand-optimized version.
//!
//! ```text
//! cargo run --release -p cedar-examples --bin perfect_code [CODE]
//! ```
//!
//! `CODE` defaults to TRFD; try QCD to watch a serial random-number
//! generator cap a whole application, or SPICE for the archetypal poor
//! performer.

use cedar::perfect::codes::CodeName;
use cedar::perfect::run::{CodeStudy, Variant};
use cedar_examples::banner;

fn parse_code(arg: Option<String>) -> CodeName {
    let want = arg.unwrap_or_else(|| "TRFD".to_string()).to_uppercase();
    CodeName::ALL
        .into_iter()
        .find(|c| c.to_string() == want)
        .unwrap_or_else(|| {
            eprintln!("unknown code {want}; using TRFD");
            CodeName::Trfd
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = parse_code(std::env::args().nth(1));
    banner(&format!("{code} on the simulated Cedar (4 clusters)"));

    let study = CodeStudy::new(code, 4)?;
    println!(
        "{:18} {:>10} {:>10} {:>8}",
        "variant", "time (s)", "MFLOPS", "speedup"
    );
    for v in Variant::ALL {
        if let Some(run) = study.run(v)? {
            println!(
                "{:18} {:>10.1} {:>10.2} {:>8.1}",
                v.to_string(),
                run.seconds,
                run.mflops,
                run.speedup
            );
        }
    }
    println!();
    println!("The 1988 KAP column shows why the paper built the 'automatable' set:");
    println!("array privatization, parallel reductions, induction substitution, runtime");
    println!("dependence tests, balanced stripmining, SAVE/RETURN parallelization.");
    Ok(())
}

//! The PPT4 conjugate-gradient scalability study, abbreviated: CG MFLOPS
//! on Cedar across problem sizes at 8 and 32 CEs.
//!
//! ```text
//! cargo run --release -p cedar-examples --bin cg_scaling
//! ```

use cedar::kernels::staged::cg::StagedCg;
use cedar::methodology::bands::classify;
use cedar_examples::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("CG on Cedar: MFLOPS by problem size (paper: 34-48 MFLOPS at 32 CEs, high band for N >~ 10-16K)");
    let sizes = [2_048u64, 8_192, 32_768, 131_072];
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>14}",
        "N", "8 CEs", "32 CEs", "speedup", "band (32 CEs)"
    );
    for &n in &sizes {
        let cg = StagedCg { n, iterations: 2 };
        let one = cg.mflops_on_cedar(1)?;
        let eight = cg.mflops_on_cedar(8)?;
        let thirty_two = cg.mflops_on_cedar(32)?;
        let speedup = thirty_two / one;
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>10.1} {:>14}",
            n,
            eight,
            thirty_two,
            speedup,
            classify(speedup, 32).to_string()
        );
    }
    println!(
        "\nSmall systems are barrier- and scheduling-bound; large ones stream at memory speed."
    );
    Ok(())
}

//! The performance-monitoring hardware in action: software-posted events
//! in the tracer and the reverse-network latency histogrammer.
//!
//! ```text
//! cargo run --release -p cedar-examples --bin monitor_demo
//! ```

use cedar::machine::ids::CeId;
use cedar::machine::program::{AddressExpr, MemOperand, Op, ProgramBuilder, VectorOp};
use cedar_examples::banner;

const PHASE_START: u32 = 1;
const PHASE_END: u32 = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("performance monitoring: event tracer + latency histogrammer");
    let mut m = cedar::cedar_machine()?;
    let mut progs = Vec::new();
    for ce in 0..8usize {
        let mut b = ProgramBuilder::new();
        b.scalar(1 + (ce as u32) * 4);
        b.push(Op::PostEvent { tag: PHASE_START });
        b.repeat(32, |b| {
            b.push(Op::PrefetchArm {
                length: 32,
                stride: 1,
            });
            b.push(Op::PrefetchFire {
                base: AddressExpr::new((ce * 100_003) as u64).with_coeff(0, 32),
            });
            b.vector(VectorOp {
                length: 32,
                flops_per_element: 2,
                operand: MemOperand::Prefetched,
            });
        });
        b.push(Op::PostEvent { tag: PHASE_END });
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, 10_000_000)?;

    println!("\nsoftware events (cycle, phase, CE):");
    for (at, tag) in m.tracer().events() {
        println!(
            "  {:>8}  {}  CE{}",
            at.0,
            if tag >> 8 == PHASE_START { "start" } else { "end  " },
            tag & 0xff
        );
    }

    println!("\nprefetch round-trip latency histogram (cycles: count):");
    let h = m.latency_histogram();
    for (cycles, &count) in h.bins().iter().enumerate() {
        if count > 0 && cycles < 64 {
            println!("  {cycles:>3}: {count:>6} {}", "#".repeat((count as usize / 64).min(60)));
        }
    }
    println!(
        "\nmean round trip {:.1} cycles over {} words; PFU first-word latency {:.1}, interarrival {:.2}",
        h.mean(),
        h.total(),
        r.prefetch.mean_latency(),
        r.prefetch.mean_interarrival()
    );
    println!("(the paper's external tracers hold 1M events; histogrammers 64K counters)");
    Ok(())
}

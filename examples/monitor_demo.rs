//! The performance-monitoring hardware in action: software-posted events
//! in the tracer, the reverse-network latency histogrammer, and the
//! machine-wide stats registry (counter tree + per-CE utilization).
//!
//! ```text
//! cargo run --release -p cedar-examples --bin monitor_demo
//! ```

use cedar::machine::ids::CeId;
use cedar::machine::program::{AddressExpr, MemOperand, Op, ProgramBuilder, VectorOp};
use cedar::report::StatsTable;
use cedar_examples::banner;

const PHASE_START: u32 = 1;
const PHASE_END: u32 = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("performance monitoring: event tracer + latency histogrammer");
    let mut m = cedar::cedar_machine()?;
    let mut progs = Vec::new();
    for ce in 0..8usize {
        let mut b = ProgramBuilder::new();
        b.scalar(1 + (ce as u32) * 4);
        b.push(Op::PostEvent { tag: PHASE_START });
        b.repeat(32, |b| {
            b.push(Op::PrefetchArm {
                length: 32,
                stride: 1,
            });
            b.push(Op::PrefetchFire {
                base: AddressExpr::new((ce * 100_003) as u64).with_coeff(0, 32),
            });
            b.vector(VectorOp {
                length: 32,
                flops_per_element: 2,
                operand: MemOperand::Prefetched,
            });
        });
        b.push(Op::PostEvent { tag: PHASE_END });
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, 10_000_000)?;

    println!("\nsoftware events (cycle, phase, CE):");
    for (at, tag) in m.tracer().events() {
        println!(
            "  {:>8}  {}  CE{}",
            at.0,
            if tag >> 8 == PHASE_START {
                "start"
            } else {
                "end  "
            },
            tag & 0xff
        );
    }

    println!("\nprefetch round-trip latency histogram (cycles: count):");
    let h = m.latency_histogram();
    for (cycles, &count) in h.bins().iter().enumerate() {
        if count > 0 && cycles < 64 {
            println!(
                "  {cycles:>3}: {count:>6} {}",
                "#".repeat((count as usize / 64).min(60))
            );
        }
    }
    println!(
        "\nmean round trip {:.1} cycles over {} words; PFU first-word latency {:.1}, interarrival {:.2}",
        h.mean(),
        h.total(),
        r.prefetch.mean_latency(),
        r.prefetch.mean_interarrival()
    );
    println!("(the paper's external tracers hold 1M events; histogrammers 64K counters)");

    // The same probes feed the machine-wide stats registry: every run
    // returns a per-run delta of named counters from every subsystem.
    println!("\nper-run counter tree (prefetch, network and tracer groups):");
    print!(
        "{}",
        StatsTable::render_filtered(&r.stats, |g| {
            g == "prefetch" || g == "net" || g == "tracer"
        })
    );

    // Per-CE utilization from the run's timeline: how each engine spent
    // its cycles (busy / memory stall / sync stall / idle).
    println!("utilization (first 8 CEs):");
    let timeline = m.timeline();
    for (ce, t) in timeline.per_ce_totals().iter().enumerate().take(8) {
        let total = t.total().max(1);
        let pct = |v: u64| 100.0 * v as f64 / total as f64;
        println!(
            "  CE{ce}: busy {:>5.1}%  stall-mem {:>5.1}%  stall-sync {:>5.1}%  idle {:>5.1}%",
            pct(t.busy),
            pct(t.stall_mem),
            pct(t.stall_sync),
            pct(t.idle)
        );
    }
    println!(
        "(timeline: {} buckets of {} cycles; export with cedar_machine::stats::export::chrome_trace)",
        timeline.buckets().len(),
        timeline.bucket_cycles()
    );
    Ok(())
}

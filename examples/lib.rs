//! Shared helpers for the runnable examples.
//!
//! The examples exercise the public `cedar` API on the scenarios the
//! paper's introduction motivates: programming the memory hierarchy
//! (`memory_study`), restructuring real applications (`perfect_code`),
//! scalability studies (`cg_scaling`), and judging parallel systems
//! (`judging_parallelism`). Start with `quickstart`.

/// Print a section banner.
pub fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

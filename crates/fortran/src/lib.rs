//! # cedar-fortran
//!
//! The Cedar Fortran programming model of the reproduction: a loop-nest
//! intermediate representation ([`ir`]), the restructurer with its two
//! capability levels — the retargeted 1988 KAP and the paper's
//! "automatable" transformation set ([`restructure`]) — and the backend
//! that lowers restructured programs onto the simulated machine
//! ([`compile`]).
//!
//! Cedar Fortran is a FORTRAN 77 dialect with parallel and vector
//! extensions: `CDOALL`, `SDOALL` and `XDOALL` loops, `GLOBAL` data
//! placement, loop-local privatized declarations, compiler-directed
//! prefetch and access to the global synchronization hardware (§3 of the
//! paper). The reproduction models programs at the granularity that
//! determines performance — trip counts, operation mixes, dependence
//! facts, placement — rather than parsing Fortran text.
//!
//! ## Example
//!
//! ```
//! use cedar_fortran::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram};
//! use cedar_fortran::restructure::{Level, Restructurer};
//! use cedar_fortran::compile::Backend;
//!
//! # fn main() -> Result<(), cedar_machine::MachineError> {
//! let mut src = SourceProgram::new("demo");
//! let mut ph = Phase::new("main", 1);
//! ph.loops.push(LoopNest {
//!     trips: 128,
//!     body: BodyMix {
//!         vector_ops: 2,
//!         vector_len: 32,
//!         flops_per_elem: 2,
//!         global_frac: 1.0,
//!         global_writes: 1,
//!         scalar_global_reads: 0,
//!         scalar_cycles: 8,
//!     },
//!     needs: vec![],
//!     parallel: true,
//!     vectorizable: true,
//!     home: DataHome::Global,
//! });
//! src.phases.push(ph);
//!
//! let compiled = Restructurer::default().restructure(&src, Level::Automatable);
//! let report = Backend::default().execute(&compiled, 4, 100_000_000)?;
//! assert_eq!(report.flops, src.flops());
//! # Ok(())
//! # }
//! ```

pub mod compile;
pub mod ir;
pub mod passes;
pub mod restructure;

pub use compile::{Backend, ExecReport, ScalarModel};
pub use ir::{BodyMix, DataHome, IoSpec, LoopNest, Phase, SourceProgram, Transform};
pub use restructure::{
    CompiledLoop, CompiledPhase, CompiledProgram, Level, Restructurer, Schedule,
};

//! The restructurer: KAP/Cedar and the "automatable" transformation set.
//!
//! The parallelizing-compiler project had two parts (§3.3): a retargeted
//! 1988 KAP restructurer, and a set of advanced transformations applied
//! by hand but believed automatable — array privatization, parallel
//! reductions, advanced induction-variable substitution, runtime
//! dependence tests, balanced stripmining, and parallelization in the
//! presence of SAVE/RETURN, resting on symbolic and interprocedural
//! analysis. [`Restructurer::restructure`] turns a [`SourceProgram`] into
//! a [`CompiledProgram`] by deciding, per loop, whether the level's
//! capabilities unlock its parallelism and how to schedule it (§3.2).

use std::collections::BTreeSet;

use crate::ir::{BodyMix, IoSpec, LoopNest, Phase, SourceProgram, Transform};
use crate::passes;

/// Restructuring level: the columns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Uniprocessor scalar baseline.
    Serial,
    /// The 1988 KAP restructurer retargeted to Cedar.
    KapCedar,
    /// KAP plus the manually-applied automatable transformations.
    Automatable,
}

impl Level {
    /// The transformation set available at this level.
    pub fn capabilities(self) -> BTreeSet<Transform> {
        match self {
            Level::Serial => BTreeSet::new(),
            Level::KapCedar => [Transform::BasicDependenceTest].into_iter().collect(),
            Level::Automatable => Transform::ALL.into_iter().collect(),
        }
    }
}

/// How a compiled loop executes on the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Scalar on one CE.
    Serial,
    /// Vectorized on one CE.
    VectorSerial,
    /// Self-scheduled over one cluster's concurrency bus, other clusters
    /// idle (the KAP single-cluster confinement).
    CdoallOneCluster,
    /// Self-scheduled over the whole machine through global memory.
    Xdoall,
    /// SDOALL/CDOALL nest: iterations split over clusters, self-scheduled
    /// within each cluster over the concurrency bus.
    SdoallCdoall,
}

/// A loop after restructuring.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLoop {
    pub schedule: Schedule,
    pub trips: u64,
    pub body: BodyMix,
    /// Whether privatization moved the loop's local data into cluster
    /// memory.
    pub privatized: bool,
    /// Whether a parallel reduction epilogue is needed.
    pub reduction: bool,
    /// Iterations per scheduling dispatch.
    pub chunk: u32,
}

/// A phase after restructuring.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPhase {
    pub name: String,
    pub loops: Vec<CompiledLoop>,
    pub serial_cycles: u64,
    pub io: Option<IoSpec>,
    pub calls: u32,
    pub extra_barriers: u32,
}

/// A program after restructuring, ready for lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    pub name: String,
    pub level: Level,
    pub phases: Vec<CompiledPhase>,
}

impl CompiledProgram {
    /// Total floating-point operations (identical to the source's).
    pub fn flops(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| {
                u64::from(p.calls)
                    * p.loops
                        .iter()
                        .map(|l| l.trips * l.body.flops_per_iter())
                        .sum::<u64>()
            })
            .sum()
    }

    /// Fraction of flops in loops that run in parallel.
    pub fn parallel_fraction(&self) -> f64 {
        let mut par = 0u64;
        let mut tot = 0u64;
        for p in &self.phases {
            for l in &p.loops {
                let f = u64::from(p.calls) * l.trips * l.body.flops_per_iter();
                tot += f;
                if matches!(
                    l.schedule,
                    Schedule::Xdoall | Schedule::SdoallCdoall | Schedule::CdoallOneCluster
                ) {
                    par += f;
                }
            }
        }
        if tot == 0 {
            0.0
        } else {
            par as f64 / tot as f64
        }
    }
}

/// The restructurer.
#[derive(Debug, Clone)]
pub struct Restructurer {
    /// Per-iteration work (cycles) below which the *automatable* compiler
    /// prefers the cheap SDOALL/CDOALL hierarchy over XDOALL.
    pub xdoall_min_iter_cycles: u64,
    /// Per-iteration work below which 1988 KAP confines a loop to one
    /// cluster ("in a few cases program execution was confined to a
    /// single cluster to avoid intercluster overhead"); above it KAP
    /// emits its default XDOALL.
    pub kap_one_cluster_below_cycles: u64,
}

impl Default for Restructurer {
    fn default() -> Self {
        Restructurer {
            // ~10x the 30us XDOALL fetch cost.
            xdoall_min_iter_cycles: 1800,
            kap_one_cluster_below_cycles: 300,
        }
    }
}

impl Restructurer {
    /// Estimate one iteration's execution cycles on a CE (vector rate).
    fn iter_cycles(body: &BodyMix) -> u64 {
        let vec = u64::from(body.vector_ops) * (12 + u64::from(body.vector_len));
        let scalar = u64::from(body.scalar_cycles) + 13 * u64::from(body.scalar_global_reads);
        vec + scalar
    }

    /// Restructure a source program at a level.
    pub fn restructure(&self, src: &SourceProgram, level: Level) -> CompiledProgram {
        let caps = level.capabilities();
        let phases = src
            .phases
            .iter()
            .map(|ph| self.restructure_phase(ph, level, &caps))
            .collect();
        CompiledProgram {
            name: src.name.clone(),
            level,
            phases,
        }
    }

    fn restructure_phase(
        &self,
        ph: &Phase,
        level: Level,
        caps: &BTreeSet<Transform>,
    ) -> CompiledPhase {
        CompiledPhase {
            name: ph.name.clone(),
            loops: ph
                .loops
                .iter()
                .map(|l| self.restructure_loop(l, level, caps))
                .collect(),
            serial_cycles: ph.serial_cycles,
            io: ph.io.clone(),
            calls: ph.calls,
            extra_barriers: ph.extra_barriers,
        }
    }

    fn restructure_loop(
        &self,
        l: &LoopNest,
        level: Level,
        caps: &BTreeSet<Transform>,
    ) -> CompiledLoop {
        let applied = passes::apply(l, caps);
        let parallelized = applied.parallelized && level != Level::Serial;
        let privatized = parallelized && applied.privatized;
        let reduction = parallelized && applied.reduction;

        let schedule = if !parallelized {
            if level != Level::Serial && l.vectorizable {
                Schedule::VectorSerial
            } else {
                Schedule::Serial
            }
        } else {
            let iter = Self::iter_cycles(&l.body);
            match level {
                Level::Serial => unreachable!("serial level never parallelizes"),
                // 1988 KAP: its default is an XDOALL; only truly
                // fine-grained loops are confined to one cluster to avoid
                // intercluster overhead.
                Level::KapCedar => {
                    if iter >= self.kap_one_cluster_below_cycles {
                        Schedule::Xdoall
                    } else {
                        Schedule::CdoallOneCluster
                    }
                }
                // Automatable: hierarchical SDOALL/CDOALL for fine grain
                // (cheap bus dispatch, data distribution), XDOALL when
                // iterations are heavy enough to amortize it.
                Level::Automatable => {
                    if iter >= self.xdoall_min_iter_cycles {
                        Schedule::Xdoall
                    } else {
                        Schedule::SdoallCdoall
                    }
                }
            }
        };
        // Balanced stripmining lets the automatable compiler chunk
        // fine-grained loops; KAP dispatches one iteration at a time.
        let chunk = if schedule == Schedule::SdoallCdoall && applied.chunked {
            4
        } else {
            1
        };
        CompiledLoop {
            schedule,
            trips: l.trips,
            body: l.body.clone(),
            privatized,
            reduction,
            chunk,
        }
    }
}

impl CompiledProgram {
    /// A human-readable restructuring report: per loop, the chosen
    /// schedule, placement and why — the compiler's `-verbose` listing.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "restructuring report for {} at {:?}:\n",
            self.name, self.level
        );
        for ph in &self.phases {
            out.push_str(&format!(
                "  phase {} (x{} calls, {} serial cycles{})\n",
                ph.name,
                ph.calls,
                ph.serial_cycles,
                if ph.io.is_some() { ", +I/O" } else { "" }
            ));
            for (i, l) in ph.loops.iter().enumerate() {
                out.push_str(&format!(
                    "    loop {}: {} trips, {} flops/iter -> {:?}{}{}{}\n",
                    i,
                    l.trips,
                    l.body.flops_per_iter(),
                    l.schedule,
                    if l.privatized { ", privatized" } else { "" },
                    if l.reduction { ", reduction" } else { "" },
                    if l.chunk > 1 {
                        format!(", chunk {}", l.chunk)
                    } else {
                        String::new()
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram, Transform};

    fn body(vector_len: u32) -> BodyMix {
        BodyMix {
            vector_ops: 2,
            vector_len,
            flops_per_elem: 2,
            global_frac: 1.0,
            global_writes: 1,
            scalar_global_reads: 0,
            scalar_cycles: 20,
        }
    }

    fn lp(needs: Vec<Transform>, home: DataHome) -> LoopNest {
        LoopNest {
            trips: 1000,
            body: body(32),
            needs,
            parallel: true,
            vectorizable: true,
            home,
        }
    }

    fn prog(loops: Vec<LoopNest>) -> SourceProgram {
        let mut p = SourceProgram::new("t");
        let mut ph = Phase::new("main", 1);
        ph.loops = loops;
        p.phases.push(ph);
        p
    }

    #[test]
    fn serial_level_never_parallelizes() {
        let r = Restructurer::default();
        let c = r.restructure(&prog(vec![lp(vec![], DataHome::Global)]), Level::Serial);
        assert_eq!(c.phases[0].loops[0].schedule, Schedule::Serial);
        assert_eq!(c.parallel_fraction(), 0.0);
    }

    #[test]
    fn kap_handles_basic_loops_but_not_privatization() {
        let r = Restructurer::default();
        let basic = lp(vec![Transform::BasicDependenceTest], DataHome::Global);
        let needs_priv = lp(vec![Transform::ArrayPrivatization], DataHome::Privatizable);
        let c = r.restructure(&prog(vec![basic, needs_priv]), Level::KapCedar);
        assert_ne!(c.phases[0].loops[0].schedule, Schedule::Serial);
        assert_ne!(c.phases[0].loops[0].schedule, Schedule::VectorSerial);
        // The second loop stays on one CE, but vectorized.
        assert_eq!(c.phases[0].loops[1].schedule, Schedule::VectorSerial);
        assert!((c.parallel_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn automatable_unlocks_privatization_and_placement() {
        let r = Restructurer::default();
        let needs_priv = lp(vec![Transform::ArrayPrivatization], DataHome::Privatizable);
        let c = r.restructure(&prog(vec![needs_priv]), Level::Automatable);
        let l = &c.phases[0].loops[0];
        assert!(matches!(
            l.schedule,
            Schedule::SdoallCdoall | Schedule::Xdoall
        ));
        assert!(l.privatized, "privatizable data should move to clusters");
    }

    #[test]
    fn granularity_drives_schedule_choice() {
        let r = Restructurer::default();
        let mut fine = lp(vec![], DataHome::Global);
        fine.body = body(8); // ~2*(12+8)+20 = 60 cycles/iter: fine grained
        let mut coarse = lp(vec![], DataHome::Global);
        coarse.body.vector_ops = 40;
        coarse.body.vector_len = 64; // 40*(12+64) >= 1800
        let c = r.restructure(&prog(vec![fine, coarse]), Level::Automatable);
        assert_eq!(c.phases[0].loops[0].schedule, Schedule::SdoallCdoall);
        assert_eq!(c.phases[0].loops[1].schedule, Schedule::Xdoall);
        // KAP confines the fine loop to one cluster instead.
        let ck = r.restructure(&prog(vec![lp(vec![], DataHome::Global)]), Level::KapCedar);
        let _ = ck;
    }

    #[test]
    fn reduction_flag_set_when_transform_used() {
        let r = Restructurer::default();
        let red = lp(vec![Transform::ParallelReduction], DataHome::Global);
        let c = r.restructure(&prog(vec![red.clone()]), Level::Automatable);
        assert!(c.phases[0].loops[0].reduction);
        let ck = r.restructure(&prog(vec![red]), Level::KapCedar);
        assert!(!ck.phases[0].loops[0].reduction);
        assert_eq!(ck.phases[0].loops[0].schedule, Schedule::VectorSerial);
    }

    #[test]
    fn flops_preserved_across_levels() {
        let r = Restructurer::default();
        let p = prog(vec![
            lp(vec![], DataHome::Global),
            lp(vec![Transform::RuntimeDepTest], DataHome::Privatizable),
        ]);
        let src_flops = p.flops();
        for level in [Level::Serial, Level::KapCedar, Level::Automatable] {
            assert_eq!(r.restructure(&p, level).flops(), src_flops);
        }
    }

    #[test]
    fn stripmining_gives_chunked_dispatch() {
        let r = Restructurer::default();
        let fine = lp(vec![], DataHome::Global);
        let c = r.restructure(&prog(vec![fine]), Level::Automatable);
        assert_eq!(c.phases[0].loops[0].chunk, 4);
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram, Transform};

    #[test]
    fn explain_mentions_schedules_and_placement() {
        let mut src = SourceProgram::new("demo");
        let mut ph = Phase::new("main", 2);
        ph.loops.push(LoopNest {
            trips: 100,
            body: BodyMix {
                vector_ops: 1,
                vector_len: 32,
                flops_per_elem: 2,
                global_frac: 0.5,
                global_writes: 1,
                scalar_global_reads: 0,
                scalar_cycles: 10,
            },
            needs: vec![Transform::ArrayPrivatization],
            parallel: true,
            vectorizable: true,
            home: DataHome::Privatizable,
        });
        src.phases.push(ph);
        let c = Restructurer::default().restructure(&src, Level::Automatable);
        let report = c.explain();
        assert!(report.contains("demo"));
        assert!(report.contains("privatized"));
        assert!(report.contains("SdoallCdoall") || report.contains("Xdoall"));
        assert!(report.contains("x2 calls"));
    }
}

//! The restructuring transformations as first-class passes.
//!
//! §3.3 lists the transformations the Cedar compiler project found
//! necessary for real applications: array privatization, parallel
//! reductions, advanced induction variable substitution, runtime data
//! dependence tests, balanced stripmining, and parallelization in the
//! presence of SAVE and RETURN statements — resting on symbolic and
//! interprocedural analysis. Each [`Transform`] carries a description of
//! *what it unlocks* ([`TransformInfo`]); [`apply`] rewrites one loop
//! given a capability set, and is the single place the restructurer
//! consults.

use std::collections::BTreeSet;

use crate::ir::{DataHome, LoopNest, Transform};

/// What one transformation contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformInfo {
    /// Human-readable name (reports, docs).
    pub name: &'static str,
    /// Whether the transform can discharge a dependence listed in a
    /// loop's `needs` (all of them are dependence-breaking except the
    /// placement/scheduling aides).
    pub discharges_needs: bool,
    /// Whether the transform moves loop-local data into cluster memory
    /// when applied (privatization).
    pub enables_placement: bool,
    /// Whether the transform introduces a parallel-reduction epilogue.
    pub reduction_epilogue: bool,
    /// Whether the transform improves dispatch granularity (chunked
    /// self-scheduling).
    pub enables_chunking: bool,
}

/// The description of each transformation.
pub fn info(t: Transform) -> TransformInfo {
    use Transform::*;
    match t {
        BasicDependenceTest => TransformInfo {
            name: "basic dependence test",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: false,
        },
        ArrayPrivatization => TransformInfo {
            name: "array privatization",
            discharges_needs: true,
            enables_placement: true,
            reduction_epilogue: false,
            enables_chunking: false,
        },
        ParallelReduction => TransformInfo {
            name: "parallel reduction",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: true,
            enables_chunking: false,
        },
        InductionSubstitution => TransformInfo {
            name: "induction variable substitution",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: false,
        },
        RuntimeDepTest => TransformInfo {
            name: "runtime data-dependence test",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: false,
        },
        BalancedStripmining => TransformInfo {
            name: "balanced stripmining",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: true,
        },
        SaveReturnParallelization => TransformInfo {
            name: "SAVE/RETURN parallelization",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: false,
        },
        InterproceduralAnalysis => TransformInfo {
            name: "interprocedural analysis",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: false,
        },
        SymbolicAnalysis => TransformInfo {
            name: "symbolic analysis",
            discharges_needs: true,
            enables_placement: false,
            reduction_epilogue: false,
            enables_chunking: false,
        },
    }
}

/// The outcome of applying a capability set to one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// All of the loop's `needs` are discharged and it may run parallel.
    pub parallelized: bool,
    /// Privatization moved the loop's local data to cluster memory.
    pub privatized: bool,
    /// A reduction epilogue is required.
    pub reduction: bool,
    /// Chunked dispatch is available.
    pub chunked: bool,
}

/// Apply a capability set to a loop.
pub fn apply(l: &LoopNest, caps: &BTreeSet<Transform>) -> Applied {
    let needs_met = l
        .needs
        .iter()
        .all(|t| caps.contains(t) && info(*t).discharges_needs);
    let parallelized = l.parallel && needs_met;
    Applied {
        parallelized,
        privatized: parallelized
            && l.home == DataHome::Privatizable
            && caps.contains(&Transform::ArrayPrivatization)
            && info(Transform::ArrayPrivatization).enables_placement,
        reduction: parallelized
            && l.needs.contains(&Transform::ParallelReduction)
            && info(Transform::ParallelReduction).reduction_epilogue,
        chunked: parallelized
            && caps.contains(&Transform::BalancedStripmining)
            && info(Transform::BalancedStripmining).enables_chunking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BodyMix;
    use crate::restructure::Level;

    fn lp(needs: Vec<Transform>, home: DataHome) -> LoopNest {
        LoopNest {
            trips: 10,
            body: BodyMix {
                vector_ops: 1,
                vector_len: 32,
                flops_per_elem: 2,
                global_frac: 1.0,
                global_writes: 0,
                scalar_global_reads: 0,
                scalar_cycles: 0,
            },
            needs,
            parallel: true,
            vectorizable: true,
            home,
        }
    }

    #[test]
    fn every_transform_has_nonempty_info() {
        for t in Transform::ALL {
            let i = info(t);
            assert!(!i.name.is_empty());
            assert!(i.discharges_needs);
        }
    }

    #[test]
    fn kap_capabilities_cannot_privatize() {
        let caps = Level::KapCedar.capabilities();
        let a = apply(
            &lp(vec![Transform::ArrayPrivatization], DataHome::Privatizable),
            &caps,
        );
        assert!(!a.parallelized);
        assert!(!a.privatized);
    }

    #[test]
    fn automatable_unlocks_everything_listed() {
        let caps = Level::Automatable.capabilities();
        let a = apply(
            &lp(
                vec![
                    Transform::ArrayPrivatization,
                    Transform::ParallelReduction,
                    Transform::SaveReturnParallelization,
                ],
                DataHome::Privatizable,
            ),
            &caps,
        );
        assert!(a.parallelized && a.privatized && a.reduction && a.chunked);
    }

    #[test]
    fn non_parallel_loops_stay_serial_even_with_all_capabilities() {
        let caps = Level::Automatable.capabilities();
        let mut l = lp(vec![], DataHome::Global);
        l.parallel = false;
        let a = apply(&l, &caps);
        assert!(!a.parallelized && !a.privatized && !a.reduction);
    }

    #[test]
    fn global_home_never_privatizes() {
        let caps = Level::Automatable.capabilities();
        let a = apply(
            &lp(vec![Transform::ArrayPrivatization], DataHome::Global),
            &caps,
        );
        assert!(a.parallelized);
        assert!(!a.privatized);
    }
}

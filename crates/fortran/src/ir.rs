//! The loop-nest intermediate representation.
//!
//! A [`SourceProgram`] describes a Fortran application the way the
//! restructurer sees it: a sequence of phases (major routines), each with
//! candidate parallel loops annotated with the *dependence facts* that
//! determine which transformations are needed to parallelize or vectorize
//! them, plus irreducible serial glue and I/O. The representation is at
//! the granularity that drives Cedar performance: trip counts, operation
//! mixes, memory placement and the transformations of §3.3.

use cedar_xylem::io::IoMode;

/// A restructuring transformation from the paper's "automatable" set
/// (§3.3), plus the baseline capabilities of the 1988 KAP restructurer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transform {
    /// Recognize a textually independent loop (baseline KAP capability).
    BasicDependenceTest,
    /// Array privatization (loop-local arrays in cluster memory).
    ArrayPrivatization,
    /// Parallel reduction recognition.
    ParallelReduction,
    /// Advanced (symbolic) induction-variable substitution.
    InductionSubstitution,
    /// Run-time data-dependence tests.
    RuntimeDepTest,
    /// Balanced stripmining.
    BalancedStripmining,
    /// Parallelization in the presence of SAVE and RETURN statements.
    SaveReturnParallelization,
    /// Interprocedural analysis.
    InterproceduralAnalysis,
    /// Advanced symbolic analysis.
    SymbolicAnalysis,
}

impl Transform {
    /// Every transformation, in a fixed order.
    pub const ALL: [Transform; 9] = [
        Transform::BasicDependenceTest,
        Transform::ArrayPrivatization,
        Transform::ParallelReduction,
        Transform::InductionSubstitution,
        Transform::RuntimeDepTest,
        Transform::BalancedStripmining,
        Transform::SaveReturnParallelization,
        Transform::InterproceduralAnalysis,
        Transform::SymbolicAnalysis,
    ];
}

/// Where a loop's vector operands live before restructuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataHome {
    /// Shared arrays in global memory.
    Global,
    /// Data that privatization can make loop-local in cluster memory.
    Privatizable,
}

/// The operation mix of one iteration of a candidate loop.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyMix {
    /// Vector operations per iteration.
    pub vector_ops: u32,
    /// Elements per vector operation (the natural inner vector length).
    pub vector_len: u32,
    /// Floating-point operations per vector element (2 = chained).
    pub flops_per_elem: u8,
    /// Fraction of vector operands that must come from global memory even
    /// after privatization (shared data), in [0, 1].
    pub global_frac: f64,
    /// Global vector stores per iteration.
    pub global_writes: u32,
    /// Latency-bound scalar global references per iteration (pointer
    /// chasing, indirection — the TRACK pattern).
    pub scalar_global_reads: u32,
    /// Plain scalar cycles per iteration (address arithmetic, branches).
    pub scalar_cycles: u32,
}

impl BodyMix {
    /// Floating-point operations per iteration.
    pub fn flops_per_iter(&self) -> u64 {
        u64::from(self.vector_ops) * u64::from(self.vector_len) * u64::from(self.flops_per_elem)
    }
}

/// One candidate parallel loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Trip count of the parallelizable loop (granularity driver).
    pub trips: u64,
    /// Per-iteration operation mix.
    pub body: BodyMix,
    /// Transformations required before the loop may run in parallel.
    /// Empty + `parallel: true` means even 1988 KAP can do it.
    pub needs: Vec<Transform>,
    /// Whether the loop is parallelizable at all (given `needs`).
    pub parallel: bool,
    /// Whether the inner loop vectorizes (the Alliant compiler handles
    /// vectorization; restructuring rarely changes this).
    pub vectorizable: bool,
    /// Where the loop's vector data lives; `Privatizable` turns into
    /// cluster-local access once `ArrayPrivatization` is applied.
    pub home: DataHome,
}

impl LoopNest {
    /// Total floating-point operations of the loop.
    pub fn flops(&self) -> u64 {
        self.trips * self.body.flops_per_iter()
    }
}

/// An I/O phase.
#[derive(Debug, Clone, PartialEq)]
pub struct IoSpec {
    /// Bytes transferred per call.
    pub bytes: u64,
    /// Formatted or unformatted.
    pub mode: IoMode,
    /// Operations per call.
    pub ops: u64,
    /// Whether the I/O is algorithmically removable (the MG3D
    /// hand-optimization eliminates file I/O entirely).
    pub removable: bool,
}

/// One program phase (a major routine or computation stage).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Name for reports.
    pub name: String,
    /// Candidate loops executed per call, in order.
    pub loops: Vec<LoopNest>,
    /// Irreducible serial cycles per call (glue code between loops).
    pub serial_cycles: u64,
    /// Optional I/O per call.
    pub io: Option<IoSpec>,
    /// Times the phase runs per program execution (timesteps).
    pub calls: u32,
    /// Multicluster barriers per call beyond the loop joins (the FLO52
    /// barrier-sequence pattern).
    pub extra_barriers: u32,
}

impl Phase {
    /// A compute-only phase.
    pub fn new(name: &str, calls: u32) -> Phase {
        Phase {
            name: name.to_string(),
            loops: Vec::new(),
            serial_cycles: 0,
            io: None,
            calls: calls.max(1),
            extra_barriers: 0,
        }
    }

    /// Total floating-point operations of the phase (all calls).
    pub fn flops(&self) -> u64 {
        u64::from(self.calls) * self.loops.iter().map(LoopNest::flops).sum::<u64>()
    }
}

/// A whole application as the restructurer sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceProgram {
    /// Program name.
    pub name: String,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl SourceProgram {
    /// An empty program.
    pub fn new(name: &str) -> SourceProgram {
        SourceProgram {
            name: name.to_string(),
            phases: Vec::new(),
        }
    }

    /// Total floating-point operations.
    pub fn flops(&self) -> u64 {
        self.phases.iter().map(Phase::flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> BodyMix {
        BodyMix {
            vector_ops: 3,
            vector_len: 32,
            flops_per_elem: 2,
            global_frac: 0.5,
            global_writes: 1,
            scalar_global_reads: 0,
            scalar_cycles: 10,
        }
    }

    #[test]
    fn flop_accounting_composes() {
        let l = LoopNest {
            trips: 100,
            body: mix(),
            needs: vec![],
            parallel: true,
            vectorizable: true,
            home: DataHome::Global,
        };
        assert_eq!(l.body.flops_per_iter(), 192);
        assert_eq!(l.flops(), 19_200);
        let mut ph = Phase::new("p", 3);
        ph.loops.push(l);
        assert_eq!(ph.flops(), 57_600);
        let mut prog = SourceProgram::new("x");
        prog.phases.push(ph.clone());
        prog.phases.push(ph);
        assert_eq!(prog.flops(), 115_200);
    }

    #[test]
    fn phase_calls_clamped_to_one() {
        assert_eq!(Phase::new("p", 0).calls, 1);
    }

    #[test]
    fn transform_all_is_complete_and_sorted_unique() {
        let mut v = Transform::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 9);
    }
}

//! Lowering: compiled programs → per-CE machine instruction streams.
//!
//! The backend assigns every global array stream a base address (offset
//! so that streams do not start module-aligned), inserts a 32-word
//! prefetch before each vector operation with a global memory operand
//! when prefetching is enabled (§3.2 "Data Prefetching"), places
//! privatized data in small hot per-CE cluster arrays, and schedules
//! loops per their [`Schedule`]: XDOALL through a global-memory counter
//! with the runtime's 90 µs/30 µs costs, SDOALL/CDOALL nests through the
//! concurrency buses, serial sections on the gang leader with everyone
//! else at a multicluster barrier.

use cedar_machine::ids::{CeId, ClusterId};
use cedar_machine::machine::{CounterScope, Machine, RunReport};
use cedar_machine::memory::sync::SyncInstr;
use cedar_machine::program::{
    AddressExpr, BarrierId, MemOperand, Op, Program, ProgramBuilder, VectorOp,
};
use cedar_machine::sched::BarrierScope;
use cedar_machine::{CounterId, MachineConfig};
use cedar_xylem::costs::XylemCosts;
use cedar_xylem::gang::Gang;
use cedar_xylem::io::IoModel;

use crate::restructure::{CompiledLoop, CompiledProgram, Level, Schedule};

/// Scalar execution model for unvectorized code on a CE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarModel {
    /// Cycles per floating-point operation, including operand access
    /// (68020 + FPU through the cluster cache).
    pub cycles_per_flop: u8,
}

impl Default for ScalarModel {
    fn default() -> Self {
        ScalarModel { cycles_per_flop: 4 }
    }
}

/// Result of executing a compiled program on the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated seconds at the Cedar cycle time.
    pub seconds: f64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Sustained MFLOPS.
    pub mflops: f64,
}

impl From<&RunReport> for ExecReport {
    fn from(r: &RunReport) -> ExecReport {
        ExecReport {
            cycles: r.cycles,
            seconds: r.seconds,
            flops: r.flops,
            mflops: r.mflops,
        }
    }
}

/// The compiler backend.
#[derive(Debug, Clone, Default)]
pub struct Backend {
    /// Runtime costs (also selects prefetch / Cedar-sync configuration).
    pub costs: XylemCosts,
    /// Scalar-code model.
    pub scalar: ScalarModel,
    /// I/O cost model.
    pub io: IoModel,
}

/// Pre-allocated machine resources for one compiled loop.
#[derive(Debug, Clone)]
enum LoopRes {
    None,
    Global {
        counter: CounterId,
        join: BarrierId,
    },
    Hier {
        counters: Vec<CounterId>,
        join: BarrierId,
    },
    OneCluster {
        counter: CounterId,
        join: BarrierId,
    },
    SerialJoin {
        join: BarrierId,
    },
}

impl Backend {
    /// Build with explicit costs.
    pub fn new(costs: XylemCosts) -> Backend {
        Backend {
            costs,
            ..Backend::default()
        }
    }

    /// Lower `prog` for execution on the first `clusters` clusters of a
    /// machine and return the per-CE programs. Serial-level programs run
    /// on a single CE.
    pub fn lower(
        &self,
        prog: &CompiledProgram,
        m: &mut Machine,
        clusters: usize,
    ) -> Vec<(CeId, Program)> {
        let cpc = m.config().ces_per_cluster;
        let (gang_clusters, serial_only) = if prog.level == Level::Serial {
            (1, true)
        } else {
            (clusters, false)
        };
        let p = if serial_only { 1 } else { gang_clusters * cpc };
        let mut gang = if serial_only {
            Gang::of_ces(vec![CeId(0)], cpc)
        } else {
            Gang::clusters(gang_clusters, cpc)
        };

        // Resource allocation, phase by phase, loop by loop.
        let mut next_base: u64 = 64; // global stream allocator
        let mut next_red: u64 = 1 << 38; // reduction cells
        let mut plans: Vec<Vec<(LoopRes, LoopAddrs)>> = Vec::new();
        let mut phase_barriers: Vec<Option<BarrierId>> = Vec::new();
        for ph in &prog.phases {
            let mut loop_plans = Vec::new();
            for l in &ph.loops {
                let res = if p == 1 {
                    LoopRes::None
                } else {
                    match l.schedule {
                        Schedule::Serial | Schedule::VectorSerial => LoopRes::SerialJoin {
                            join: m.alloc_barrier(BarrierScope::Global, p as u32),
                        },
                        Schedule::Xdoall => LoopRes::Global {
                            counter: m.alloc_counter(CounterScope::Global),
                            join: m.alloc_barrier(BarrierScope::Global, p as u32),
                        },
                        Schedule::SdoallCdoall => LoopRes::Hier {
                            counters: (0..gang_clusters)
                                .map(|c| m.alloc_counter(CounterScope::Cluster(ClusterId(c))))
                                .collect(),
                            join: m.alloc_barrier(BarrierScope::Global, p as u32),
                        },
                        Schedule::CdoallOneCluster => LoopRes::OneCluster {
                            counter: m.alloc_counter(CounterScope::Cluster(ClusterId(0))),
                            join: m.alloc_barrier(BarrierScope::Global, p as u32),
                        },
                    }
                };
                let addrs = LoopAddrs::alloc(l, &mut next_base, &mut next_red);
                loop_plans.push((res, addrs));
            }
            plans.push(loop_plans);
            phase_barriers.push(if p > 1 {
                Some(m.alloc_barrier(BarrierScope::Global, p as u32))
            } else {
                None
            });
        }

        let total_clusters = gang_clusters;
        gang.each(|i, ce, b| {
            let cluster = ce.cluster(cpc).0;
            let lane = ce.index_in_cluster(cpc) as u64;
            for (pi, ph) in prog.phases.iter().enumerate() {
                b.repeat(ph.calls, |b| {
                    // Serial glue and I/O on the leader.
                    let mut serial = ph.serial_cycles;
                    if let Some(io) = &ph.io {
                        serial += self.io.cycles(io.bytes, io.mode, io.ops);
                    }
                    if serial > 0 {
                        if i == 0 {
                            emit_scalar_cycles(b, serial);
                        }
                        if let Some(bar) = phase_barriers[pi] {
                            b.push(Op::Barrier { barrier: bar });
                        }
                    }
                    for (li, l) in ph.loops.iter().enumerate() {
                        let (res, addrs) = &plans[pi][li];
                        self.emit_loop(b, l, res, addrs, i, cluster, lane, total_clusters, p);
                    }
                    if ph.extra_barriers > 0 {
                        if let Some(bar) = phase_barriers[pi] {
                            for _ in 0..ph.extra_barriers {
                                b.scalar(self.costs.barrier_software);
                                b.push(Op::Barrier { barrier: bar });
                            }
                        } else {
                            // Single CE: barriers reduce to their software
                            // overhead.
                            b.scalar(self.costs.barrier_software * ph.extra_barriers);
                        }
                    }
                });
            }
        });
        gang.finish()
    }

    /// Lower and run on a fresh machine; `limit` bounds the simulation.
    ///
    /// # Errors
    ///
    /// Propagates machine errors (cycle-limit exhaustion on deadlock).
    pub fn execute(
        &self,
        prog: &CompiledProgram,
        clusters: usize,
        limit: u64,
    ) -> cedar_machine::Result<ExecReport> {
        let cfg = MachineConfig::cedar_with_clusters(clusters.clamp(1, 4)).with_env_threads();
        let r = self.execute_on(prog, cfg, clusters, limit)?;
        Ok(ExecReport::from(&r))
    }

    /// Like [`Backend::execute`] on a machine built from an explicit
    /// `cfg` (e.g. one carrying a fault-injection plan), returning the
    /// machine's full [`RunReport`] so callers can read the stats
    /// registry. The machine shape must match `clusters`.
    ///
    /// # Errors
    ///
    /// Propagates machine errors, including fault-injection outcomes
    /// (`Deadlock`, `Faulted`).
    pub fn execute_on(
        &self,
        prog: &CompiledProgram,
        cfg: MachineConfig,
        clusters: usize,
        limit: u64,
    ) -> cedar_machine::Result<RunReport> {
        let mut m = Machine::new(cfg)?;
        let programs = self.lower(prog, &mut m, clusters.clamp(1, 4));
        m.run(programs, limit)
    }

    /// [`Backend::execute_on`] continuing an interrupted run from the
    /// snapshot at `snap` instead of starting over. The program is
    /// lowered onto the fresh machine exactly as the interrupted run
    /// lowered it (the snapshot layer verifies the allocations match)
    /// and the restored state carries the run forward bit-identically.
    ///
    /// # Errors
    ///
    /// As [`Backend::execute_on`], plus snapshot read/validation
    /// failures.
    pub fn resume_on(
        &self,
        prog: &CompiledProgram,
        cfg: MachineConfig,
        clusters: usize,
        limit: u64,
        snap: &std::path::Path,
    ) -> cedar_machine::Result<RunReport> {
        let mut m = Machine::new(cfg)?;
        let programs = self.lower(prog, &mut m, clusters.clamp(1, 4));
        m.resume_from_file(programs, snap, limit)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_loop(
        &self,
        b: &mut ProgramBuilder,
        l: &CompiledLoop,
        res: &LoopRes,
        addrs: &LoopAddrs,
        gang_idx: usize,
        cluster: usize,
        lane: u64,
        clusters: usize,
        p: usize,
    ) {
        let leader = gang_idx == 0;
        match l.schedule {
            Schedule::Serial => {
                if leader {
                    self.emit_serial_scalar(b, l);
                }
                self.join(b, res);
            }
            Schedule::VectorSerial => {
                if leader {
                    let trips = clamp_u32(l.trips);
                    b.repeat(trips, |b| {
                        let depth = b.depth() - 1;
                        self.emit_body(
                            b,
                            l,
                            addrs,
                            cedar_xylem::gang::LoopVar::direct(depth),
                            lane,
                        );
                    });
                }
                self.join(b, res);
            }
            Schedule::Xdoall => {
                let LoopRes::Global { counter, .. } = res else {
                    // Single-CE gang: run it as a plain loop.
                    if leader {
                        let trips = clamp_u32(l.trips);
                        b.scalar(self.costs.xdoall_startup);
                        b.repeat(trips, |b| {
                            let depth = b.depth() - 1;
                            b.scalar(self.costs.global_fetch_cycles());
                            self.emit_body(
                                b,
                                l,
                                addrs,
                                cedar_xylem::gang::LoopVar::direct(depth),
                                lane,
                            );
                        });
                    }
                    self.emit_reduction(b, l, addrs);
                    self.join(b, res);
                    return;
                };
                b.scalar(self.costs.xdoall_startup);
                let fetch = self.costs.global_fetch_cycles();
                b.self_sched(*counter, l.trips, 1, |b| {
                    let depth = b.depth() - 1;
                    b.scalar(fetch);
                    self.emit_body(b, l, addrs, cedar_xylem::gang::LoopVar::direct(depth), lane);
                });
                self.emit_reduction(b, l, addrs);
                self.join(b, res);
            }
            Schedule::SdoallCdoall => {
                let LoopRes::Hier { counters, .. } = res else {
                    if leader {
                        let trips = clamp_u32(l.trips);
                        b.scalar(self.costs.cdoall_startup);
                        b.repeat(trips, |b| {
                            let depth = b.depth() - 1;
                            self.emit_body(
                                b,
                                l,
                                addrs,
                                cedar_xylem::gang::LoopVar::direct(depth),
                                lane,
                            );
                        });
                    }
                    self.emit_reduction(b, l, addrs);
                    self.join(b, res);
                    return;
                };
                let (start, count) = split(l.trips, clusters as u64, cluster as u64);
                b.scalar(self.costs.sdoall_startup + self.costs.cdoall_startup);
                let dispatch = self.costs.cluster_dispatch_extra();
                b.self_sched_with_cost(counters[cluster], count, l.chunk, dispatch, |b| {
                    let depth = b.depth() - 1;
                    self.emit_body(
                        b,
                        l,
                        addrs,
                        cedar_xylem::gang::LoopVar {
                            depth,
                            scale: 1,
                            offset: start as i64,
                        },
                        lane,
                    );
                });
                self.emit_reduction(b, l, addrs);
                self.join(b, res);
            }
            Schedule::CdoallOneCluster => {
                if let LoopRes::OneCluster { counter, .. } = res {
                    if cluster == 0 {
                        b.scalar(self.costs.cdoall_startup);
                        let dispatch = self.costs.cluster_dispatch_extra();
                        b.self_sched_with_cost(*counter, l.trips, l.chunk, dispatch, |b| {
                            let depth = b.depth() - 1;
                            self.emit_body(
                                b,
                                l,
                                addrs,
                                cedar_xylem::gang::LoopVar::direct(depth),
                                lane,
                            );
                        });
                        self.emit_reduction(b, l, addrs);
                    }
                } else if leader {
                    let trips = clamp_u32(l.trips);
                    b.scalar(self.costs.cdoall_startup);
                    b.repeat(trips, |b| {
                        let depth = b.depth() - 1;
                        self.emit_body(
                            b,
                            l,
                            addrs,
                            cedar_xylem::gang::LoopVar::direct(depth),
                            lane,
                        );
                    });
                    self.emit_reduction(b, l, addrs);
                }
                self.join(b, res);
            }
        }
        let _ = p;
    }

    fn join(&self, b: &mut ProgramBuilder, res: &LoopRes) {
        let join = match res {
            LoopRes::None => return,
            LoopRes::Global { join, .. }
            | LoopRes::Hier { join, .. }
            | LoopRes::OneCluster { join, .. }
            | LoopRes::SerialJoin { join } => *join,
        };
        b.push(Op::Barrier { barrier: join });
    }

    /// One iteration's operations at vector speed.
    fn emit_body(
        &self,
        b: &mut ProgramBuilder,
        l: &CompiledLoop,
        addrs: &LoopAddrs,
        lv: cedar_xylem::gang::LoopVar,
        lane: u64,
    ) {
        let mix = &l.body;
        let len = mix.vector_len;
        let n_global = if l.privatized {
            (mix.global_frac * f64::from(mix.vector_ops)).round() as u32
        } else {
            mix.vector_ops
        };
        for v in 0..mix.vector_ops {
            if v < n_global {
                // Global stream: iteration-strided.
                let base = addrs.stream(v);
                let addr = lv.addr(base, i64::from(len));
                if self.costs.use_prefetch {
                    b.push(Op::PrefetchArm {
                        length: len,
                        stride: 1,
                    });
                    b.push(Op::PrefetchFire { base: addr });
                    b.vector(VectorOp {
                        length: len,
                        flops_per_element: mix.flops_per_elem,
                        operand: MemOperand::Prefetched,
                    });
                } else {
                    b.vector(VectorOp {
                        length: len,
                        flops_per_element: mix.flops_per_elem,
                        operand: MemOperand::GlobalRead { addr, stride: 1 },
                    });
                }
            } else {
                // Privatized loop-local data: a small hot per-CE cluster
                // array, reused every iteration.
                let addr = AddressExpr::new(lane * 8192 + u64::from(v) * u64::from(len));
                b.vector(VectorOp {
                    length: len,
                    flops_per_element: mix.flops_per_elem,
                    operand: MemOperand::ClusterRead { addr, stride: 1 },
                });
            }
        }
        for w in 0..mix.global_writes {
            let addr = lv.addr(addrs.write_stream(w), i64::from(len));
            b.vector(VectorOp {
                length: len,
                flops_per_element: 0,
                operand: MemOperand::GlobalWrite { addr, stride: 1 },
            });
        }
        for s in 0..mix.scalar_global_reads {
            b.push(Op::ScalarGlobalRead {
                addr: lv.addr(addrs.scalar_base + u64::from(s) * 7919, 13),
            });
        }
        if mix.scalar_cycles > 0 {
            b.scalar(mix.scalar_cycles);
        }
    }

    /// The whole loop at scalar speed on the leader.
    fn emit_serial_scalar(&self, b: &mut ProgramBuilder, l: &CompiledLoop) {
        let fpi = l.body.flops_per_iter();
        let extra = u64::from(l.body.scalar_cycles) + 13 * u64::from(l.body.scalar_global_reads);
        let trips = clamp_u32(l.trips);
        let cpf = self.scalar.cycles_per_flop;
        b.repeat(trips, |b| {
            if fpi > 0 {
                b.push(Op::ScalarFlops {
                    flops: clamp_u32(fpi),
                    cycles_per_flop: cpf,
                });
            }
            if extra > 0 {
                b.scalar(clamp_u32(extra));
            }
        });
    }

    fn emit_reduction(&self, b: &mut ProgramBuilder, l: &CompiledLoop, addrs: &LoopAddrs) {
        if l.reduction {
            b.push(Op::SyncOp {
                addr: AddressExpr::new(addrs.reduction_cell),
                instr: SyncInstr::fetch_add(1),
            });
        }
    }
}

/// Global-memory stream bases for one loop.
#[derive(Debug, Clone)]
struct LoopAddrs {
    read_base: u64,
    write_base: u64,
    scalar_base: u64,
    reduction_cell: u64,
    stream_words: u64,
}

impl LoopAddrs {
    fn alloc(l: &CompiledLoop, next: &mut u64, next_red: &mut u64) -> LoopAddrs {
        let stream_words = l.trips * u64::from(l.body.vector_len) + 64;
        let reads = u64::from(l.body.vector_ops);
        let writes = u64::from(l.body.global_writes);
        let read_base = *next;
        // The +33 offsets successive streams off module alignment.
        *next += reads * (stream_words + 33);
        let write_base = *next;
        *next += writes * (stream_words + 33);
        let scalar_base = *next;
        *next += 1 << 16;
        let reduction_cell = *next_red;
        *next_red += 1;
        LoopAddrs {
            read_base,
            write_base,
            scalar_base,
            reduction_cell,
            stream_words,
        }
    }

    fn stream(&self, v: u32) -> u64 {
        self.read_base + u64::from(v) * (self.stream_words + 33)
    }

    fn write_stream(&self, w: u32) -> u64 {
        self.write_base + u64::from(w) * (self.stream_words + 33)
    }
}

/// Emit an arbitrary (u64) number of busy scalar cycles as chunked ops.
fn emit_scalar_cycles(b: &mut ProgramBuilder, cycles: u64) {
    const CHUNK: u64 = 1 << 30;
    let full = (cycles / CHUNK) as u32;
    if full > 0 {
        b.repeat(full, |b| {
            b.scalar(CHUNK as u32);
        });
    }
    let rest = (cycles % CHUNK) as u32;
    if rest > 0 {
        b.scalar(rest);
    }
}

/// Block-partition helper (first parts get the remainder).
fn split(total: u64, parts: u64, i: u64) -> (u64, u64) {
    let base = total / parts;
    let extra = total % parts;
    let count = base + u64::from(i < extra);
    let start = i * base + i.min(extra);
    (start, count)
}

fn clamp_u32(v: u64) -> u32 {
    v.min(u64::from(u32::MAX)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram};
    use crate::restructure::{Level, Restructurer};

    const LIMIT: u64 = 500_000_000;

    fn simple_program(trips: u64, calls: u32) -> SourceProgram {
        let mut p = SourceProgram::new("test");
        let mut ph = Phase::new("main", calls);
        ph.loops.push(LoopNest {
            trips,
            body: BodyMix {
                vector_ops: 2,
                vector_len: 32,
                flops_per_elem: 2,
                global_frac: 1.0,
                global_writes: 1,
                scalar_global_reads: 0,
                scalar_cycles: 10,
            },
            needs: vec![],
            parallel: true,
            vectorizable: true,
            home: DataHome::Global,
        });
        ph.serial_cycles = 500;
        p.phases.push(ph);
        p
    }

    fn run(level: Level, clusters: usize, src: &SourceProgram) -> ExecReport {
        let r = Restructurer::default();
        let compiled = r.restructure(src, level);
        Backend::default()
            .execute(&compiled, clusters, LIMIT)
            .unwrap()
    }

    #[test]
    fn flops_match_source_at_every_level() {
        let src = simple_program(200, 2);
        for level in [Level::Serial, Level::KapCedar, Level::Automatable] {
            let rep = run(level, 4, &src);
            assert_eq!(rep.flops, src.flops(), "level {level:?}");
        }
    }

    #[test]
    fn automatable_beats_serial_substantially() {
        let src = simple_program(400, 1);
        let serial = run(Level::Serial, 4, &src);
        let auto = run(Level::Automatable, 4, &src);
        let speedup = serial.seconds / auto.seconds;
        assert!(
            speedup > 4.0,
            "speedup {speedup:.1} too low (serial {} vs auto {})",
            serial.cycles,
            auto.cycles
        );
    }

    #[test]
    fn serial_runs_at_scalar_rate() {
        let src = simple_program(100, 1);
        let rep = run(Level::Serial, 1, &src);
        // 100 iters × 128 flops × 4 cycles ≈ 51K cycles + glue.
        let per_flop = rep.cycles as f64 / rep.flops as f64;
        assert!(
            per_flop > 3.5 && per_flop < 6.0,
            "scalar cycles/flop = {per_flop:.1}"
        );
    }

    #[test]
    fn more_clusters_help_parallel_codes() {
        let src = simple_program(1024, 1);
        let one = run(Level::Automatable, 1, &src);
        let four = run(Level::Automatable, 4, &src);
        assert!(
            four.seconds < one.seconds * 0.5,
            "4 clusters {:.0} vs 1 cluster {:.0} cycles",
            four.cycles as f64,
            one.cycles as f64
        );
    }

    #[test]
    fn without_prefetch_is_slower_on_global_streams() {
        let src = simple_program(512, 1);
        let r = Restructurer::default();
        let compiled = r.restructure(&src, Level::Automatable);
        let with = Backend::new(XylemCosts::cedar())
            .execute(&compiled, 4, LIMIT)
            .unwrap();
        let without = Backend::new(XylemCosts::cedar_without_prefetch())
            .execute(&compiled, 4, LIMIT)
            .unwrap();
        assert!(
            without.seconds > with.seconds * 1.5,
            "no-prefetch should hurt: with={} without={}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn repeated_phases_reuse_loop_resources() {
        // calls > 1 exercises epoch-addressed counters/barriers inside a
        // Repeat — the pattern that would deadlock with naive reuse.
        let src = simple_program(64, 5);
        let rep = run(Level::Automatable, 2, &src);
        assert_eq!(rep.flops, src.flops());
    }

    #[test]
    fn io_cost_charged_on_leader() {
        use cedar_xylem::io::IoMode;
        let mut src = simple_program(16, 1);
        src.phases[0].io = Some(crate::ir::IoSpec {
            bytes: 1_000_000,
            mode: IoMode::Formatted,
            ops: 10,
            removable: true,
        });
        let with_io = run(Level::Automatable, 2, &src);
        src.phases[0].io = None;
        let without = run(Level::Automatable, 2, &src);
        assert!(
            with_io.cycles > without.cycles + 10_000_000,
            "formatted IO should dominate: {} vs {}",
            with_io.cycles,
            without.cycles
        );
    }
}

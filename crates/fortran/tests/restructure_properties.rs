//! Property-based tests of the restructurer and backend: for arbitrary
//! loop-nest IR, every restructuring level preserves the program's
//! floating-point work, compiled programs execute to completion on the
//! machine, and capability monotonicity holds (a level with more
//! transformations never parallelizes less).

use proptest::prelude::*;

use cedar_fortran::compile::Backend;
use cedar_fortran::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram, Transform};
use cedar_fortran::restructure::{Level, Restructurer, Schedule};

fn arb_transform() -> impl Strategy<Value = Transform> {
    prop::sample::select(Transform::ALL.to_vec())
}

fn arb_body() -> impl Strategy<Value = BodyMix> {
    (
        1u32..4,
        prop::sample::select(vec![8u32, 16, 32, 64]),
        0.0f64..=1.0,
        0u32..2,
        0u32..2,
        0u32..40,
    )
        .prop_map(|(ops, len, gf, wr, sgr, sc)| BodyMix {
            vector_ops: ops,
            vector_len: len,
            flops_per_elem: 2,
            global_frac: gf,
            global_writes: wr,
            scalar_global_reads: sgr,
            scalar_cycles: sc,
        })
}

fn arb_loop() -> impl Strategy<Value = LoopNest> {
    (
        1u64..200,
        arb_body(),
        prop::collection::vec(arb_transform(), 0..3),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(trips, body, needs, parallel, vectorizable, privatizable)| LoopNest {
                trips,
                body,
                needs,
                parallel,
                vectorizable,
                home: if privatizable {
                    DataHome::Privatizable
                } else {
                    DataHome::Global
                },
            },
        )
}

fn arb_program() -> impl Strategy<Value = SourceProgram> {
    prop::collection::vec((arb_loop(), 1u32..3, 0u64..2000), 1..4).prop_map(|phases| {
        let mut p = SourceProgram::new("prop");
        for (i, (l, calls, serial)) in phases.into_iter().enumerate() {
            let mut ph = Phase::new(&format!("ph{i}"), calls);
            ph.loops.push(l);
            ph.serial_cycles = serial;
            p.phases.push(ph);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_levels_preserve_flops_and_complete(src in arb_program()) {
        let r = Restructurer::default();
        for level in [Level::Serial, Level::KapCedar, Level::Automatable] {
            let compiled = r.restructure(&src, level);
            prop_assert_eq!(compiled.flops(), src.flops());
            let rep = Backend::default().execute(&compiled, 2, 2_000_000_000).unwrap();
            prop_assert_eq!(rep.flops, src.flops(), "level {:?}", level);
        }
    }

    #[test]
    fn capability_monotonicity(src in arb_program()) {
        let r = Restructurer::default();
        let kap = r.restructure(&src, Level::KapCedar);
        let auto = r.restructure(&src, Level::Automatable);
        prop_assert!(
            auto.parallel_fraction() >= kap.parallel_fraction() - 1e-12,
            "automatable must parallelize at least what KAP does: {} vs {}",
            auto.parallel_fraction(),
            kap.parallel_fraction()
        );
        let serial = r.restructure(&src, Level::Serial);
        prop_assert_eq!(serial.parallel_fraction(), 0.0);
    }

    #[test]
    fn serial_level_has_no_parallel_schedules(src in arb_program()) {
        let r = Restructurer::default();
        let c = r.restructure(&src, Level::Serial);
        for ph in &c.phases {
            for l in &ph.loops {
                prop_assert_eq!(l.schedule, Schedule::Serial);
                prop_assert!(!l.privatized);
                prop_assert!(!l.reduction);
            }
        }
    }

    #[test]
    fn loops_with_unmet_needs_never_parallelize(
        mut l in arb_loop(),
        serial_cycles in 0u64..500,
    ) {
        // A loop requiring interprocedural analysis is beyond KAP.
        l.needs = vec![Transform::InterproceduralAnalysis];
        l.parallel = true;
        let mut src = SourceProgram::new("t");
        let mut ph = Phase::new("p", 1);
        ph.loops.push(l);
        ph.serial_cycles = serial_cycles;
        src.phases.push(ph);
        let c = Restructurer::default().restructure(&src, Level::KapCedar);
        prop_assert!(matches!(
            c.phases[0].loops[0].schedule,
            Schedule::Serial | Schedule::VectorSerial
        ));
    }
}

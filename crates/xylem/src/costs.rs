//! Runtime-library costs.
//!
//! The paper reports the loop-scheduling costs of the Xylem runtime: an
//! XDOALL has a typical startup latency of 90 µs and fetching the next
//! iteration takes about 30 µs, because processors are started,
//! terminated and scheduled through global memory; a CDOALL starts in a
//! few microseconds over the concurrency control bus (§3.2). When Cedar
//! synchronization instructions are *not* used, loop self-scheduling falls
//! back to Test-And-Set locking with several extra global round trips —
//! the "w/o synch" column of Table 3.

use cedar_machine::time::{Cycle, CEDAR_CYCLE_NS};

/// Scheduling and service costs of the Xylem runtime, in CE cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct XylemCosts {
    /// XDOALL loop startup (fork through global memory): ~90 µs.
    pub xdoall_startup: u32,
    /// XDOALL next-iteration fetch: ~30 µs with Cedar synchronization.
    pub xdoall_fetch: u32,
    /// Extra per-fetch cost when Cedar synchronization instructions are
    /// not used (Test-And-Set lock, read, update, unlock: several global
    /// round trips plus retry under contention).
    pub no_sync_fetch_penalty: u32,
    /// SDOALL startup (cluster dispatch through global memory).
    pub sdoall_startup: u32,
    /// CDOALL startup via the concurrency control bus ("a few µs" —
    /// dominated by the software around the fast bus broadcast).
    pub cdoall_startup: u32,
    /// Software overhead around a multicluster barrier, per participant.
    pub barrier_software: u32,
    /// Extra cycles per cluster-loop dispatch when the lock-based
    /// fallback replaces Cedar synchronization in the runtime's
    /// self-scheduling structures (charged per chunk).
    pub no_sync_cluster_penalty: u32,
    /// Whether the runtime uses Cedar synchronization instructions for
    /// global loop self-scheduling (Table 3 ablation).
    pub use_cedar_sync: bool,
    /// Whether compiler-directed prefetch is enabled (Table 3 ablation).
    pub use_prefetch: bool,
}

impl XylemCosts {
    /// The measured costs of the Cedar runtime.
    pub fn cedar() -> XylemCosts {
        XylemCosts {
            xdoall_startup: Cycle::from_micros(90.0, CEDAR_CYCLE_NS).0 as u32,
            xdoall_fetch: Cycle::from_micros(30.0, CEDAR_CYCLE_NS).0 as u32,
            no_sync_fetch_penalty: Cycle::from_micros(45.0, CEDAR_CYCLE_NS).0 as u32,
            sdoall_startup: Cycle::from_micros(40.0, CEDAR_CYCLE_NS).0 as u32,
            cdoall_startup: Cycle::from_micros(2.0, CEDAR_CYCLE_NS).0 as u32,
            barrier_software: Cycle::from_micros(5.0, CEDAR_CYCLE_NS).0 as u32,
            no_sync_cluster_penalty: Cycle::from_micros(50.0, CEDAR_CYCLE_NS).0 as u32,
            use_cedar_sync: true,
            use_prefetch: true,
        }
    }

    /// Cedar costs with Cedar synchronization disabled for loop
    /// scheduling (the Table 3 "w/o synch" configuration).
    pub fn cedar_without_sync() -> XylemCosts {
        XylemCosts {
            use_cedar_sync: false,
            ..Self::cedar()
        }
    }

    /// Cedar costs with compiler prefetch disabled (the Table 3
    /// "w/o prefetch" configuration — also implies no Cedar sync, as the
    /// paper's column ordering does).
    pub fn cedar_without_prefetch() -> XylemCosts {
        XylemCosts {
            use_cedar_sync: false,
            use_prefetch: false,
            ..Self::cedar()
        }
    }

    /// Effective per-fetch cost of a global (XDOALL) self-scheduled loop.
    pub fn global_fetch_cycles(&self) -> u32 {
        if self.use_cedar_sync {
            self.xdoall_fetch
        } else {
            self.xdoall_fetch + self.no_sync_fetch_penalty
        }
    }

    /// Extra per-dispatch cost of a cluster self-scheduled loop when Cedar
    /// synchronization is unavailable to the runtime.
    pub fn cluster_dispatch_extra(&self) -> u32 {
        if self.use_cedar_sync {
            0
        } else {
            self.no_sync_cluster_penalty
        }
    }
}

impl Default for XylemCosts {
    fn default() -> Self {
        Self::cedar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_costs_match_paper_microseconds() {
        let c = XylemCosts::cedar();
        // 90us / 170ns ≈ 530 cycles; 30us ≈ 177 cycles.
        assert!(
            (525..=535).contains(&c.xdoall_startup),
            "{}",
            c.xdoall_startup
        );
        assert!((170..=180).contains(&c.xdoall_fetch), "{}", c.xdoall_fetch);
        assert!(c.cdoall_startup < 20);
        assert!(c.use_cedar_sync && c.use_prefetch);
    }

    #[test]
    fn no_sync_raises_fetch_cost() {
        let with = XylemCosts::cedar().global_fetch_cycles();
        let without = XylemCosts::cedar_without_sync().global_fetch_cycles();
        assert!(without > 2 * with, "with={with} without={without}");
    }

    #[test]
    fn without_prefetch_also_disables_sync() {
        let c = XylemCosts::cedar_without_prefetch();
        assert!(!c.use_prefetch && !c.use_cedar_sync);
    }
}

//! The Xylem file-system / I/O cost model.
//!
//! Xylem exports file-system services through the interactive processors
//! of each cluster. The paper's BDNA hand-optimization reduced execution
//! time dramatically "by simply replacing formatted with unformatted
//! I/O": formatted Fortran I/O burns CE cycles converting every datum to
//! text, while unformatted I/O is a block transfer. The model charges CE
//! cycles accordingly; it is deliberately simple but preserves that
//! contrast.

/// I/O mode of a Fortran unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Formatted (text) I/O: per-byte conversion cost on the CE.
    Formatted,
    /// Unformatted (binary) I/O: block transfer at IP/disk speed.
    Unformatted,
}

/// Cost model for I/O phases.
#[derive(Debug, Clone, PartialEq)]
pub struct IoModel {
    /// CE cycles per byte for formatted conversion (library code: digit
    /// conversion, format parsing). ~20 characters of work per datum.
    pub formatted_cycles_per_byte: f64,
    /// CE cycles per byte for unformatted block I/O (copy + disk DMA
    /// wait amortized over large blocks).
    pub unformatted_cycles_per_byte: f64,
    /// Fixed per-operation cost (system call, IP round trip).
    pub per_call_cycles: u64,
}

impl IoModel {
    /// Calibrated so that BDNA's ~120 s of formatted output collapses to
    /// a small fraction when switched to unformatted, as in Table 4.
    pub fn cedar() -> IoModel {
        IoModel {
            formatted_cycles_per_byte: 12.0,
            unformatted_cycles_per_byte: 0.4,
            per_call_cycles: 2_000,
        }
    }

    /// CE cycles to transfer `bytes` in `mode` with `calls` operations.
    pub fn cycles(&self, bytes: u64, mode: IoMode, calls: u64) -> u64 {
        let per_byte = match mode {
            IoMode::Formatted => self.formatted_cycles_per_byte,
            IoMode::Unformatted => self.unformatted_cycles_per_byte,
        };
        (bytes as f64 * per_byte) as u64 + calls * self.per_call_cycles
    }
}

impl Default for IoModel {
    fn default() -> Self {
        Self::cedar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatted_io_is_far_more_expensive() {
        let m = IoModel::cedar();
        let f = m.cycles(1_000_000, IoMode::Formatted, 10);
        let u = m.cycles(1_000_000, IoMode::Unformatted, 10);
        assert!(f > 10 * u, "formatted={f} unformatted={u}");
    }

    #[test]
    fn per_call_cost_charged() {
        let m = IoModel::cedar();
        assert_eq!(m.cycles(0, IoMode::Unformatted, 3), 6_000);
    }
}

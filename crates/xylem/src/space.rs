//! Data placement: the Xylem view of the memory hierarchy.
//!
//! Cedar Fortran places data in cluster memory by default; a `GLOBAL`
//! attribute puts it in shared global memory, and loop-local declarations
//! make per-processor private copies in cluster memory (§3.1).
//! [`AddressSpace`] is a simple bump allocator over both halves of the
//! physical word-address space, used by kernels and workload models to
//! lay out their arrays.

use cedar_machine::ids::ClusterId;

/// Word-granular allocator for global and per-cluster memory.
///
/// # Examples
///
/// ```
/// use cedar_xylem::space::AddressSpace;
/// use cedar_machine::ids::ClusterId;
/// let mut s = AddressSpace::new(4);
/// let a = s.global(1024);
/// let b = s.global(1024);
/// assert!(b >= a + 1024);
/// let c0 = s.cluster(ClusterId(0), 100);
/// let c1 = s.cluster(ClusterId(1), 100);
/// // Cluster spaces are independent (separate memories), so both start low.
/// assert_eq!(c0, c1);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next_global: u64,
    next_cluster: Vec<u64>,
}

impl AddressSpace {
    /// An allocator for a machine with `clusters` clusters.
    pub fn new(clusters: usize) -> AddressSpace {
        AddressSpace {
            next_global: 0,
            next_cluster: vec![0; clusters],
        }
    }

    /// Allocate `words` of global shared memory, page-aligned, returning
    /// the base word address.
    pub fn global(&mut self, words: u64) -> u64 {
        let base = self.next_global;
        self.next_global += round_up(words, 512);
        base
    }

    /// Allocate `words` of one cluster's memory, line-aligned.
    pub fn cluster(&mut self, cluster: ClusterId, words: u64) -> u64 {
        let next = &mut self.next_cluster[cluster.0];
        let base = *next;
        *next += round_up(words, 4);
        base
    }

    /// Allocate the same-sized region in *every* cluster's memory at a
    /// common base address (SDOALL data distribution keeps layouts
    /// congruent across clusters). Returns the common base.
    pub fn all_clusters(&mut self, words: u64) -> u64 {
        let base = self
            .next_cluster
            .iter()
            .copied()
            .max()
            .expect("allocator has at least one cluster");
        let aligned = round_up(words, 4);
        for next in &mut self.next_cluster {
            *next = base + aligned;
        }
        base
    }

    /// Words of global memory allocated so far.
    pub fn global_used(&self) -> u64 {
        self.next_global
    }
}

fn round_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_allocations_are_page_aligned_and_disjoint() {
        let mut s = AddressSpace::new(4);
        let a = s.global(100);
        let b = s.global(600);
        assert_eq!(a % 512, 0);
        assert_eq!(b % 512, 0);
        assert_eq!(b, 512);
        assert_eq!(s.global(1), 512 + 1024);
    }

    #[test]
    fn cluster_allocations_are_independent() {
        let mut s = AddressSpace::new(2);
        let a0 = s.cluster(ClusterId(0), 10);
        let a1 = s.cluster(ClusterId(1), 10);
        assert_eq!(a0, a1);
        let b0 = s.cluster(ClusterId(0), 10);
        assert_eq!(b0, 12); // 10 rounded to line (4 words) = 12
    }

    #[test]
    fn all_clusters_gives_congruent_bases() {
        let mut s = AddressSpace::new(3);
        s.cluster(ClusterId(1), 100);
        let base = s.all_clusters(50);
        // After one cluster has private allocations, the common base must
        // clear them all.
        assert!(base >= 100);
        let next0 = s.cluster(ClusterId(0), 1);
        let next2 = s.cluster(ClusterId(2), 1);
        assert_eq!(next0, next2);
        assert!(next0 >= base + 50);
    }

    #[test]
    fn global_used_tracks() {
        let mut s = AddressSpace::new(1);
        assert_eq!(s.global_used(), 0);
        s.global(1);
        assert_eq!(s.global_used(), 512);
    }
}

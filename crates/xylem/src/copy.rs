//! Explicit data movement between global and cluster memory.
//!
//! Data moves between the two halves of the Cedar memory hierarchy "only
//! via explicit moves under software control" (§2). These emitters
//! generate the block-copy loops the runtime library provides: prefetched
//! global reads feeding cluster-cache writes (and the reverse for
//! write-back), in vector-register-sized chunks.

use cedar_machine::program::{AddressExpr, MemOperand, Op, ProgramBuilder, VectorOp};

use crate::gang::LoopVar;

/// Words moved per chunk: one vector register.
pub const CHUNK: u32 = 32;

/// Emit a copy of `words` from global `gsrc` to cluster `cdst` on one CE,
/// using the prefetch unit when `prefetch` is true.
///
/// Addresses may depend on an enclosing loop via `lv` with the given word
/// coefficients (`None` for constant addresses).
pub fn global_to_cluster(
    b: &mut ProgramBuilder,
    gsrc: u64,
    cdst: u64,
    words: u32,
    lv: Option<(LoopVar, i64, i64)>,
    prefetch: bool,
) {
    let chunks = words / CHUNK;
    let depth = b.depth();
    b.repeat(chunks, |b| {
        let (gaddr, caddr) = chunk_addrs(gsrc, cdst, depth, lv);
        if prefetch {
            b.push(Op::PrefetchArm {
                length: CHUNK,
                stride: 1,
            });
            b.push(Op::PrefetchFire { base: gaddr });
            b.vector(VectorOp {
                length: CHUNK,
                flops_per_element: 0,
                operand: MemOperand::Prefetched,
            });
        } else {
            b.vector(VectorOp {
                length: CHUNK,
                flops_per_element: 0,
                operand: MemOperand::GlobalRead {
                    addr: gaddr,
                    stride: 1,
                },
            });
        }
        b.vector(VectorOp {
            length: CHUNK,
            flops_per_element: 0,
            operand: MemOperand::ClusterWrite {
                addr: caddr,
                stride: 1,
            },
        });
    });
}

/// Emit a copy of `words` from cluster `csrc` to global `gdst` on one CE.
pub fn cluster_to_global(
    b: &mut ProgramBuilder,
    csrc: u64,
    gdst: u64,
    words: u32,
    lv: Option<(LoopVar, i64, i64)>,
) {
    let chunks = words / CHUNK;
    let depth = b.depth();
    b.repeat(chunks, |b| {
        let (gaddr, caddr) = chunk_addrs(gdst, csrc, depth, lv);
        b.vector(VectorOp {
            length: CHUNK,
            flops_per_element: 0,
            operand: MemOperand::ClusterRead {
                addr: caddr,
                stride: 1,
            },
        });
        b.vector(VectorOp {
            length: CHUNK,
            flops_per_element: 0,
            operand: MemOperand::GlobalWrite {
                addr: gaddr,
                stride: 1,
            },
        });
    });
}

/// Build the per-chunk (global, cluster) addresses: both advance by
/// [`CHUNK`] per inner iteration (depth = `depth`), plus optional
/// enclosing-loop terms `(lv, global_coeff, cluster_coeff)`.
fn chunk_addrs(
    gbase: u64,
    cbase: u64,
    depth: u8,
    lv: Option<(LoopVar, i64, i64)>,
) -> (AddressExpr, AddressExpr) {
    let mut g = AddressExpr::new(gbase).with_coeff(depth, i64::from(CHUNK));
    let mut c = AddressExpr::new(cbase).with_coeff(depth, i64::from(CHUNK));
    if let Some((lv, gc, cc)) = lv {
        g = lv.term(g, gc);
        c = lv.term(c, cc);
    }
    (g, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_machine::ids::CeId;
    use cedar_machine::machine::Machine;

    #[test]
    fn copy_moves_expected_traffic() {
        let mut m = Machine::cedar().unwrap();
        let mut b = ProgramBuilder::new();
        global_to_cluster(&mut b, 0, 0, 256, None, true);
        let r = m.run(vec![(CeId(0), b.build())], 1_000_000).unwrap();
        // 256 words prefetched from global memory.
        assert_eq!(r.prefetch.requests, 256);
        // 256 words written through the cluster cache.
        assert!(r.cache[0].misses > 0);
        assert_eq!(r.flops, 0);
    }

    #[test]
    fn writeback_copy_runs() {
        let mut m = Machine::cedar().unwrap();
        let mut b = ProgramBuilder::new();
        cluster_to_global(&mut b, 0, 4096, 128, None);
        let r = m.run(vec![(CeId(0), b.build())], 1_000_000).unwrap();
        assert!(r.cycles > 128, "cycles={}", r.cycles);
        // 128 global writes hit the memory modules.
        assert!(r.memory.requests >= 128);
    }

    #[test]
    fn copy_with_loop_term_offsets_addresses() {
        // Two outer iterations copying disjoint 64-word blocks.
        let mut m = Machine::cedar().unwrap();
        let mut b = ProgramBuilder::new();
        let depth = b.depth();
        b.repeat(2, |b| {
            global_to_cluster(
                &mut *b,
                0,
                0,
                64,
                Some((LoopVar::direct(depth), 64, 64)),
                true,
            );
        });
        let r = m.run(vec![(CeId(0), b.build())], 1_000_000).unwrap();
        assert_eq!(r.prefetch.requests, 128);
    }
}

//! Gangs: the set of CEs a computation runs on, with one program builder
//! per CE.
//!
//! Xylem gang-schedules cluster tasks: a computation owns whole clusters
//! and builds one instruction stream per CE. [`Gang`] wraps that
//! construction; [`LoopVar`] carries an affine mapping from a loop's
//! machine-level index to the logical iteration number (used by static
//! scheduling, where cluster `c` of `C` executes iterations `c, c+C, …`).

use cedar_machine::ids::{CeId, ClusterId};
use cedar_machine::program::{AddressExpr, Program, ProgramBuilder};

/// A logical loop variable: `logical = offset + scale · machine_index`,
/// where `machine_index` is the loop index at `depth` in the enclosing
/// program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopVar {
    /// Nesting depth of the machine loop carrying this variable.
    pub depth: u8,
    /// Stride between successive machine iterations.
    pub scale: i64,
    /// Logical value of machine iteration 0.
    pub offset: i64,
}

impl LoopVar {
    /// A direct (identity-mapped) loop variable at `depth`.
    pub fn direct(depth: u8) -> LoopVar {
        LoopVar {
            depth,
            scale: 1,
            offset: 0,
        }
    }

    /// Extend an address expression with `coeff · logical`:
    /// `base + coeff·offset` constant part plus `coeff·scale` per machine
    /// iteration.
    pub fn term(&self, addr: AddressExpr, coeff: i64) -> AddressExpr {
        let base = (addr.base as i64 + coeff * self.offset) as u64;
        AddressExpr { base, ..addr }.with_coeff(self.depth, coeff * self.scale)
    }

    /// Convenience: `base + coeff · logical` from a plain base address.
    pub fn addr(&self, base: u64, coeff: i64) -> AddressExpr {
        self.term(AddressExpr::new(base), coeff)
    }
}

/// A gang of CEs under construction: one [`ProgramBuilder`] per CE.
#[derive(Debug)]
pub struct Gang {
    ces: Vec<CeId>,
    ces_per_cluster: usize,
    builders: Vec<ProgramBuilder>,
}

impl Gang {
    /// A gang over the first `clusters` clusters of a machine with
    /// `ces_per_cluster` CEs each — the configuration of every experiment
    /// in the paper.
    pub fn clusters(clusters: usize, ces_per_cluster: usize) -> Gang {
        let ces: Vec<CeId> = (0..clusters * ces_per_cluster).map(CeId).collect();
        Gang {
            builders: ces.iter().map(|_| ProgramBuilder::new()).collect(),
            ces,
            ces_per_cluster,
        }
    }

    /// A gang over an explicit CE list.
    pub fn of_ces(ces: Vec<CeId>, ces_per_cluster: usize) -> Gang {
        Gang {
            builders: ces.iter().map(|_| ProgramBuilder::new()).collect(),
            ces,
            ces_per_cluster,
        }
    }

    /// Number of CEs in the gang.
    pub fn len(&self) -> usize {
        self.ces.len()
    }

    /// True when the gang has no CEs.
    pub fn is_empty(&self) -> bool {
        self.ces.is_empty()
    }

    /// The CEs of the gang.
    pub fn ces(&self) -> &[CeId] {
        &self.ces
    }

    /// Number of distinct clusters the gang spans.
    pub fn cluster_count(&self) -> usize {
        let mut cl: Vec<usize> = self
            .ces
            .iter()
            .map(|ce| ce.cluster(self.ces_per_cluster).0)
            .collect();
        cl.sort_unstable();
        cl.dedup();
        cl.len()
    }

    /// CEs per cluster in the underlying machine.
    pub fn ces_per_cluster(&self) -> usize {
        self.ces_per_cluster
    }

    /// The cluster of gang member `i`.
    pub fn cluster_of(&self, i: usize) -> ClusterId {
        self.ces[i].cluster(self.ces_per_cluster)
    }

    /// Emit into every member's program: `f(gang index, CE, builder)`.
    pub fn each(&mut self, mut f: impl FnMut(usize, CeId, &mut ProgramBuilder)) {
        for (i, b) in self.builders.iter_mut().enumerate() {
            f(i, self.ces[i], b);
        }
    }

    /// Emit only on the gang leader (member 0); used for serial sections.
    pub fn leader(&mut self, f: impl FnOnce(&mut ProgramBuilder)) {
        f(&mut self.builders[0]);
    }

    /// Finish construction, returning the per-CE programs for
    /// [`Machine::run`](cedar_machine::machine::Machine::run).
    pub fn finish(self) -> Vec<(CeId, Program)> {
        self.ces
            .into_iter()
            .zip(self.builders)
            .map(|(ce, b)| (ce, b.build()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gang_over_two_clusters() {
        let g = Gang::clusters(2, 8);
        assert_eq!(g.len(), 16);
        assert_eq!(g.cluster_count(), 2);
        assert_eq!(g.cluster_of(0), ClusterId(0));
        assert_eq!(g.cluster_of(15), ClusterId(1));
        assert!(!g.is_empty());
    }

    #[test]
    fn loopvar_affine_addressing() {
        // cluster 2 of 4: logical = 2 + 4*i; coeff 100 words per iteration.
        let lv = LoopVar {
            depth: 0,
            scale: 4,
            offset: 2,
        };
        let a = lv.addr(1000, 100);
        assert_eq!(a.eval(&[0]), 1000 + 200);
        assert_eq!(a.eval(&[3]), 1000 + 100 * (2 + 12));
    }

    #[test]
    fn each_emits_per_ce() {
        let mut g = Gang::clusters(1, 4);
        g.each(|i, ce, b| {
            assert_eq!(ce, CeId(i));
            b.scalar(1 + i as u32);
        });
        let progs = g.finish();
        assert_eq!(progs.len(), 4);
        for (_, p) in &progs {
            assert_eq!(p.op_count(), 1);
        }
    }

    #[test]
    fn direct_loopvar_is_identity() {
        let lv = LoopVar::direct(1);
        let a = lv.addr(5, 7);
        assert_eq!(a.eval(&[99, 3]), 5 + 21);
    }
}

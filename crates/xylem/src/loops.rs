//! The Cedar Fortran loop runtime: XDOALL, SDOALL, CDOALL emitters.
//!
//! * **XDOALL** uses all processors in the machine and schedules each
//!   iteration (or chunk) on a processor through global memory: flexible
//!   but with ~90 µs startup and ~30 µs per iteration fetch.
//! * **SDOALL** schedules each iteration on an entire cluster; the other
//!   cluster processors idle until a **CDOALL** inside the body spreads
//!   work over the concurrency control bus (starting in a few µs).
//! * Both can be statically scheduled or self-scheduled; static SDOALL
//!   scheduling assigns iterations `c, c+C, …` to cluster `c`, which is
//!   also how successive SDOALLs keep iterations on the same clusters for
//!   data distribution (§3.2).
//!
//! Emitters append to every member of a [`Gang`] and allocate the machine
//! counters/barriers they need.

use cedar_machine::ids::CeId;
use cedar_machine::machine::{CounterScope, Machine};
use cedar_machine::program::{Op, ProgramBuilder};
use cedar_machine::sched::BarrierScope;

use crate::costs::XylemCosts;
use crate::gang::{Gang, LoopVar};

/// The Xylem loop runtime: stateless emitters parameterized by costs.
#[derive(Debug, Clone, Default)]
pub struct Xylem {
    costs: XylemCosts,
}

impl Xylem {
    /// A runtime with the paper's measured costs.
    pub fn new(costs: XylemCosts) -> Xylem {
        Xylem { costs }
    }

    /// The runtime's cost table.
    pub fn costs(&self) -> &XylemCosts {
        &self.costs
    }

    /// Whether compiler prefetch is enabled in this configuration.
    pub fn prefetch_enabled(&self) -> bool {
        self.costs.use_prefetch
    }

    /// Emit an XDOALL: `trips` iterations self-scheduled over all gang
    /// CEs in chunks of `chunk`, with an implicit multicluster join.
    ///
    /// `body(ce, loop_var, builder)` emits one iteration's work.
    pub fn xdoall(
        &self,
        m: &mut Machine,
        gang: &mut Gang,
        trips: u64,
        chunk: u32,
        body: impl Fn(CeId, LoopVar, &mut ProgramBuilder),
    ) {
        if trips == 0 || gang.is_empty() {
            return;
        }
        let counter = m.alloc_counter(CounterScope::Global);
        let barrier = m.alloc_barrier(BarrierScope::Global, gang.len() as u32);
        let startup = self.costs.xdoall_startup;
        let fetch = self.costs.global_fetch_cycles();
        gang.each(|_, ce, b| {
            b.scalar(startup);
            let depth = b.depth();
            b.self_sched(counter, trips, chunk, |b| {
                b.scalar(fetch);
                body(ce, LoopVar::direct(depth), b);
            });
            b.push(Op::Barrier { barrier });
        });
    }

    /// Emit a CDOALL: `trips` iterations self-scheduled over the CEs of
    /// each gang cluster independently (every cluster executes the whole
    /// iteration space — the usual use is nested inside an SDOALL where
    /// the body addresses depend on the SDOALL iteration).
    ///
    /// For a single-cluster gang this is the plain Alliant concurrent
    /// loop.
    pub fn cdoall(
        &self,
        m: &mut Machine,
        gang: &mut Gang,
        trips: u64,
        chunk: u32,
        body: impl Fn(CeId, LoopVar, &mut ProgramBuilder),
    ) {
        if trips == 0 || gang.is_empty() {
            return;
        }
        let clusters: Vec<_> = (0..gang.len()).map(|i| gang.cluster_of(i)).collect();
        let mut uniq = clusters.clone();
        uniq.sort_unstable_by_key(|c| c.0);
        uniq.dedup();
        // One counter and one join barrier per participating cluster.
        let mut counters = std::collections::HashMap::new();
        let mut barriers = std::collections::HashMap::new();
        for &cl in &uniq {
            counters.insert(cl, m.alloc_counter(CounterScope::Cluster(cl)));
            let members = clusters.iter().filter(|&&c| c == cl).count() as u32;
            barriers.insert(cl, m.alloc_barrier(BarrierScope::Cluster(cl), members));
        }
        let startup = self.costs.cdoall_startup;
        gang.each(|i, ce, b| {
            let cl = clusters[i];
            b.scalar(startup);
            let depth = b.depth();
            b.self_sched(counters[&cl], trips, chunk, |b| {
                body(ce, LoopVar::direct(depth), b);
            });
            b.push(Op::Barrier {
                barrier: barriers[&cl],
            });
        });
    }

    /// Emit a statically-scheduled SDOALL: iteration `t` runs on cluster
    /// `t mod C`. Inside the body, `sdoall_var` maps the machine loop
    /// index back to the logical iteration. The body typically contains a
    /// nested [`Xylem::cdoall_nested`]; CEs of a cluster all execute the
    /// body (idle CEs spin in the real machine; here every CE simply runs
    /// the same iteration structure and only participates in nested
    /// CDOALLs). Ends with a multicluster join barrier.
    pub fn sdoall_static(
        &self,
        m: &mut Machine,
        gang: &mut Gang,
        trips: u64,
        body: impl Fn(CeId, LoopVar, &mut ProgramBuilder),
    ) {
        if trips == 0 || gang.is_empty() {
            return;
        }
        let n_clusters = gang.cluster_count() as u64;
        let barrier = m.alloc_barrier(BarrierScope::Global, gang.len() as u32);
        let startup = self.costs.sdoall_startup;
        let cpc = gang.ces_per_cluster();
        gang.each(|_, ce, b| {
            let cluster = ce.cluster(cpc).0 as u64;
            // Iterations cluster, cluster + C, ...
            let count = if cluster < trips {
                (trips - cluster).div_ceil(n_clusters)
            } else {
                0
            } as u32;
            b.scalar(startup);
            let depth = b.depth();
            b.repeat(count, |b| {
                body(
                    ce,
                    LoopVar {
                        depth,
                        scale: n_clusters as i64,
                        offset: cluster as i64,
                    },
                    b,
                );
            });
            b.push(Op::Barrier { barrier });
        });
    }

    /// Emit a *self-scheduled* SDOALL: iterations are fetched at cluster
    /// granularity from a global counter (one fetch per iteration per
    /// cluster, broadcast over the concurrency bus), so an imbalanced
    /// iteration space load-balances across clusters — at the cost of a
    /// global round trip per iteration. Ends with a multicluster join.
    pub fn sdoall_self_scheduled(
        &self,
        m: &mut Machine,
        gang: &mut Gang,
        trips: u64,
        body: impl Fn(CeId, LoopVar, &mut ProgramBuilder),
    ) {
        if trips == 0 || gang.is_empty() {
            return;
        }
        let counter = m.alloc_counter(CounterScope::SdoallGlobal);
        let barrier = m.alloc_barrier(BarrierScope::Global, gang.len() as u32);
        let startup = self.costs.sdoall_startup;
        gang.each(|_, ce, b| {
            b.scalar(startup);
            let depth = b.depth();
            b.self_sched(counter, trips, 1, |b| {
                body(ce, LoopVar::direct(depth), b);
            });
            b.push(Op::Barrier { barrier });
        });
    }

    /// Emit a CDOALL *inside* an SDOALL body: self-scheduled over the CEs
    /// of the executing cluster, with a cluster join. Must be called from
    /// within the per-CE body closure of [`Xylem::sdoall_static`], with
    /// counters/barriers pre-allocated by [`Xylem::nested_resources`].
    #[allow(clippy::too_many_arguments)]
    pub fn cdoall_nested(
        &self,
        res: &NestedResources,
        ce: CeId,
        cpc: usize,
        b: &mut ProgramBuilder,
        trips: u64,
        chunk: u32,
        body: impl Fn(CeId, LoopVar, &mut ProgramBuilder),
    ) {
        let cl = ce.cluster(cpc);
        b.scalar(self.costs.cdoall_startup);
        let depth = b.depth();
        b.self_sched(res.counter_for(cl), trips, chunk, |b| {
            body(ce, LoopVar::direct(depth), b);
        });
        b.push(Op::Barrier {
            barrier: res.barrier_for(cl),
        });
    }

    /// Pre-allocate per-cluster counters and join barriers for nested
    /// CDOALLs under an SDOALL over `gang`.
    pub fn nested_resources(&self, m: &mut Machine, gang: &Gang) -> NestedResources {
        let cpc = gang.ces_per_cluster();
        let mut clusters: Vec<_> = gang.ces().iter().map(|ce| ce.cluster(cpc)).collect();
        clusters.sort_unstable_by_key(|c| c.0);
        clusters.dedup();
        let mut counters = Vec::new();
        let mut barriers = Vec::new();
        for &cl in &clusters {
            let members = gang.ces().iter().filter(|ce| ce.cluster(cpc) == cl).count() as u32;
            counters.push((cl, m.alloc_counter(CounterScope::Cluster(cl))));
            barriers.push((cl, m.alloc_barrier(BarrierScope::Cluster(cl), members)));
        }
        NestedResources { counters, barriers }
    }

    /// Emit a serial section: the gang leader runs `work`, everyone else
    /// waits at a multicluster barrier on both sides.
    pub fn serial_section(
        &self,
        m: &mut Machine,
        gang: &mut Gang,
        work: impl FnOnce(&mut ProgramBuilder),
    ) {
        let barrier = m.alloc_barrier(BarrierScope::Global, gang.len() as u32);
        gang.leader(work);
        gang.each(|_, _, b| {
            b.push(Op::Barrier { barrier });
        });
    }

    /// Emit a bare multicluster barrier over the gang.
    pub fn barrier(&self, m: &mut Machine, gang: &mut Gang) {
        let barrier = m.alloc_barrier(BarrierScope::Global, gang.len() as u32);
        let sw = self.costs.barrier_software;
        gang.each(|_, _, b| {
            b.scalar(sw);
            b.push(Op::Barrier { barrier });
        });
    }
}

/// Cluster-local counters/barriers for CDOALLs nested in an SDOALL.
#[derive(Debug, Clone)]
pub struct NestedResources {
    counters: Vec<(cedar_machine::ids::ClusterId, cedar_machine::ids::CounterId)>,
    barriers: Vec<(
        cedar_machine::ids::ClusterId,
        cedar_machine::program::BarrierId,
    )>,
}

impl NestedResources {
    fn counter_for(&self, cl: cedar_machine::ids::ClusterId) -> cedar_machine::ids::CounterId {
        self.counters
            .iter()
            .find(|(c, _)| *c == cl)
            .map(|(_, id)| *id)
            .expect("cluster not in nested resources")
    }

    fn barrier_for(&self, cl: cedar_machine::ids::ClusterId) -> cedar_machine::program::BarrierId {
        self.barriers
            .iter()
            .find(|(c, _)| *c == cl)
            .map(|(_, id)| *id)
            .expect("cluster not in nested resources")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_machine::program::{MemOperand, VectorOp};
    use cedar_machine::MachineConfig;

    const LIMIT: u64 = 5_000_000;

    fn flops_vec(b: &mut ProgramBuilder, len: u32) {
        b.vector(VectorOp {
            length: len,
            flops_per_element: 1,
            operand: MemOperand::None,
        });
    }

    #[test]
    fn xdoall_executes_every_iteration_once() {
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(4, 8);
        x.xdoall(&mut m, &mut gang, 100, 1, |_, _, b| flops_vec(b, 16));
        let r = m.run(gang.finish(), LIMIT).unwrap();
        assert_eq!(r.flops, 1600);
    }

    #[test]
    fn xdoall_startup_dominates_tiny_loops() {
        // A 4-iteration XDOALL should cost at least the 90us startup.
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(4, 8);
        x.xdoall(&mut m, &mut gang, 4, 1, |_, _, b| flops_vec(b, 4));
        let r = m.run(gang.finish(), LIMIT).unwrap();
        assert!(r.cycles > 500, "startup not charged: {}", r.cycles);
    }

    #[test]
    fn cdoall_is_much_cheaper_than_xdoall_for_small_loops() {
        let run = |use_x: bool| {
            let mut m = Machine::cedar().unwrap();
            let x = Xylem::default();
            let mut gang = Gang::clusters(1, 8);
            if use_x {
                x.xdoall(&mut m, &mut gang, 32, 1, |_, _, b| flops_vec(b, 8));
            } else {
                x.cdoall(&mut m, &mut gang, 32, 1, |_, _, b| flops_vec(b, 8));
            }
            let r = m.run(gang.finish(), LIMIT).unwrap();
            assert_eq!(r.flops, 256);
            r.cycles
        };
        let xd = run(true);
        let cd = run(false);
        assert!(
            cd * 4 < xd,
            "CDOALL should be >4x cheaper on small loops: cdoall={cd} xdoall={xd}"
        );
    }

    #[test]
    fn sdoall_static_covers_iteration_space_once() {
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(4, 8);
        // Only CE 0 of each cluster does the work here (all CEs run the
        // repeat, so scale flops by gang CEs per cluster): to count
        // iterations exactly, emit work only on cluster-leader CEs.
        let cpc = gang.ces_per_cluster();
        x.sdoall_static(&mut m, &mut gang, 10, |ce, _lv, b| {
            if ce.index_in_cluster(cpc) == 0 {
                flops_vec(b, 4);
            }
        });
        let r = m.run(gang.finish(), LIMIT).unwrap();
        // 10 iterations x 4 flops, regardless of cluster count.
        assert_eq!(r.flops, 40);
    }

    #[test]
    fn sdoall_with_nested_cdoall_distributes_within_clusters() {
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(2, 8);
        let res = x.nested_resources(&mut m, &gang);
        let cpc = gang.ces_per_cluster();
        x.sdoall_static(&mut m, &mut gang, 6, |ce, _sv, b| {
            x.cdoall_nested(&res, ce, cpc, b, 20, 1, |_, _, b| {
                flops_vec(b, 2);
            });
        });
        let r = m.run(gang.finish(), LIMIT).unwrap();
        // 6 SDOALL iterations x 20 CDOALL iterations x 2 flops.
        assert_eq!(r.flops, 240);
        // Work should involve CEs beyond the leaders.
        let active = r.ce_stats.iter().filter(|(_, s)| s.flops > 0).count();
        assert!(active > 2, "only {active} CEs participated");
    }

    #[test]
    fn serial_section_runs_on_leader_only() {
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(2, 8);
        x.serial_section(&mut m, &mut gang, |b| {
            flops_vec(b, 10);
        });
        let r = m.run(gang.finish(), LIMIT).unwrap();
        assert_eq!(r.flops, 10);
        let with_flops = r.ce_stats.iter().filter(|(_, s)| s.flops > 0).count();
        assert_eq!(with_flops, 1);
    }

    #[test]
    fn without_sync_slows_fine_grained_xdoall() {
        let run = |costs: XylemCosts| {
            let mut m = Machine::cedar().unwrap();
            let x = Xylem::new(costs);
            let mut gang = Gang::clusters(4, 8);
            x.xdoall(&mut m, &mut gang, 64, 1, |_, _, b| flops_vec(b, 4));
            m.run(gang.finish(), LIMIT).unwrap().cycles
        };
        let with = run(XylemCosts::cedar());
        let without = run(XylemCosts::cedar_without_sync());
        assert!(
            without > with,
            "no-sync should be slower: with={with} without={without}"
        );
    }

    #[test]
    fn two_clusters_beat_one_on_parallel_work() {
        let run = |clusters: usize| {
            let mut m = Machine::new(MachineConfig::cedar_with_clusters(clusters)).unwrap();
            let x = Xylem::default();
            let mut gang = Gang::clusters(clusters, 8);
            x.xdoall(&mut m, &mut gang, 256, 1, |_, _, b| flops_vec(b, 512));
            m.run(gang.finish(), LIMIT).unwrap().cycles
        };
        let one = run(1);
        let two = run(2);
        assert!(
            (two as f64) < one as f64 * 0.7,
            "two clusters should be much faster: one={one} two={two}"
        );
    }
}

#[cfg(test)]
mod sdoall_self_tests {
    use super::*;
    use cedar_machine::program::{MemOperand, VectorOp};

    const LIMIT: u64 = 10_000_000;

    #[test]
    fn self_scheduled_sdoall_runs_each_iteration_on_exactly_one_cluster() {
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(4, 8);
        let cpc = gang.ces_per_cluster();
        // Only cluster leaders do the marker work, so total flops count
        // iterations × 8 exactly once per claiming cluster.
        x.sdoall_self_scheduled(&mut m, &mut gang, 40, |ce, _lv, b| {
            if ce.index_in_cluster(cpc) == 0 {
                b.vector(VectorOp {
                    length: 8,
                    flops_per_element: 1,
                    operand: MemOperand::None,
                });
            }
        });
        let r = m.run(gang.finish(), LIMIT).unwrap();
        assert_eq!(r.flops, 40 * 8);
    }

    #[test]
    fn all_cluster_members_see_every_claimed_iteration() {
        // Every CE does the marker work: each claimed iteration is run by
        // all 8 CEs of the claiming cluster (the idle-until-CDOALL
        // semantics of SDOALL).
        let mut m = Machine::cedar().unwrap();
        let x = Xylem::default();
        let mut gang = Gang::clusters(2, 8);
        x.sdoall_self_scheduled(&mut m, &mut gang, 10, |_ce, _lv, b| {
            b.vector(VectorOp {
                length: 4,
                flops_per_element: 1,
                operand: MemOperand::None,
            });
        });
        let r = m.run(gang.finish(), LIMIT).unwrap();
        assert_eq!(r.flops, 10 * 8 * 4);
    }

    #[test]
    fn self_scheduling_balances_imbalanced_iterations_across_clusters() {
        // Iteration 0 is huge, the rest tiny. Static SDOALL pins the huge
        // one plus a quarter of the rest to cluster 0; self-scheduling
        // lets other clusters drain the tail meanwhile.
        let body = |_ce: CeId, lv: LoopVar, b: &mut ProgramBuilder| {
            // iteration 0: 4096 cycles of work; others: 64.
            // (Emit both paths; the machine-level index decides nothing
            // here, so approximate with the first iteration of each
            // machine loop being heavy — adequate for a cost comparison.)
            let _ = lv;
            b.scalar(64);
        };
        let heavy_head = |b: &mut ProgramBuilder| {
            b.scalar(4096);
        };
        let run = |selfsched: bool| -> u64 {
            let mut m = Machine::cedar().unwrap();
            let x = Xylem::default();
            let mut gang = Gang::clusters(4, 8);
            if selfsched {
                let counter = m.alloc_counter(CounterScope::SdoallGlobal);
                let barrier = m.alloc_barrier(BarrierScope::Global, gang.len() as u32);
                gang.each(|i, ce, b| {
                    if i == 0 {
                        heavy_head(b);
                    }
                    b.self_sched(counter, 64, 1, |b| {
                        body(ce, LoopVar::direct(0), b);
                    });
                    b.push(Op::Barrier { barrier });
                });
            } else {
                x.sdoall_static(&mut m, &mut gang, 64, |ce, lv, b| {
                    body(ce, lv, b);
                });
                // Static: the heavy head lands on cluster 0 regardless.
                let mut gang2 = Gang::clusters(4, 8);
                let _ = &mut gang2;
            }
            if !selfsched {
                // handled above
            }
            m.run(gang.finish(), LIMIT).unwrap().cycles
        };
        // The comparison here is qualitative: both complete, and the
        // self-scheduled variant is not pathologically slower despite a
        // global fetch per iteration.
        let ss = run(true);
        let st = run(false);
        assert!(ss > 0 && st > 0);
        assert!(
            (ss as f64) < (st as f64) * 20.0,
            "self-scheduled {ss} vs static {st}"
        );
    }
}

//! # cedar-xylem
//!
//! The Xylem operating-system layer of the Cedar reproduction: the
//! abstractions programs use to run on the simulated machine.
//!
//! Xylem links the four Alliant cluster operating systems into the Cedar
//! OS, exporting virtual memory, scheduling and file-system services
//! \[EABM91\]. For the performance study, the relevant services are:
//!
//! * **gang construction** ([`gang::Gang`]) — one instruction stream per
//!   CE of a cluster task;
//! * **the loop runtime** ([`loops::Xylem`]) — XDOALL / SDOALL / CDOALL
//!   emitters with the paper's measured scheduling costs
//!   ([`costs::XylemCosts`]);
//! * **data placement** ([`space::AddressSpace`]) and **explicit
//!   global↔cluster copies** ([`copy`]);
//! * **the I/O cost model** ([`io::IoModel`]) behind the BDNA
//!   formatted-vs-unformatted contrast.
//!
//! ## Example: a parallel loop over the whole machine
//!
//! ```
//! use cedar_machine::machine::Machine;
//! use cedar_machine::program::{MemOperand, VectorOp};
//! use cedar_xylem::{gang::Gang, loops::Xylem};
//!
//! # fn main() -> Result<(), cedar_machine::MachineError> {
//! let mut m = Machine::cedar()?;
//! let x = Xylem::default();
//! let mut gang = Gang::clusters(4, 8);
//! x.xdoall(&mut m, &mut gang, 64, 1, |_ce, _i, b| {
//!     b.vector(VectorOp {
//!         length: 32,
//!         flops_per_element: 2,
//!         operand: MemOperand::None,
//!     });
//! });
//! let report = m.run(gang.finish(), 10_000_000)?;
//! assert_eq!(report.flops, 64 * 64);
//! # Ok(())
//! # }
//! ```

pub mod copy;
pub mod costs;
pub mod gang;
pub mod io;
pub mod loops;
pub mod space;

pub use costs::XylemCosts;
pub use gang::{Gang, LoopVar};
pub use io::{IoMode, IoModel};
pub use loops::{NestedResources, Xylem};
pub use space::AddressSpace;

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the API surface this workspace uses.
//!
//! The real crate cannot be fetched in the offline build environment, so
//! this workspace member shadows it via a `[workspace.dependencies]` path
//! entry. Test cases are generated from a deterministic xorshift stream
//! seeded by the test name, so failures are reproducible run-to-run.
//! Shrinking is not implemented: a failing case panics with the values
//! formatted into the message instead.

pub mod strategy {
    use crate::test_runner::Rng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, func }
        }
    }

    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.func)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Number-of-elements specification accepted by [`vec`]: a fixed
    /// count, a half-open range, or an inclusive range.
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = self.size.max_incl - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Uniformly pick one of the supplied options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            self.options[(rng.next_u64() as usize) % self.options.len()].clone()
        }
    }
}

pub mod test_runner {
    /// Deterministic xorshift64* stream. Seeded from the test name so
    /// each property test sees a stable but distinct case sequence.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        pub fn from_name(name: &str) -> Rng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng {
                state: h | 1, // xorshift must not start at zero
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test panics with this message.
        Fail(String),
        /// `prop_assume!` rejected the generated case; it is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // The real crate defaults to 256; keep the offline suite quick.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(20).max(20);
            while accepted < cfg.cases && attempts < max_attempts {
                attempts += 1;
                let outcome: $crate::test_runner::TestCaseResult = {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut case = || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    };
                    case()
                };
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed on case {}: {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
            assert!(
                accepted >= cfg.cases.min(1),
                "property '{}' rejected every generated case",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::Rng::from_name("x");
        let mut b = crate::test_runner::Rng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::Rng::from_name("bounds");
        for _ in 0..200 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let i = (-50i32..50).generate(&mut rng);
            assert!((-50..50).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(xs in prop::collection::vec(0usize..10, 1..8), flip in any::<bool>()) {
            prop_assume!(!xs.is_empty());
            let doubled: Vec<usize> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!(doubled.iter().all(|&d| d % 2 == 0), "doubling broke parity (flip={})", flip);
        }
    }
}

//! Basic performance metrics: speedup, efficiency, rate means.
//!
//! The paper uses speedup and efficiency as the abstract measures of
//! performance, MFLOPS as the rate measure (taking floating-point counts
//! from the Cray hardware performance monitor), and harmonic means to
//! summarize rate ensembles (§4.3).

/// Speedup of a parallel time over a baseline time.
///
/// # Panics
///
/// Panics if `parallel_seconds` is not positive.
pub fn speedup(baseline_seconds: f64, parallel_seconds: f64) -> f64 {
    assert!(
        parallel_seconds > 0.0,
        "parallel time must be positive, got {parallel_seconds}"
    );
    baseline_seconds / parallel_seconds
}

/// Parallel efficiency `E_p = speedup / p`.
///
/// # Panics
///
/// Panics if `p` is zero.
pub fn efficiency(speedup: f64, p: u32) -> f64 {
    assert!(p > 0, "processor count must be nonzero");
    speedup / f64::from(p)
}

/// Harmonic mean of a rate ensemble — the right mean for MFLOPS over a
/// fixed workload set. Returns 0 for an empty ensemble.
///
/// # Panics
///
/// Panics if any rate is not positive.
pub fn harmonic_mean(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 0.0;
    }
    let mut s = 0.0;
    for &r in rates {
        assert!(r > 0.0, "rates must be positive, got {r}");
        s += 1.0 / r;
    }
    rates.len() as f64 / s
}

/// Arithmetic mean (for completeness in reports). Returns 0 when empty.
pub fn arithmetic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency() {
        let s = speedup(100.0, 12.5);
        assert!((s - 8.0).abs() < 1e-12);
        assert!((efficiency(s, 32) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_slow_codes() {
        let hm = harmonic_mean(&[100.0, 1.0]);
        assert!((hm - 2.0 / 1.01).abs() < 1e-9);
        // Far below the arithmetic mean.
        assert!(hm < arithmetic_mean(&[100.0, 1.0]) / 10.0);
    }

    #[test]
    fn empty_means_are_zero() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn speedup_rejects_zero_time() {
        speedup(1.0, 0.0);
    }
}

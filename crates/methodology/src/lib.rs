//! # cedar-methodology
//!
//! The performance-evaluation methodology of the Cedar paper (§4.3): a
//! framework for judging whether a parallel system delivers *practical
//! parallelism*.
//!
//! * [`metrics`] — speedup, efficiency, harmonic means;
//! * [`stability`] — the paper's stability/instability measure
//!   `St(P, Nᵢ, K, e)` with optimal outlier exclusion;
//! * [`bands`] — the high (≥ P/2) / intermediate (≥ P/(2 log₂ P)) /
//!   unacceptable speedup bands;
//! * [`ppt`] — the five Practical Parallelism Tests, with evaluators for
//!   PPT1 (delivered performance), PPT2 (stable performance), PPT3
//!   (portability/programmability via compiler restructuring) and PPT4
//!   (code and architecture scalability). PPT5 (scalable
//!   reimplementability) is out of the paper's scope and therefore out of
//!   this crate's.
//!
//! ## Example
//!
//! ```
//! use cedar_methodology::bands::{classify, Band};
//! use cedar_methodology::stability::instability;
//!
//! // A 32-processor machine delivering 10x is intermediate:
//! assert_eq!(classify(10.0, 32), Band::Intermediate);
//! // An ensemble with a 100:1 spread is wildly unstable:
//! assert!(instability(&[0.5, 3.0, 50.0], 0).unwrap() == 100.0);
//! ```

pub mod bands;
pub mod metrics;
pub mod ppt;
pub mod stability;

pub use bands::{acceptable_level, band_counts, classify, classify_efficiency, high_level, Band};
pub use metrics::{arithmetic_mean, efficiency, harmonic_mean, speedup};
pub use ppt::{
    ppt1, ppt2, ppt3, ppt4, CodePoint, Ppt1Report, Ppt2Report, Ppt3Report, Ppt4Report, ScalePoint,
};
pub use stability::{exclusions_for_stability, instability, stability, STABLE_INSTABILITY_BOUND};

//! Stability and instability of a performance ensemble.
//!
//! The paper defines stability on `P` processors of an ensemble of `K`
//! codes as
//!
//! ```text
//! St(P, Nᵢ, K, e) = min performance(Iᵢ, e) / max performance(Iᵢ, e)
//! ```
//!
//! where `e` computations are excluded from the ensemble because their
//! results are outliers; instability `In` is the inverse (§4.3). The
//! paper's Table 5 reports `In(13, 0)`, `In(13, 2)` and `In(13, 6)` over
//! the Perfect codes: outliers are excluded to *best* stabilize the
//! ensemble, which for a min/max ratio always means dropping from the
//! extremes — [`instability`] searches every bottom/top split.

/// Stability of an ensemble with `e` excluded outliers: the largest
/// achievable min/max ratio after dropping `e` values from the extremes.
/// Returns `None` when fewer than two values remain.
pub fn stability(perf: &[f64], e: usize) -> Option<f64> {
    let kept = perf.len().checked_sub(e)?;
    if kept < 2 {
        return None;
    }
    let mut sorted: Vec<f64> = perf.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("performance values are comparable"));
    // Drop `lo` from the bottom and `e - lo` from the top; keep the best.
    let mut best: Option<f64> = None;
    for lo in 0..=e {
        let hi = e - lo;
        let min = sorted[lo];
        let max = sorted[sorted.len() - 1 - hi];
        if max <= 0.0 {
            continue;
        }
        let st = min / max;
        if best.is_none_or(|b| st > b) {
            best = Some(st);
        }
    }
    best
}

/// Instability `In = 1 / St`, the form Table 5 reports.
pub fn instability(perf: &[f64], e: usize) -> Option<f64> {
    stability(perf, e).map(|st| 1.0 / st)
}

/// The stability criterion. The paper notes an instability of about 5
/// has been common on workstations for the Perfect codes and judges a
/// system stable when a small number of exceptions brings `In(K, e)` to
/// that neighbourhood. Its verdicts require the operational bound to sit
/// above the Cray 1's `In(13,2) = 10.9` (which "passes with two
/// exceptions") and below the YMP's `In(13,2) = 29.0` (which does not);
/// we use 12.
pub const STABLE_INSTABILITY_BOUND: f64 = 12.0;

/// Smallest number of exclusions that brings the ensemble to
/// workstation-level stability, or `None` if even `max_e` exclusions do
/// not suffice.
pub fn exclusions_for_stability(perf: &[f64], max_e: usize) -> Option<usize> {
    (0..=max_e).find(|&e| instability(perf, e).is_some_and(|i| i <= STABLE_INSTABILITY_BOUND))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_exclusions_is_min_over_max() {
        let st = stability(&[1.0, 2.0, 10.0], 0).unwrap();
        assert!((st - 0.1).abs() < 1e-12);
        assert!((instability(&[1.0, 2.0, 10.0], 0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exclusions_pick_the_best_split() {
        // Values 1, 8, 9, 10, 100: dropping 1 and 100 (one each side)
        // beats dropping two from either side.
        let v = [1.0, 8.0, 9.0, 10.0, 100.0];
        let st = stability(&v, 2).unwrap();
        assert!((st - 0.8).abs() < 1e-12, "st={st}");
    }

    #[test]
    fn exclusion_of_one_side_only_when_better() {
        // 0.1, 0.2, 5, 5.5, 6: best two exclusions drop both low values.
        let v = [0.1, 0.2, 5.0, 5.5, 6.0];
        let st = stability(&v, 2).unwrap();
        assert!((st - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn too_many_exclusions_is_none() {
        assert_eq!(stability(&[1.0, 2.0], 1), None);
        assert_eq!(stability(&[1.0], 0), None);
        assert_eq!(instability(&[], 0), None);
    }

    #[test]
    fn exclusions_for_stability_finds_minimum() {
        // In(·,0) = 100; dropping the single outlier gives 2.
        let v = [1.0, 50.0, 60.0, 80.0, 100.0];
        assert_eq!(exclusions_for_stability(&v, 6), Some(1));
        // Already stable ensembles need none.
        assert_eq!(exclusions_for_stability(&[2.0, 3.0], 6), Some(0));
        // Hopeless ensembles report None.
        let wild = [1.0, 10.0, 300.0, 1000.0];
        assert_eq!(exclusions_for_stability(&wild, 1), None);
    }

    #[test]
    fn stability_monotone_in_exclusions() {
        let v = [0.2, 1.0, 3.0, 9.0, 11.0, 30.0, 80.0];
        let mut last = 0.0;
        for e in 0..=4 {
            let st = stability(&v, e).unwrap();
            assert!(st >= last, "e={e}: {st} < {last}");
            last = st;
        }
    }
}

//! The Practical Parallelism Tests.
//!
//! The paper proposes five criteria (§4.3) built around the *Fundamental
//! Principle of Parallel Processing* — clock speed is interchangeable
//! with parallelism while (A) maintaining delivered performance that is
//! (B) stable over a class of computations:
//!
//! 1. **Delivered performance** — the system delivers speedup or rate for
//!    a useful set of codes.
//! 2. **Stable performance** — that performance stays within a stability
//!    range as program structures, data structures and sizes vary.
//! 3. **Portability and programmability** — compilers reach acceptable
//!    levels.
//! 4. **Code and architecture scalability** — performance holds across
//!    processor counts and data sizes.
//! 5. **Technology and scalable reimplementability** — out of the paper's
//!    scope ("we shall not deal with [it] further, in this paper"); this
//!    reproduction likewise only documents it.

use crate::bands::{band_counts, classify, Band};
use crate::stability::{exclusions_for_stability, instability, STABLE_INSTABILITY_BOUND};

/// One code's performance on one machine (for PPT1/Fig 3-style scatter).
#[derive(Debug, Clone, PartialEq)]
pub struct CodePoint {
    pub code: String,
    /// Speedup over the machine's serial baseline.
    pub speedup: f64,
}

/// PPT1 verdict for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt1Report {
    pub machine: String,
    pub processors: u32,
    pub points: Vec<(CodePoint, Band)>,
    pub high: usize,
    pub intermediate: usize,
    pub unacceptable: usize,
    /// "On the average acceptable": majority of points at intermediate
    /// band or better.
    pub passes: bool,
}

/// Evaluate PPT1 (delivered performance) for a set of code speedups.
pub fn ppt1(machine: &str, processors: u32, points: Vec<CodePoint>) -> Ppt1Report {
    let classified: Vec<(CodePoint, Band)> = points
        .into_iter()
        .map(|pt| {
            let b = classify(pt.speedup, processors);
            (pt, b)
        })
        .collect();
    let speedups: Vec<f64> = classified.iter().map(|(p, _)| p.speedup).collect();
    let (high, intermediate, unacceptable) = band_counts(&speedups, processors);
    let passes = high + intermediate > unacceptable;
    Ppt1Report {
        machine: machine.to_string(),
        processors,
        points: classified,
        high,
        intermediate,
        unacceptable,
        passes,
    }
}

/// PPT2 verdict for one machine's rate ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt2Report {
    pub machine: String,
    /// `In(K, e)` for `e = 0, 2, 6` — the Table 5 row.
    pub in_0: Option<f64>,
    pub in_2: Option<f64>,
    pub in_6: Option<f64>,
    /// Exclusions needed to reach workstation-level stability (In ≤ 6).
    pub exclusions_needed: Option<usize>,
    /// Passes with at most `allowed_exclusions`.
    pub passes: bool,
}

/// Evaluate PPT2 (stable performance) on a MFLOPS ensemble, allowing up
/// to `allowed_exclusions` outliers (the paper accepts two).
pub fn ppt2(machine: &str, mflops: &[f64], allowed_exclusions: usize) -> Ppt2Report {
    let needed = exclusions_for_stability(mflops, mflops.len().saturating_sub(2));
    Ppt2Report {
        machine: machine.to_string(),
        in_0: instability(mflops, 0),
        in_2: instability(mflops, 2),
        in_6: instability(mflops, 6),
        exclusions_needed: needed,
        passes: needed.is_some_and(|e| e <= allowed_exclusions),
    }
}

/// PPT3 verdict: restructuring efficiency band counts (Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt3Report {
    pub machine: String,
    pub high: usize,
    pub intermediate: usize,
    pub unacceptable: usize,
}

/// Evaluate PPT3 (portability/programmability) from compiler-restructured
/// speedups.
pub fn ppt3(machine: &str, restructured_speedups: &[f64], processors: u32) -> Ppt3Report {
    let (high, intermediate, unacceptable) = band_counts(restructured_speedups, processors);
    Ppt3Report {
        machine: machine.to_string(),
        high,
        intermediate,
        unacceptable,
    }
}

/// One (processors, problem size) measurement for PPT4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    pub processors: u32,
    pub n: u64,
    pub mflops: f64,
    /// Speedup over the 1-processor (or smallest-P) run at the same N.
    pub speedup: f64,
}

/// PPT4 verdict: the band at each (P, N) plus size-stability per P.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt4Report {
    pub machine: String,
    pub points: Vec<(ScalePoint, Band)>,
    /// Per processor count: stability of MFLOPS across problem sizes
    /// (PPT4 demands St(P, N, 1, 0) ≥ 0.5).
    pub size_stability: Vec<(u32, f64)>,
    /// Largest processor count at which no point is unacceptable and the
    /// size-stability criterion holds.
    pub scalable_up_to: Option<u32>,
}

/// PPT4 acceptance: stability across sizes of at least 0.5 (the paper is
/// "more restrictive here than in PPT2").
pub const PPT4_SIZE_STABILITY: f64 = 0.5;

/// Evaluate PPT4 (code and architecture scalability).
pub fn ppt4(machine: &str, points: Vec<ScalePoint>) -> Ppt4Report {
    let classified: Vec<(ScalePoint, Band)> = points
        .iter()
        .map(|&pt| (pt, classify(pt.speedup, pt.processors)))
        .collect();
    let mut procs: Vec<u32> = points.iter().map(|p| p.processors).collect();
    procs.sort_unstable();
    procs.dedup();
    let mut size_stability = Vec::new();
    for &p in &procs {
        let rates: Vec<f64> = points
            .iter()
            .filter(|x| x.processors == p)
            .map(|x| x.mflops)
            .collect();
        let st = if rates.len() >= 2 {
            crate::stability::stability(&rates, 0).unwrap_or(1.0)
        } else {
            1.0
        };
        size_stability.push((p, st));
    }
    let scalable_up_to = procs
        .iter()
        .copied()
        .filter(|&p| {
            let ok_bands = classified
                .iter()
                .filter(|(pt, _)| pt.processors == p)
                .all(|(_, b)| *b != Band::Unacceptable);
            let ok_stable = size_stability
                .iter()
                .find(|(pp, _)| *pp == p)
                .is_some_and(|(_, st)| *st >= PPT4_SIZE_STABILITY);
            ok_bands && ok_stable
        })
        .max();
    Ppt4Report {
        machine: machine.to_string(),
        points: classified,
        size_stability,
        scalable_up_to,
    }
}

/// The workstation-stability bound PPT2 uses, re-exported for reports.
pub fn stability_bound() -> f64 {
    STABLE_INSTABILITY_BOUND
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppt1_counts_and_verdict() {
        let pts = vec![
            CodePoint {
                code: "A".into(),
                speedup: 20.0,
            },
            CodePoint {
                code: "B".into(),
                speedup: 8.0,
            },
            CodePoint {
                code: "C".into(),
                speedup: 1.0,
            },
        ];
        let r = ppt1("cedar", 32, pts);
        assert_eq!((r.high, r.intermediate, r.unacceptable), (1, 1, 1));
        assert!(r.passes);
    }

    #[test]
    fn ppt2_exclusion_logic() {
        // One terrible and one stellar code; the rest tight.
        let rates = [0.2, 3.0, 3.5, 4.0, 4.5, 5.0, 40.0];
        let r = ppt2("cedar", &rates, 2);
        assert!(r.in_0.unwrap() > 100.0);
        assert!(r.in_2.unwrap() < 6.0, "in2={:?}", r.in_2);
        assert_eq!(r.exclusions_needed, Some(2));
        assert!(r.passes);
        // A machine needing six exclusions fails with two allowed.
        let wild = [0.1, 0.5, 1.0, 3.0, 9.0, 27.0, 81.0, 160.0];
        let r = ppt2("ymp", &wild, 2);
        assert!(!r.passes);
    }

    #[test]
    fn ppt3_is_band_counts() {
        let r = ppt3("cedar", &[17.0, 5.0, 4.0, 1.0], 32);
        assert_eq!((r.high, r.intermediate, r.unacceptable), (1, 2, 1));
    }

    #[test]
    fn ppt4_scalability_detection() {
        let mut pts = Vec::new();
        for &p in &[8u32, 32] {
            for &n in &[10_000u64, 100_000] {
                pts.push(ScalePoint {
                    processors: p,
                    n,
                    mflops: if p == 32 && n == 10_000 { 10.0 } else { 40.0 },
                    speedup: if p == 32 && n == 10_000 {
                        2.0 // unacceptable at 32
                    } else {
                        f64::from(p) * 0.6
                    },
                });
            }
        }
        let r = ppt4("cedar", pts);
        // 8 procs fine; 32 has an unacceptable small-size point and poor
        // size stability (10/40 = 0.25).
        assert_eq!(r.scalable_up_to, Some(8));
        let st32 = r.size_stability.iter().find(|(p, _)| *p == 32).unwrap().1;
        assert!(st32 < 0.5);
    }
}

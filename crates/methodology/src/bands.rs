//! Acceptable-performance bands.
//!
//! "We shall use P/2 and P/(2 log P), for P ≥ 8, as levels that denote
//! **high** performance and **acceptable** performance, respectively. We
//! refer to speedups in the three bands defined by these two levels as
//! high, intermediate, or unacceptable." (§4.3)

/// The three performance bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Band {
    /// Speedup ≥ P/2 (efficiency ≥ 1/2).
    High,
    /// Speedup ≥ P / (2·log₂ P) but below P/2.
    Intermediate,
    /// Below the acceptable level.
    Unacceptable,
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Band::High => "high",
            Band::Intermediate => "intermediate",
            Band::Unacceptable => "unacceptable",
        })
    }
}

/// The high-performance speedup level `P/2`.
pub fn high_level(p: u32) -> f64 {
    f64::from(p) / 2.0
}

/// The acceptable speedup level `P / (2·log₂ P)`.
///
/// # Panics
///
/// Panics for `p < 2` (the paper applies the levels for `P ≥ 8`).
pub fn acceptable_level(p: u32) -> f64 {
    assert!(p >= 2, "bands are defined for multiple processors");
    f64::from(p) / (2.0 * f64::from(p).log2())
}

/// Classify a speedup on `p` processors.
pub fn classify(speedup: f64, p: u32) -> Band {
    if speedup >= high_level(p) {
        Band::High
    } else if speedup >= acceptable_level(p) {
        Band::Intermediate
    } else {
        Band::Unacceptable
    }
}

/// Classify an efficiency (`speedup / p`) on `p` processors.
pub fn classify_efficiency(eff: f64, p: u32) -> Band {
    classify(eff * f64::from(p), p)
}

/// Band counts of an ensemble of speedups: `(high, intermediate,
/// unacceptable)` — the Table 6 row format.
pub fn band_counts(speedups: &[f64], p: u32) -> (usize, usize, usize) {
    let mut h = 0;
    let mut i = 0;
    let mut u = 0;
    for &s in speedups {
        match classify(s, p) {
            Band::High => h += 1,
            Band::Intermediate => i += 1,
            Band::Unacceptable => u += 1,
        }
    }
    (h, i, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_for_cedar_and_ymp() {
        // 32 processors: high ≥ 16, acceptable ≥ 32/(2·5) = 3.2.
        assert!((high_level(32) - 16.0).abs() < 1e-12);
        assert!((acceptable_level(32) - 3.2).abs() < 1e-12);
        // 8 processors: high ≥ 4, acceptable ≥ 8/6.
        assert!((high_level(8) - 4.0).abs() < 1e-12);
        assert!((acceptable_level(8) - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(16.0, 32), Band::High);
        assert_eq!(classify(15.9, 32), Band::Intermediate);
        assert_eq!(classify(3.2, 32), Band::Intermediate);
        assert_eq!(classify(3.1, 32), Band::Unacceptable);
    }

    #[test]
    fn efficiency_classification_matches() {
        assert_eq!(classify_efficiency(0.5, 32), Band::High);
        assert_eq!(classify_efficiency(0.11, 32), Band::Intermediate);
        assert_eq!(classify_efficiency(0.09, 32), Band::Unacceptable);
    }

    #[test]
    fn counts() {
        let (h, i, u) = band_counts(&[20.0, 10.0, 4.0, 1.0], 32);
        assert_eq!((h, i, u), (1, 2, 1));
    }

    #[test]
    fn band_ordering_and_display() {
        assert!(Band::High < Band::Intermediate);
        assert_eq!(Band::Unacceptable.to_string(), "unacceptable");
    }
}

//! Property-based verification that the stability measure's
//! extremes-only exclusion search is *optimal*: for small ensembles,
//! brute-force search over every subset of exclusions never beats it.

use proptest::prelude::*;

use cedar_methodology::bands::{acceptable_level, classify, high_level, Band};
use cedar_methodology::stability::{instability, stability};

/// Brute force: best achievable min/max ratio after removing any `e`
/// elements (not just extremes).
fn brute_force_stability(perf: &[f64], e: usize) -> Option<f64> {
    let n = perf.len();
    if n < e + 2 {
        return None;
    }
    let mut best: Option<f64> = None;
    // Iterate bitmasks with exactly e bits set.
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != e {
            continue;
        }
        let kept: Vec<f64> = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| perf[i])
            .collect();
        let min = kept.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = kept.iter().cloned().fold(0.0, f64::max);
        let st = min / max;
        if best.is_none_or(|b| st > b) {
            best = Some(st);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extremes_only_exclusion_is_optimal(
        xs in prop::collection::vec(0.01f64..100.0, 3..10),
        e in 0usize..3,
    ) {
        prop_assume!(xs.len() >= e + 2);
        let fast = stability(&xs, e).unwrap();
        let brute = brute_force_stability(&xs, e).unwrap();
        prop_assert!((fast - brute).abs() < 1e-12, "fast {fast} vs brute {brute}");
    }

    #[test]
    fn instability_at_least_one(
        xs in prop::collection::vec(0.01f64..100.0, 2..12),
        e in 0usize..4,
    ) {
        prop_assume!(xs.len() >= e + 2);
        let inst = instability(&xs, e).unwrap();
        prop_assert!(inst >= 1.0 - 1e-12);
    }

    #[test]
    fn bands_are_a_partition_and_monotone(s in 0.0f64..40.0, s2 in 0.0f64..40.0) {
        let p = 32;
        let (lo, hi) = (s.min(s2), s.max(s2));
        let (blo, bhi) = (classify(lo, p), classify(hi, p));
        // Higher speedup never gets a worse band.
        prop_assert!(bhi <= blo, "bands must be monotone: {bhi:?} for {hi} vs {blo:?} for {lo}");
        // Thresholds consistent with the level functions.
        if hi >= high_level(p) {
            prop_assert_eq!(bhi, Band::High);
        } else if hi >= acceptable_level(p) {
            prop_assert_eq!(bhi, Band::Intermediate);
        } else {
            prop_assert_eq!(bhi, Band::Unacceptable);
        }
    }
}

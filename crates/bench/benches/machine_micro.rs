//! Criterion micro-benchmarks of the simulator itself: how fast the
//! machine model executes representative slices of the paper's
//! workloads. These time the *simulator*; the `--bin` harnesses measure
//! the *simulated machine*.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cedar_kernels::staged::cg::StagedCg;
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_kernels::staged::vload::VectorLoad;
use cedar_machine::ids::CeId;
use cedar_machine::machine::{CounterScope, Machine};
use cedar_machine::program::{AddressExpr, MemOperand, Op, ProgramBuilder, VectorOp};
use cedar_machine::ClusterId;

fn bench_network_roundtrip(c: &mut Criterion) {
    c.bench_function("sim/scalar_global_read_roundtrips", |b| {
        b.iter(|| {
            let mut m = Machine::cedar().unwrap();
            let mut pb = ProgramBuilder::new();
            pb.repeat(64, |pb| {
                pb.push(Op::ScalarGlobalRead {
                    addr: AddressExpr::new(0).with_coeff(0, 7),
                });
            });
            let r = m.run(vec![(CeId(0), pb.build())], 1_000_000).unwrap();
            black_box(r.cycles)
        })
    });
}

fn bench_prefetch_stream(c: &mut Criterion) {
    c.bench_function("sim/prefetch_stream_8ces_4kwords", |b| {
        b.iter(|| {
            let mut m = Machine::cedar().unwrap();
            let progs = VectorLoad {
                words_per_ce: 4096,
                block: 32,
            }
            .build(&mut m, 1);
            let r = m.run(progs, 10_000_000).unwrap();
            black_box(r.prefetch.words_returned)
        })
    });
}

fn bench_rank64_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/rank64_one_cluster");
    g.sample_size(10);
    for (name, version) in [
        ("nopref", Rank64Version::GmNoPrefetch),
        ("pref32", Rank64Version::GmPrefetch { block_words: 32 }),
        ("cache", Rank64Version::GmCache),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::cedar().unwrap();
                let kern = Rank64 {
                    n: 64,
                    k: 64,
                    version,
                };
                let progs = kern.build(&mut m, 1);
                let r = m.run(progs, 1_000_000_000).unwrap();
                black_box(r.mflops)
            })
        });
    }
    g.finish();
}

fn bench_cg_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/cg_iteration");
    g.sample_size(10);
    g.bench_function("n4k_8ces", |b| {
        b.iter(|| {
            let mut m = Machine::cedar().unwrap();
            let cg = StagedCg {
                n: 4096,
                iterations: 1,
            };
            let progs = cg.build(&mut m, 8);
            let r = m.run(progs, 100_000_000).unwrap();
            black_box(r.cycles)
        })
    });
    g.finish();
}

fn bench_selfsched_dispatch(c: &mut Criterion) {
    c.bench_function("sim/ccbus_selfsched_1k_iters", |b| {
        b.iter(|| {
            let mut m = Machine::cedar().unwrap();
            let counter = m.alloc_counter(CounterScope::Cluster(ClusterId(0)));
            let mut progs = Vec::new();
            for ce in 0..8usize {
                let mut pb = ProgramBuilder::new();
                pb.self_sched(counter, 1024, 1, |pb| {
                    pb.vector(VectorOp {
                        length: 8,
                        flops_per_element: 1,
                        operand: MemOperand::None,
                    });
                });
                progs.push((CeId(ce), pb.build()));
            }
            let r = m.run(progs, 10_000_000).unwrap();
            black_box(r.flops)
        })
    });
}

criterion_group!(
    benches,
    bench_network_roundtrip,
    bench_prefetch_stream,
    bench_rank64_slice,
    bench_cg_iteration,
    bench_selfsched_dispatch
);
criterion_main!(benches);

//! Criterion wrappers over shrunken table experiments: one benchmark per
//! table/figure, exercising the same code paths as the full `--bin`
//! harnesses at CI-friendly sizes. Regenerating the paper's actual rows
//! is the job of the binaries (`cargo run --release -p cedar-bench --bin
//! table1` …); these keep the pipelines measured and honest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cedar_kernels::staged::cg::StagedCg;
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_kernels::staged::tridiag::TridiagMatvec;
use cedar_kernels::staged::vload::VectorLoad;
use cedar_machine::machine::Machine;
use cedar_machine::MachineConfig;
use cedar_perfect::codes::CodeName;
use cedar_perfect::run::{CodeStudy, Variant};

/// Table 1 at n=64, 1 and 4 clusters, all three versions.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("rank64_three_versions_small", |b| {
        b.iter(|| {
            let mut out = 0.0;
            for version in [
                Rank64Version::GmNoPrefetch,
                Rank64Version::GmPrefetch { block_words: 32 },
                Rank64Version::GmCache,
            ] {
                let mut m = Machine::cedar().unwrap();
                let kern = Rank64 {
                    n: 64,
                    k: 64,
                    version,
                };
                let progs = kern.build(&mut m, 1);
                out += m.run(progs, 1_000_000_000).unwrap().mflops;
            }
            black_box(out)
        })
    });
    g.finish();
}

/// Table 2's monitor path: one kernel per family at 8 CEs.
fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("monitor_vl_tm_small", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::cedar_with_clusters(1)).unwrap();
            let progs = VectorLoad {
                words_per_ce: 2048,
                block: 32,
            }
            .build(&mut m, 1);
            let r1 = m.run(progs, 100_000_000).unwrap();
            let mut m = Machine::new(MachineConfig::cedar_with_clusters(1)).unwrap();
            let progs = TridiagMatvec { n: 4096, sweeps: 1 }.build(&mut m, 1);
            let r2 = m.run(progs, 100_000_000).unwrap();
            black_box(r1.prefetch.mean_latency() + r2.prefetch.mean_latency())
        })
    });
    g.finish();
}

/// Tables 3–6 / Fig. 3 share the Perfect pipeline: one representative
/// code end to end (serial + automatable).
fn bench_table3_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_to_6_and_fig3");
    g.sample_size(10);
    g.bench_function("perfect_trfd_serial_plus_auto", |b| {
        b.iter(|| {
            let study = CodeStudy::new(CodeName::Trfd, 4).unwrap();
            let auto = study.run(Variant::Automatable).unwrap().unwrap();
            black_box(auto.speedup)
        })
    });
    g.finish();
}

/// PPT4's CG path at one (P, N) point.
fn bench_ppt4(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppt4");
    g.sample_size(10);
    g.bench_function("cg_n8k_32ces", |b| {
        b.iter(|| {
            let cg = StagedCg {
                n: 8_192,
                iterations: 1,
            };
            black_box(cg.mflops_on_cedar(32).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3_pipeline,
    bench_ppt4
);
criterion_main!(benches);

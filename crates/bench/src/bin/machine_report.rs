//! Run one kernel on the full 32-CE Cedar machine and dump the complete
//! instrumentation picture: the per-run counter tree (flat text on
//! stdout) and a Chrome-trace JSON timeline of per-CE utilization
//! (written to a file, openable in `chrome://tracing` or
//! <https://ui.perfetto.dev>).
//!
//! ```text
//! cargo run --release -p cedar-bench --bin machine_report [TRACE.json]
//! ```
//!
//! The trace path defaults to `machine_trace.json` in the current
//! directory. `CEDAR_BENCH_QUICK=1` shrinks the problem size.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::stats::export;
use cedar_machine::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "machine_trace.json".to_string());
    let n = if cedar_bench::quick() { 64 } else { 256 };

    let clusters = 4;
    eprintln!("running rank-64 update (n = {n}, GM/cache) on 32-CE Cedar...");
    let cfg = MachineConfig::cedar_with_clusters(clusters);
    let cycle_ns = cfg.cycle_ns;
    let mut m = Machine::new(cfg)?;
    let kern = Rank64 {
        n,
        k: 64,
        version: Rank64Version::GmCache,
    };
    let progs = kern.build(&mut m, clusters);
    let r = m.run(progs, 8_000_000_000)?;

    println!(
        "rank-64 update, n = {n}: {:.1} MFLOPS over {} cycles",
        r.mflops, r.cycles
    );
    println!();
    println!("== per-run counter tree (stats delta) ==");
    print!("{}", export::flat_text(&r.stats));

    let trace = export::chrome_trace(m.timeline(), &r.stats, cycle_ns);
    std::fs::write(&trace_path, &trace)?;
    eprintln!(
        "wrote Chrome trace to {trace_path} ({} bytes); open in chrome://tracing or ui.perfetto.dev",
        trace.len()
    );
    Ok(())
}

//! Run one kernel on the full 32-CE Cedar machine and dump the complete
//! instrumentation picture: the per-run counter tree (flat text on
//! stdout) and a Chrome-trace JSON timeline of per-CE utilization
//! (written to a file, openable in `chrome://tracing` or
//! <https://ui.perfetto.dev>).
//!
//! ```text
//! cargo run --release -p cedar-bench --bin machine_report [TRACE.json]
//! ```
//!
//! The trace path defaults to `machine_trace.json` in the current
//! directory. `CEDAR_BENCH_QUICK=1` shrinks the problem size.
//!
//! With `CEDAR_TRACE_SAMPLE_PPM` (and optionally `CEDAR_TRACE_SEED`) set,
//! journey tracing is enabled: the report adds the per-hop latency
//! breakdown table and barrier-episode attribution, and the Chrome trace
//! gains one async span per sampled journey nested under its CE's track.
//! Set `CEDAR_PROFILE_JSONL=PATH` to also write host-side self-profiling
//! of the simulator's tick phases (wall-clock per subsystem) to `PATH` as
//! JSON lines — a lenient knob: it observes the simulator and cannot
//! change simulated results.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::stats::export;
use cedar_machine::{config, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "machine_trace.json".to_string());
    let n = if cedar_bench::quick() { 64 } else { 256 };

    let clusters = 4;
    eprintln!("running rank-64 update (n = {n}, GM/cache) on 32-CE Cedar...");
    let mut cfg = MachineConfig::cedar_with_clusters(clusters);
    if let Some(plan) = config::trace_plan_from_env()? {
        eprintln!(
            "journey tracing on (seed = {:#x}, rate = {} ppm)",
            plan.seed, plan.sample_ppm
        );
        cfg = cfg.with_trace(plan);
    }
    let cycle_ns = cfg.cycle_ns;
    let mut m = Machine::new(cfg)?;
    let profile_path = std::env::var("CEDAR_PROFILE_JSONL")
        .ok()
        .filter(|p| !p.is_empty());
    if profile_path.is_some() {
        m.enable_host_profiling();
    }
    let kern = Rank64 {
        n,
        k: 64,
        version: Rank64Version::GmCache,
    };
    let progs = kern.build(&mut m, clusters);
    let r = m.run(progs, 8_000_000_000)?;

    println!(
        "rank-64 update, n = {n}: {:.1} MFLOPS over {} cycles",
        r.mflops, r.cycles
    );
    println!();
    println!("== per-run counter tree (stats delta) ==");
    print!("{}", export::flat_text(&r.stats));

    let journeys = m.trace_journeys();
    if !journeys.is_empty() {
        println!();
        println!(
            "== latency attribution ({} journeys, {} events, {} dropped) ==",
            journeys.len(),
            m.trace_events().len(),
            m.trace_dropped()
        );
        print!("{}", m.latency_breakdown().text_table());
        let episodes = m.barrier_episodes();
        if !episodes.is_empty() {
            println!();
            println!("== barrier episodes (critical-path attribution) ==");
            for e in &episodes {
                println!(
                    "barrier {} epoch {}: {} arrivals, skew {} cycles, last CE {} at cycle {}",
                    e.barrier,
                    e.epoch,
                    e.arrivals.len(),
                    e.skew(),
                    e.last_ce,
                    e.last_at.0
                );
            }
        }
    }

    let trace = export::chrome_trace_with_journeys(m.timeline(), &r.stats, cycle_ns, &journeys);
    std::fs::write(&trace_path, &trace)?;
    eprintln!(
        "wrote Chrome trace to {trace_path} ({} bytes, {} journey spans); \
         open in chrome://tracing or ui.perfetto.dev",
        trace.len(),
        journeys.len()
    );

    if let Some(path) = profile_path {
        let jsonl = m.host_profile_jsonl();
        std::fs::write(&path, &jsonl)?;
        eprintln!(
            "wrote host-phase profile to {path} ({} lines)",
            jsonl.lines().count()
        );
    }
    Ok(())
}

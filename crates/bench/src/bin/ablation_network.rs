//! Ablation: switch queue depth and radix.
//!
//! The paper argues (citing Turner's simulations) that the memory-system
//! degradation at 3–4 clusters "is not inherent in the type of network
//! used but is a result of specific implementation constraints" — i.e.
//! the 2-word queues and fixed radix. This ablation varies both on the
//! 32-CE prefetch-heavy rank-64 kernel.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = if cedar_bench::quick() { 128 } else { 256 };
    println!(
        "== ablation: network queue depth and radix (rank-64 GM/pref, 4 clusters, n = {n}) =="
    );
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>14}",
        "radix", "queue", "MFLOPS", "latency cy", "interarrival"
    );
    for &(radix, queue) in &[(8usize, 1usize), (8, 2), (8, 4), (8, 8), (4, 2), (2, 2)] {
        let mut cfg = MachineConfig::cedar();
        cfg.network.radix = radix;
        cfg.network.queue_words = queue;
        let mut m = Machine::new(cfg)?;
        let kern = Rank64 {
            n,
            k: 64,
            version: Rank64Version::GmPrefetch { block_words: 256 },
        };
        let progs = kern.build(&mut m, 4);
        let r = m.run(progs, 8_000_000_000)?;
        println!(
            "{:>8} {:>8} {:>10.1} {:>12.1} {:>14.2}",
            radix,
            queue,
            r.mflops,
            r.prefetch.mean_latency(),
            r.prefetch.mean_interarrival(),
        );
    }
    println!("\nexpected: deeper queues recover throughput lost to tree saturation (the paper's");
    println!("'implementation constraints'); lower radix adds stages and baseline latency.");
    Ok(())
}

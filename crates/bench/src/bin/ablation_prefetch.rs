//! Ablation: prefetch block size and policy on the rank-64 update.
//!
//! DESIGN.md calls out the prefetch block size (32-word compiler blocks
//! vs the hand kernel's 256-word aggressive blocks) as the driver of
//! Table 2's RK-vs-VL ordering: longer bursts raise access intensity and
//! congest the memory system sooner.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = if cedar_bench::quick() { 128 } else { 256 };
    println!("== ablation: prefetch block size (rank-64 update, n = {n}) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>14}",
        "block", "clusters", "MFLOPS", "latency cy", "interarrival"
    );
    for &block in &[0u32, 32, 64, 128, 256, 512] {
        for &clusters in &[1usize, 4] {
            let version = if block == 0 {
                Rank64Version::GmNoPrefetch
            } else {
                Rank64Version::GmPrefetch { block_words: block }
            };
            let mut m = Machine::new(MachineConfig::cedar_with_clusters(clusters))?;
            let kern = Rank64 { n, k: 64, version };
            let progs = kern.build(&mut m, clusters);
            let r = m.run(progs, 8_000_000_000)?;
            println!(
                "{:>10} {:>10} {:>10.1} {:>12.1} {:>14.2}",
                if block == 0 {
                    "none".to_string()
                } else {
                    block.to_string()
                },
                clusters,
                r.mflops,
                r.prefetch.mean_latency(),
                r.prefetch.mean_interarrival(),
            );
        }
    }
    println!("\nexpected: blocks help until the burst saturates the memory system; 256+ degrades");
    println!("latency/interarrival at 4 clusters faster than 32 (the Table 2 RK phenomenon).");
    Ok(())
}

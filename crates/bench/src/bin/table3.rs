//! Regenerate Tables 3–6 and Figure 3 from one measurement of the
//! Perfect suite (they share the ensemble, as in the paper).

use cedar::experiments::{fig3, suite::PerfectSuite, table3, table4, table5, table6};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("measuring the Perfect suite (13 codes x 6 variants; a few minutes)...");
    let suite = PerfectSuite::measure(4)?;
    println!("{}", table3::run(&suite).render());
    println!();
    println!("{}", table4::run(&suite).render());
    println!();
    println!("{}", table5::run(&suite).render());
    println!();
    println!("{}", table6::run(&suite).render());
    println!();
    println!("{}", fig3::run(&suite).render());
    Ok(())
}

//! Simulator throughput: what the event-horizon fast-forward buys.
//!
//! Times the Table 1, Table 2 and PPT4 experiment drivers — plus a
//! barrier-storm synthetic built to be almost entirely quiescent — twice
//! each: once with fast-forward disabled (`CEDAR_NO_FASTFWD=1`, the
//! cycle-by-cycle baseline) and once enabled. Checks that both passes
//! produce identical results (the fast-forward contract is bit-for-bit
//! equivalence, so there must be no simulated-cycle drift) and writes
//! `BENCH_simspeed.json` with simulated cycles, wall seconds, simulated
//! cycles per wall second and the speedup factor per experiment.
//!
//! `--smoke` shrinks every workload for CI; the full run sizes match the
//! golden-snapshot/quick experiment scales.

use std::time::Instant;

use cedar::experiments::table2::Table2Sizes;
use cedar::experiments::{ppt4, table1, table2};
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::{MemOperand, Op, Program, ProgramBuilder, VectorOp};
use cedar_machine::sched::BarrierScope;
use cedar_machine::{ClusterId, MachineConfig, MachineStats};

/// One experiment's before/after measurement.
struct Measurement {
    name: &'static str,
    simulated_cycles: u64,
    wall_off: f64,
    wall_on: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.wall_off / self.wall_on.max(1e-9)
    }

    fn json(&self) -> String {
        let c = self.simulated_cycles as f64;
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"wall_seconds_off\": {:.6},\n",
                "      \"wall_seconds_on\": {:.6},\n",
                "      \"cycles_per_sec_off\": {:.1},\n",
                "      \"cycles_per_sec_on\": {:.1},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            self.name,
            self.simulated_cycles,
            self.wall_off,
            self.wall_on,
            c / self.wall_off.max(1e-9),
            c / self.wall_on.max(1e-9),
            self.speedup(),
        )
    }
}

fn set_fastfwd(on: bool) {
    // "0" is the explicit enabled value; "1" disables (the same contract
    // the CI matrix exercises).
    std::env::set_var("CEDAR_NO_FASTFWD", if on { "0" } else { "1" });
}

/// Run `work` with fast-forward off then on; `work` returns a comparable
/// result plus the simulated cycle count.
fn measure<T: PartialEq>(name: &'static str, mut work: impl FnMut() -> (T, u64)) -> Measurement {
    eprintln!("  {name}: fast-forward off...");
    set_fastfwd(false);
    let start = Instant::now();
    let (result_off, cycles_off) = work();
    let wall_off = start.elapsed().as_secs_f64();
    eprintln!("  {name}: fast-forward on...");
    set_fastfwd(true);
    let start = Instant::now();
    let (result_on, cycles_on) = work();
    let wall_on = start.elapsed().as_secs_f64();
    assert_eq!(
        cycles_off, cycles_on,
        "{name}: simulated cycles drifted between fast-forward modes"
    );
    assert!(
        result_off == result_on,
        "{name}: results differ between fast-forward modes"
    );
    Measurement {
        name,
        simulated_cycles: cycles_off,
        wall_off,
        wall_on,
    }
}

fn stats_cycles<'a>(stats: impl IntoIterator<Item = &'a MachineStats>) -> u64 {
    stats.into_iter().map(|s| s.counter("machine.cycles")).sum()
}

/// The barrier-storm synthetic: every round, one CE per cluster computes
/// for `work` cycles while its seven siblings wait at a cluster barrier —
/// the waiters' clusters are quiescent for almost the whole round, which
/// is exactly the shape fast-forward targets (and the shape every
/// barrier-bound Cedar workload degenerates to at small problem sizes).
fn barrier_storm(rounds: u32, work: u32) -> (Vec<(CeId, Program)>, Machine) {
    let mut m = Machine::new(MachineConfig::cedar()).expect("cedar config");
    let clusters = m.config().clusters;
    let cpc = m.config().ces_per_cluster;
    let bars: Vec<_> = (0..clusters)
        .map(|c| m.alloc_barrier(BarrierScope::Cluster(ClusterId(c)), cpc as u32))
        .collect();
    let mut progs = Vec::new();
    for ce in 0..clusters * cpc {
        let cluster = ce / cpc;
        let mut b = ProgramBuilder::new();
        b.repeat(rounds, |b| {
            if ce % cpc == 0 {
                b.scalar(work);
            } else {
                b.vector(VectorOp {
                    length: 16,
                    flops_per_element: 2,
                    operand: MemOperand::None,
                });
            }
            b.push(Op::Barrier {
                barrier: bars[cluster],
            });
        });
        progs.push((CeId(ce), b.build()));
    }
    (progs, m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "simulator throughput study (smoke = {smoke}, host parallelism = {host}, serial engine)"
    );

    let mut measurements = Vec::new();

    // Barrier storm: the headline fast-forward workload.
    let (rounds, work) = if smoke { (20, 10_000) } else { (50, 20_000) };
    measurements.push(measure("barrier_storm", || {
        let (progs, mut m) = barrier_storm(rounds, work);
        let r = m.run(progs, 1_000_000_000).expect("barrier storm run");
        ((r.cycles, r.flops, m.memory_digest()), r.cycles)
    }));

    // Table 1: rank-64 update, three memory versions x four cluster
    // counts.
    let n = if smoke { 64 } else { 128 };
    measurements.push(measure("table1_rank64", || {
        let t1 = table1::run(n).expect("table1 run");
        let cycles = stats_cycles(t1.rows.iter().flat_map(|r| &r.stats));
        (t1, cycles)
    }));

    // Table 2: VL/TM/RK/CG at 8/16/32 CEs.
    let sizes = if smoke {
        Table2Sizes {
            vl_words_per_ce: 1024,
            tm_n: 4096,
            rk_n: 32,
            cg_n: 4096,
        }
    } else {
        Table2Sizes {
            vl_words_per_ce: 2048,
            tm_n: 8192,
            rk_n: 64,
            cg_n: 8192,
        }
    };
    measurements.push(measure("table2_kernels", || {
        let t2 = table2::run_sized(sizes).expect("table2 run");
        let cycles = stats_cycles(t2.kernels.iter().flat_map(|k| &k.stats));
        (t2, cycles)
    }));

    // PPT4: the CG scalability sweep (shrunk — the full paper sweep takes
    // minutes per pass even fast-forwarded).
    let (ns, procs, banded_n): (Vec<u64>, Vec<u32>, u64) = if smoke {
        (vec![1_024], vec![8], 4_096)
    } else {
        (vec![1_024, 4_096], vec![8, 32], 8_192)
    };
    measurements.push(measure("ppt4_cg_sweep", || {
        let study = ppt4::run_swept(1, &ns, &procs, banded_n).expect("ppt4 run");
        let cycles = study.total_cycles;
        (study, cycles)
    }));

    println!(
        "{:<16} {:>16} {:>10} {:>10} {:>14} {:>14} {:>8}",
        "experiment", "sim cycles", "off (s)", "on (s)", "cyc/s off", "cyc/s on", "speedup"
    );
    for m in &measurements {
        let c = m.simulated_cycles as f64;
        println!(
            "{:<16} {:>16} {:>10.3} {:>10.3} {:>14.0} {:>14.0} {:>7.2}x",
            m.name,
            m.simulated_cycles,
            m.wall_off,
            m.wall_on,
            c / m.wall_off.max(1e-9),
            c / m.wall_on.max(1e-9),
            m.speedup(),
        );
    }

    let json = format!(
        "{{\n  \"host_parallelism\": {host},\n  \"smoke\": {smoke},\n  \"experiments\": [\n{}\n  ]\n}}\n",
        measurements
            .iter()
            .map(Measurement::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write("BENCH_simspeed.json", json)?;
    eprintln!("wrote BENCH_simspeed.json");

    if !smoke {
        let storm = &measurements[0];
        assert!(
            storm.speedup() >= 3.0,
            "barrier storm should fast-forward at >= 3x wall clock, got {:.2}x",
            storm.speedup()
        );
    }
    Ok(())
}

//! Regenerate Fig3 from a fresh measurement of the Perfect suite.
//! (Tables 3-6 and Fig. 3 share the ensemble; `table3` prints them all.)

use cedar::experiments::{fig3, suite::PerfectSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("measuring the Perfect suite (13 codes x 6 variants; a few minutes)...");
    let suite = PerfectSuite::measure(4)?;
    println!("{}", fig3::run(&suite).render());
    Ok(())
}

//! Ablation: cluster-cache geometry on the GM/cache rank-64 update.
//!
//! The Alliant FX/8 shared cache (512 KB, 32 B lines, 4 banks, 8
//! words/cycle) is what lets the Table 1 cache version scale linearly.
//! This ablation varies capacity, bandwidth and the lockup-free miss
//! limit to show which properties carry the result.

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::Machine;
use cedar_machine::MachineConfig;

type Tweak = Box<dyn Fn(&mut MachineConfig)>;

fn run(mutate: impl Fn(&mut MachineConfig)) -> f64 {
    let mut cfg = MachineConfig::cedar();
    mutate(&mut cfg);
    let mut m = Machine::new(cfg).unwrap();
    let kern = Rank64 {
        n: 128,
        k: 64,
        version: Rank64Version::GmCache,
    };
    let progs = kern.build(&mut m, 4);
    m.run(progs, 8_000_000_000).unwrap().mflops
}

fn main() {
    println!("== ablation: cluster-cache geometry (rank-64 GM/cache, 4 clusters, n = 128) ==");
    println!("{:40} {:>10}", "configuration", "MFLOPS");
    let cases: Vec<(&str, Tweak)> = vec![
        (
            "baseline (512 KB, 8 w/c, 2 misses/CE)",
            Box::new(|_c: &mut MachineConfig| {}),
        ),
        (
            "capacity 64 KB",
            Box::new(|c| c.cache.capacity_bytes = 64 * 1024),
        ),
        (
            "capacity 8 KB (panel no longer fits)",
            Box::new(|c| c.cache.capacity_bytes = 8 * 1024),
        ),
        (
            "bandwidth 4 words/cycle",
            Box::new(|c| c.cache.words_per_cycle = 4),
        ),
        (
            "2 banks at 4 words/cycle",
            Box::new(|c| {
                c.cache.banks = 2;
                c.cache.words_per_cycle = 4;
            }),
        ),
        (
            "1 outstanding miss per CE",
            Box::new(|c| c.cache.max_outstanding_misses_per_ce = 1),
        ),
        (
            "direct-mapped (assoc 1)",
            Box::new(|c| c.cache.associativity = 1),
        ),
        (
            "slow cluster memory (2 w/c)",
            Box::new(|c| c.cluster_memory.words_per_cycle = 2),
        ),
    ];
    for (name, f) in &cases {
        println!("{:40} {:>10.1}", name, run(f));
    }
    println!();
    println!("expected: the cache version lives on bandwidth (8 w/c feeds one stream per CE)");
    println!("and on the panel fitting; capacity above the working set is irrelevant.");
}

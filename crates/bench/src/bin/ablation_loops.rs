//! Ablation: XDOALL vs SDOALL/CDOALL scheduling cost by granularity.
//!
//! §3.2: "The XDOALL has more scheduling flexibility but also higher
//! overhead. An SDOALL/CDOALL nest has a lower scheduling cost due to the
//! use of the concurrency control bus."

use cedar_machine::machine::Machine;
use cedar_machine::program::{MemOperand, VectorOp};
use cedar_xylem::gang::Gang;
use cedar_xylem::loops::Xylem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ablation: loop-scheduling flavor by granularity (4 clusters, 1024 iterations) ==");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "iter cycles", "XDOALL cy", "SDOALL/CDOALL", "ratio"
    );
    for &len in &[8u32, 32, 128, 512] {
        let body = move |b: &mut cedar_machine::program::ProgramBuilder| {
            b.vector(VectorOp {
                length: len,
                flops_per_element: 2,
                operand: MemOperand::None,
            });
        };
        // XDOALL.
        let mut m = Machine::cedar()?;
        let x = Xylem::default();
        let mut gang = Gang::clusters(4, 8);
        x.xdoall(&mut m, &mut gang, 1024, 1, |_, _, b| body(b));
        let xd = m.run(gang.finish(), 4_000_000_000)?.cycles;
        // SDOALL over clusters with nested CDOALL.
        let mut m = Machine::cedar()?;
        let mut gang = Gang::clusters(4, 8);
        let res = x.nested_resources(&mut m, &gang);
        let cpc = gang.ces_per_cluster();
        x.sdoall_static(&mut m, &mut gang, 4, |ce, _sv, b| {
            x.cdoall_nested(&res, ce, cpc, b, 256, 1, |_, _, b| body(b));
        });
        let sd = m.run(gang.finish(), 4_000_000_000)?.cycles;
        println!(
            "{:>12} {:>14} {:>14} {:>10.2}",
            12 + len,
            xd,
            sd,
            xd as f64 / sd as f64
        );
    }
    println!("\nexpected: the nest wins big on fine grain; the gap closes as iterations fatten.");
    Ok(())
}

//! Permutation behaviour of the omega network.
//!
//! An omega network provides a *unique path* between each input/output
//! pair (\[Lawr75\]), so it cannot pass every permutation without
//! conflict: identity and uniform shifts go through in parallel, while
//! transposes and bit-reversals collide at internal links and serialize.
//! Turner's thesis (\[Turn93\]) showed Cedar's observed degradation was
//! an implementation artifact rather than a property of the network
//! class; this study measures the network model's permutation behaviour
//! directly — with the default two-word queues and with deeper ones.

use cedar_machine::config::NetworkConfig;
use cedar_machine::ids::CeId;
use cedar_machine::network::packet::{MemRequest, Packet, Payload, RequestKind, Stream};
use cedar_machine::network::{NetSink, Omega};
use cedar_machine::time::Cycle;

struct Count {
    delivered: usize,
}
impl NetSink for Count {
    fn try_begin(&mut self, _p: usize) -> bool {
        true
    }
    fn deliver(&mut self, _p: usize, _pkt: Packet) {
        self.delivered += 1;
    }
}

/// Cycles to deliver one packet from every port under `perm`.
fn run_perm(queue_words: usize, words: u8, perm: &dyn Fn(usize, usize) -> usize) -> u64 {
    let cfg = NetworkConfig {
        radix: 8,
        queue_words,
        words_per_cycle: 1,
    };
    let mut net = Omega::new(64, &cfg);
    let size = net.size();
    let mut sink = Count { delivered: 0 };
    let mut pending: Vec<(usize, Packet)> = (0..size)
        .map(|src| {
            (
                src,
                Packet {
                    dst: perm(src, size),
                    words,
                    payload: Payload::Request(MemRequest {
                        ce: CeId(0),
                        kind: RequestKind::Read,
                        addr: src as u64,
                        stream: Stream::Scalar,
                        issued: Cycle(0),
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    }),
                },
            )
        })
        .collect();
    let mut cycles = 0u64;
    while sink.delivered < size {
        pending.retain(|(src, pkt)| !net.try_inject(*src, *pkt));
        net.tick(&mut sink);
        cycles += 1;
        assert!(cycles < 1_000_000, "network wedged");
    }
    cycles
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    let mut out = 0;
    for b in 0..bits {
        out |= ((x >> b) & 1) << (bits - 1 - b);
    }
    out
}

type Perm = Box<dyn Fn(usize, usize) -> usize>;

fn main() {
    println!("== omega network permutation study (64 ports, 8x8 switches, 1-word packets) ==");
    println!(
        "{:28} {:>10} {:>10} {:>10}",
        "permutation", "q=2 words", "q=4", "q=8"
    );
    let perms: Vec<(&str, Perm)> = vec![
        ("identity", Box::new(|s, _n| s)),
        ("shift by 1", Box::new(|s, n| (s + 1) % n)),
        ("shift by n/2", Box::new(|s, n| (s + n / 2) % n)),
        (
            "perfect shuffle",
            Box::new(|s, n| (s * 2) % n + (s * 2) / n),
        ),
        ("bit reversal", Box::new(|s, _n| bit_reverse(s, 6))),
        (
            "transpose (swap digit halves)",
            Box::new(|s, _n| (s % 8) * 8 + s / 8),
        ),
        ("all-to-port-0 (hot spot)", Box::new(|_s, _n| 0)),
    ];
    for (name, f) in &perms {
        let a = run_perm(2, 1, f);
        let b = run_perm(4, 1, f);
        let c = run_perm(8, 1, f);
        println!("{name:28} {a:>10} {b:>10} {c:>10}");
    }
    println!();
    println!("expected: identity/shifts pass near-conflict-free; bit reversal and transpose");
    println!("serialize on shared internal links (the unique-path property); the hot spot");
    println!("serializes fully. Deeper queues absorb transient conflicts but cannot create");
    println!("paths that do not exist.");
}

//! Regenerate Table 1: MFLOPS for the rank-64 update on Cedar.
//!
//! `--checkpoint <dir>` auto-snapshots every simulation so an
//! interrupted table can be continued with `--resume` (see
//! `EXPERIMENTS.md`, "Crash recovery").

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ck = cedar::experiments::ckpt::Checkpoint::from_cli(std::env::args())?;
    let n = if cedar_bench::quick() { 128 } else { 256 };
    eprintln!("running Table 1 (rank-64 update, n = {n}; three versions x four cluster counts)...");
    let t1 = cedar::experiments::table1::run_with(n, ck.as_ref())?;
    println!("{}", t1.render());
    let pf = t1.prefetch_factors();
    let cf = t1.cache_factors();
    println!(
        "prefetch improvement over no-pref: {:.1} / {:.1} / {:.1} / {:.1}  (paper: 3.5 / 2.9 / 2.2 / 1.9)",
        pf[0], pf[1], pf[2], pf[3]
    );
    println!(
        "cache improvement over no-pref   : {:.1} / {:.1} / {:.1} / {:.1}  (paper: 3.5 ... 3.8)",
        cf[0], cf[1], cf[2], cf[3]
    );
    Ok(())
}

//! Bench-regression observatory: validate the committed `BENCH_*.json`
//! artifacts and gate on unexplained regressions.
//!
//! The repo commits four machine-readable bench artifacts —
//! `BENCH_hotpath.json` (busy-cycle throughput vs the pre-overhaul
//! baseline), `BENCH_simspeed.json` (fast-forward on/off speedups),
//! `BENCH_resilience.json` (fault-sweep outcomes) and
//! `BENCH_crash_resume.json` (checkpoint/resume kill-and-recover
//! outcomes). Each is written by a different binary with its own
//! hand-rolled serializer, so drift is easy: a field renamed in one
//! place, a speedup that no longer matches the quotient it claims to be,
//! a committed smoke artifact masquerading as a full run.
//!
//! Default mode prints a one-screen summary of all three files.
//! `--check` additionally exits nonzero when any file is missing,
//! malformed, schema-invalid, internally inconsistent, or carries a
//! regression the file itself does not explain:
//!
//! * hot-path kernels must keep `speedup_vs_baseline >= 0.90`,
//! * hot-path kernels must carry the flow-path columns
//!   (`cycles_per_sec_flowpath_off`, `flowpath_speedup`), the speedup
//!   must equal the rate quotient, and the flow path must not cost more
//!   than 10% on any kernel (`flowpath_speedup >= 0.90`),
//! * hot-path kernels must likewise carry the program-lowering columns
//!   (`cycles_per_sec_lowered_off`, `lowered_speedup`), the speedup must
//!   equal the rate quotient, lowering must keep a real win on the
//!   dispatch-bound dense-compute kernel (`lowered_speedup >= 1.15` on
//!   `rank64_peak`) and never cost any kernel more than 10%, and the
//!   dense-compute kernel's cumulative speedup vs the pre-overhaul
//!   baseline must stay `>= 1.9`,
//! * the fast-forward `barrier_storm` speedup must stay `>= 10`, other
//!   fast-forward experiments `>= 0.75` (the feature may be neutral but
//!   must not badly hurt),
//! * the `chunked` section (written by `parallel_scaling`) must be
//!   present with every rate equal to its quotient; lookahead chunking
//!   must keep a real win over the per-cycle barrier on the dense
//!   kernels at 4+ threads (`chunked_speedup >= 1.15`) and must never
//!   cost any row more than 10% (including the 1-thread rows, where the
//!   serial engine makes the knob inert and the row pins neutrality),
//! * every resilience row must have completed with outcome `"ok"` and
//!   slowdown under 10x,
//! * every crash-resume point must be bit-identical — matching cycle
//!   count, memory digest and stats tree — and the file must cover both
//!   kill modes (in-process and SIGKILL) at 1 and 4 threads. These are
//!   determinism gates, not performance gates, so they are *not* skipped
//!   for smoke artifacts: bit-identity holds at any workload size.
//!
//! Regression gates are skipped (with a note) for smoke artifacts —
//! `"smoke": true`, or a resilience `n` below the full 128 — since smoke
//! sizes are not comparable; schema and consistency checks still apply.
//! Run it from the repo root (CI does, before the smoke benches
//! overwrite the committed files):
//!
//! ```text
//! cargo run --release -p cedar-bench --bin bench_history -- --check
//! ```

use cedar_bench::json::{parse, Value};

/// Relative tolerance for "this field must equal that quotient" checks:
/// the emitters round rates to 0.1 and speedups to 3 decimals.
const REL_TOL: f64 = 0.01;

/// Hot-path kernels must not lose more than 10% of their recorded win.
const HOTPATH_FLOOR: f64 = 0.90;

/// The flow-level network fast path may be neutral on kernels whose hot
/// loops sit elsewhere, but must never cost a kernel more than 10%.
const FLOWPATH_FLOOR: f64 = 0.90;

/// Program lowering targets the CE dispatch loop, so its win is gated
/// where dispatch is the workload: the register-only dense-compute
/// kernels below. The memory-bound kernels converge across the lowering
/// hatch — their wall clock is network and module word movement, which
/// both paths share bit for bit — so there lowering only has to stay
/// neutral (the flow-path rule).
const LOWERED_FLOOR: f64 = 1.15;

/// Kernels whose busy cycle is CE issue and dispatch rather than memory
/// traffic: the rows [`LOWERED_FLOOR`] and [`CUMULATIVE_FLOOR`] gate.
const DENSE_COMPUTE_KERNELS: &[&str] = &["rank64_peak"];

/// On every other kernel lowering may be neutral but must never cost
/// more than 10%.
const LOWERED_NEUTRAL_FLOOR: f64 = 0.90;

/// The performance arc's headline: on the dense-compute kernel the
/// overhauls stack to at least this much over the pre-overhaul tick
/// loop (threads and fast-forward are gated separately in
/// `BENCH_simspeed.json`).
const CUMULATIVE_FLOOR: f64 = 1.9;

/// Lookahead chunking targets the barrier rounds the per-cycle parallel
/// engine spends while the network idles, so its win is gated where the
/// network idles: the dense-compute kernels, at thread counts that pay
/// for real barrier rounds. The comparison runs both legs at the same
/// thread count, so it is meaningful on any host.
const CHUNKED_FLOOR: f64 = 1.15;

/// Elsewhere — memory-bound rows (in-flight traffic pins chunks at one
/// cycle) and 1-thread rows (the serial engine ignores the knob) —
/// chunking may be neutral but must never cost more than 10%.
const CHUNKED_NEUTRAL_FLOOR: f64 = 0.90;

/// Fast-forward must stay a big win on the quiescent-heavy workload...
const FF_STORM_FLOOR: f64 = 10.0;

/// ...and at worst mildly unprofitable elsewhere.
const FF_OTHER_FLOOR: f64 = 0.75;

/// Resilience rows must not slow down more than this vs their clean run.
const RESILIENCE_SLOWDOWN_CEIL: f64 = 10.0;

/// One validation failure, tagged with the file it came from.
struct Finding {
    file: &'static str,
    msg: String,
}

struct Report {
    findings: Vec<Finding>,
    gates_skipped: Vec<&'static str>,
}

impl Report {
    fn fail(&mut self, file: &'static str, msg: String) {
        self.findings.push(Finding { file, msg });
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * b.abs().max(1e-9)
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Load and parse one artifact, recording findings for I/O/parse errors.
fn load(rep: &mut Report, file: &'static str) -> Option<Value> {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            rep.fail(file, format!("unreadable: {e}"));
            return None;
        }
    };
    match parse(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            rep.fail(file, format!("malformed JSON: {e}"));
            None
        }
    }
}

/// A kernel section of `BENCH_hotpath.json`: `(name, cycles, rate)`.
fn hotpath_kernels(
    rep: &mut Report,
    file: &'static str,
    doc: &Value,
    section: &str,
) -> Vec<(String, u64, f64)> {
    let mut out = Vec::new();
    let Some(kernels) = doc
        .get(section)
        .and_then(|s| s.get("kernels"))
        .and_then(Value::as_arr)
    else {
        rep.fail(file, format!("missing {section}.kernels array"));
        return out;
    };
    for (i, k) in kernels.iter().enumerate() {
        let name = k.get("name").and_then(Value::as_str);
        let cycles = k.get("simulated_cycles").and_then(Value::as_u64);
        let wall = num(k, "wall_seconds");
        let rate = num(k, "cycles_per_sec");
        let (Some(name), Some(cycles), Some(wall), Some(rate)) = (name, cycles, wall, rate) else {
            rep.fail(
                file,
                format!("{section}.kernels[{i}]: missing/mistyped field"),
            );
            continue;
        };
        if wall <= 0.0 || rate <= 0.0 || cycles == 0 {
            rep.fail(
                file,
                format!("{section} kernel {name}: non-positive measurement"),
            );
            continue;
        }
        if !close(rate, cycles as f64 / wall) {
            rep.fail(
                file,
                format!(
                    "{section} kernel {name}: cycles_per_sec {rate} != \
                     simulated_cycles/wall_seconds {:.1}",
                    cycles as f64 / wall
                ),
            );
        }
        out.push((name.to_string(), cycles, rate));
    }
    out
}

fn check_hotpath(rep: &mut Report) {
    let file = "BENCH_hotpath.json";
    let Some(doc) = load(rep, file) else { return };
    let Some(smoke) = doc.get("smoke").and_then(Value::as_bool) else {
        rep.fail(file, "missing boolean smoke field".into());
        return;
    };
    let baseline = hotpath_kernels(rep, file, &doc, "baseline");
    let current = hotpath_kernels(rep, file, &doc, "current");
    if current.is_empty() {
        rep.fail(file, "no current kernels".into());
        return;
    }
    for (name, cycles, rate) in &current {
        let Some((_, base_cycles, base_rate)) = baseline.iter().find(|(n, _, _)| n == name) else {
            rep.fail(file, format!("kernel {name}: no baseline entry"));
            continue;
        };
        // The simulator is deterministic: a changed cycle count means the
        // baseline was taken on a different workload, not a slower host.
        if cycles != base_cycles {
            rep.fail(
                file,
                format!(
                    "kernel {name}: simulated_cycles {cycles} != baseline {base_cycles} \
                     (stale baseline? rerun with --rebase)"
                ),
            );
        }
        let entry = doc
            .get("current")
            .and_then(|c| c.get("kernels"))
            .and_then(Value::as_arr)
            .and_then(|ks| {
                ks.iter()
                    .find(|k| k.get("name").and_then(Value::as_str) == Some(name))
            });
        // The flow-path columns: present on every current kernel, with
        // the claimed speedup equal to the rate quotient, and (non-smoke)
        // the flow path never costing a kernel more than the floor.
        let rate_off = entry.and_then(|k| num(k, "cycles_per_sec_flowpath_off"));
        let flow_speedup = entry.and_then(|k| num(k, "flowpath_speedup"));
        match (rate_off, flow_speedup) {
            (Some(rate_off), Some(flow_speedup)) if rate_off > 0.0 => {
                if !close(flow_speedup, rate / rate_off) {
                    rep.fail(
                        file,
                        format!(
                            "kernel {name}: flowpath_speedup {flow_speedup} != \
                             rate quotient {:.3}",
                            rate / rate_off
                        ),
                    );
                }
                if !smoke && flow_speedup < FLOWPATH_FLOOR {
                    rep.fail(
                        file,
                        format!(
                            "kernel {name}: flowpath_speedup {flow_speedup:.3} below \
                             the {FLOWPATH_FLOOR} floor"
                        ),
                    );
                }
            }
            _ => rep.fail(
                file,
                format!("kernel {name}: missing/invalid flow-path columns"),
            ),
        }
        // The program-lowering columns, with the same quotient identity
        // and (non-smoke) a floor: a real win where dispatch is the
        // workload, neutrality-at-worst where memory movement is.
        let dense = DENSE_COMPUTE_KERNELS.contains(&name.as_str());
        let rate_interp = entry.and_then(|k| num(k, "cycles_per_sec_lowered_off"));
        let lowered_speedup = entry.and_then(|k| num(k, "lowered_speedup"));
        match (rate_interp, lowered_speedup) {
            (Some(rate_interp), Some(lowered_speedup)) if rate_interp > 0.0 => {
                if !close(lowered_speedup, rate / rate_interp) {
                    rep.fail(
                        file,
                        format!(
                            "kernel {name}: lowered_speedup {lowered_speedup} != \
                             rate quotient {:.3}",
                            rate / rate_interp
                        ),
                    );
                }
                let floor = if dense {
                    LOWERED_FLOOR
                } else {
                    LOWERED_NEUTRAL_FLOOR
                };
                if !smoke && lowered_speedup < floor {
                    rep.fail(
                        file,
                        format!(
                            "kernel {name}: lowered_speedup {lowered_speedup:.3} below \
                             the {floor} floor"
                        ),
                    );
                }
            }
            _ => rep.fail(
                file,
                format!("kernel {name}: missing/invalid program-lowering columns"),
            ),
        }
        let claimed = entry.and_then(|k| num(k, "speedup_vs_baseline"));
        let Some(claimed) = claimed else {
            // Smoke/rebased artifacts record the current build as their
            // own baseline and omit the speedup field.
            if !smoke {
                rep.fail(file, format!("kernel {name}: missing speedup_vs_baseline"));
            }
            continue;
        };
        if !close(claimed, rate / base_rate) {
            rep.fail(
                file,
                format!(
                    "kernel {name}: speedup_vs_baseline {claimed} != rate quotient {:.3}",
                    rate / base_rate
                ),
            );
        }
        if smoke {
            continue;
        }
        if claimed < HOTPATH_FLOOR {
            rep.fail(
                file,
                format!(
                    "kernel {name}: speedup_vs_baseline {claimed:.3} below the \
                     {HOTPATH_FLOOR} regression floor"
                ),
            );
        }
        if dense && claimed < CUMULATIVE_FLOOR {
            rep.fail(
                file,
                format!(
                    "kernel {name}: cumulative speedup_vs_baseline {claimed:.3} below \
                     the {CUMULATIVE_FLOOR} headline floor"
                ),
            );
        }
    }
    if smoke {
        rep.gates_skipped.push(file);
    }
}

fn check_simspeed(rep: &mut Report) {
    let file = "BENCH_simspeed.json";
    let Some(doc) = load(rep, file) else { return };
    let Some(smoke) = doc.get("smoke").and_then(Value::as_bool) else {
        rep.fail(file, "missing boolean smoke field".into());
        return;
    };
    let Some(experiments) = doc.get("experiments").and_then(Value::as_arr) else {
        rep.fail(file, "missing experiments array".into());
        return;
    };
    if experiments.is_empty() {
        rep.fail(file, "no experiments".into());
    }
    for (i, e) in experiments.iter().enumerate() {
        let name = e.get("name").and_then(Value::as_str);
        let cycles = e.get("simulated_cycles").and_then(Value::as_u64);
        let (off_w, on_w) = (num(e, "wall_seconds_off"), num(e, "wall_seconds_on"));
        let (off_r, on_r) = (num(e, "cycles_per_sec_off"), num(e, "cycles_per_sec_on"));
        let speedup = num(e, "speedup");
        let (
            Some(name),
            Some(cycles),
            Some(off_w),
            Some(on_w),
            Some(off_r),
            Some(on_r),
            Some(speedup),
        ) = (name, cycles, off_w, on_w, off_r, on_r, speedup)
        else {
            rep.fail(file, format!("experiments[{i}]: missing/mistyped field"));
            continue;
        };
        if off_w <= 0.0 || on_w <= 0.0 || cycles == 0 {
            rep.fail(file, format!("experiment {name}: non-positive measurement"));
            continue;
        }
        for (label, rate, wall) in [("off", off_r, off_w), ("on", on_r, on_w)] {
            if !close(rate, cycles as f64 / wall) {
                rep.fail(
                    file,
                    format!(
                        "experiment {name}: cycles_per_sec_{label} {rate} != \
                         simulated_cycles/wall_seconds_{label} {:.1}",
                        cycles as f64 / wall
                    ),
                );
            }
        }
        if !close(speedup, off_w / on_w) {
            rep.fail(
                file,
                format!(
                    "experiment {name}: speedup {speedup} != wall-seconds quotient {:.3}",
                    off_w / on_w
                ),
            );
        }
        if smoke {
            continue;
        }
        let floor = if name == "barrier_storm" {
            FF_STORM_FLOOR
        } else {
            FF_OTHER_FLOOR
        };
        if speedup < floor {
            rep.fail(
                file,
                format!("experiment {name}: speedup {speedup:.3} below the {floor} floor"),
            );
        }
    }
    if smoke {
        rep.gates_skipped.push(file);
    }
    check_chunked(rep, file, &doc);
}

/// The `chunked` section of `BENCH_simspeed.json`: per-thread-count
/// timings of the parallel engine's automatic lookahead chunking against
/// its per-cycle barrier hatch, written by `parallel_scaling`. It
/// carries its own `smoke` flag — the section is spliced in by a
/// different binary than the surrounding document, so their run sizes
/// are independent.
fn check_chunked(rep: &mut Report, file: &'static str, doc: &Value) {
    let Some(section) = doc.get("chunked") else {
        rep.fail(
            file,
            "missing chunked section (run parallel_scaling to regenerate)".into(),
        );
        return;
    };
    let Some(smoke) = section.get("smoke").and_then(Value::as_bool) else {
        rep.fail(file, "chunked: missing boolean smoke field".into());
        return;
    };
    let Some(rows) = section.get("rows").and_then(Value::as_arr) else {
        rep.fail(file, "chunked: missing rows array".into());
        return;
    };
    if rows.is_empty() {
        rep.fail(file, "chunked: no rows".into());
    }
    let mut gated_dense = false;
    for (i, r) in rows.iter().enumerate() {
        let workload = r.get("workload").and_then(Value::as_str);
        let threads = r.get("threads").and_then(Value::as_u64);
        let workers = r.get("workers").and_then(Value::as_u64);
        let cycles = r.get("simulated_cycles").and_then(Value::as_u64);
        let (pc_w, ch_w) = (
            num(r, "wall_seconds_percycle"),
            num(r, "wall_seconds_chunked"),
        );
        let (pc_r, ch_r) = (
            num(r, "cycles_per_sec_percycle"),
            num(r, "cycles_per_sec_chunked"),
        );
        let per_worker = num(r, "cycles_per_sec_per_worker");
        let speedup = num(r, "chunked_speedup");
        let (
            Some(workload),
            Some(threads),
            Some(workers),
            Some(cycles),
            Some(pc_w),
            Some(ch_w),
            Some(pc_r),
            Some(ch_r),
            Some(per_worker),
            Some(speedup),
        ) = (
            workload, threads, workers, cycles, pc_w, ch_w, pc_r, ch_r, per_worker, speedup,
        )
        else {
            rep.fail(file, format!("chunked.rows[{i}]: missing/mistyped field"));
            continue;
        };
        if pc_w <= 0.0 || ch_w <= 0.0 || cycles == 0 || workers == 0 {
            rep.fail(
                file,
                format!("chunked {workload}@{threads}: non-positive measurement"),
            );
            continue;
        }
        for (label, rate, wall) in [("percycle", pc_r, pc_w), ("chunked", ch_r, ch_w)] {
            if !close(rate, cycles as f64 / wall) {
                rep.fail(
                    file,
                    format!(
                        "chunked {workload}@{threads}: cycles_per_sec_{label} {rate} != \
                         simulated_cycles/wall_seconds_{label} {:.1}",
                        cycles as f64 / wall
                    ),
                );
            }
        }
        if !close(per_worker, ch_r / workers as f64) {
            rep.fail(
                file,
                format!(
                    "chunked {workload}@{threads}: cycles_per_sec_per_worker {per_worker} != \
                     cycles_per_sec_chunked/workers {:.1}",
                    ch_r / workers as f64
                ),
            );
        }
        if !close(speedup, pc_w / ch_w) {
            rep.fail(
                file,
                format!(
                    "chunked {workload}@{threads}: chunked_speedup {speedup} != \
                     wall-seconds quotient {:.3}",
                    pc_w / ch_w
                ),
            );
        }
        if smoke {
            continue;
        }
        let dense = DENSE_COMPUTE_KERNELS.contains(&workload);
        let floor = if dense && threads >= 4 {
            gated_dense = true;
            CHUNKED_FLOOR
        } else {
            CHUNKED_NEUTRAL_FLOOR
        };
        if speedup < floor {
            rep.fail(
                file,
                format!(
                    "chunked {workload}@{threads}: chunked_speedup {speedup:.3} below \
                     the {floor} floor"
                ),
            );
        }
    }
    if smoke {
        rep.gates_skipped.push("BENCH_simspeed.json (chunked)");
    } else if !gated_dense && !rows.is_empty() {
        rep.fail(
            file,
            format!(
                "chunked: no dense-kernel row at >= 4 threads — nothing enforces \
                 the {CHUNKED_FLOOR} chunking floor"
            ),
        );
    }
}

fn check_resilience(rep: &mut Report) {
    let file = "BENCH_resilience.json";
    let Some(doc) = load(rep, file) else { return };
    let n = doc.get("n").and_then(Value::as_u64);
    let Some(n) = n else {
        rep.fail(file, "missing integer n field".into());
        return;
    };
    let smoke = n < 128; // the full study runs rank-64 at n = 128
    let Some(rows) = doc.get("rows").and_then(Value::as_arr) else {
        rep.fail(file, "missing rows array".into());
        return;
    };
    if rows.is_empty() {
        rep.fail(file, "no rows".into());
    }
    // Collect clean baselines per workload for slowdown cross-checks.
    let clean_cycles = |workload: &str| -> Option<u64> {
        rows.iter()
            .find(|r| {
                r.get("workload").and_then(Value::as_str) == Some(workload)
                    && r.get("scenario").and_then(Value::as_str) == Some("clean")
            })
            .and_then(|r| r.get("cycles").and_then(Value::as_u64))
    };
    for (i, r) in rows.iter().enumerate() {
        let workload = r.get("workload").and_then(Value::as_str);
        let scenario = r.get("scenario").and_then(Value::as_str);
        let completed = r.get("completed").and_then(Value::as_bool);
        let outcome = r.get("outcome").and_then(Value::as_str);
        let cycles = r.get("cycles").and_then(Value::as_u64);
        let slowdown = num(r, "slowdown");
        let (
            Some(workload),
            Some(scenario),
            Some(completed),
            Some(outcome),
            Some(cycles),
            Some(slowdown),
        ) = (workload, scenario, completed, outcome, cycles, slowdown)
        else {
            rep.fail(file, format!("rows[{i}]: missing/mistyped field"));
            continue;
        };
        for key in ["drops", "nacks", "retries", "timeouts", "prefetch_retries"] {
            if r.get(key).and_then(Value::as_u64).is_none() {
                rep.fail(file, format!("row {workload}/{scenario}: bad {key}"));
            }
        }
        if scenario == "clean" {
            let traffic: u64 = ["drops", "nacks", "retries", "timeouts"]
                .iter()
                .filter_map(|k| r.get(k).and_then(Value::as_u64))
                .sum();
            if traffic != 0 {
                rep.fail(
                    file,
                    format!("row {workload}/clean: reports recovery traffic"),
                );
            }
        }
        if completed {
            if cycles == 0 {
                rep.fail(
                    file,
                    format!("row {workload}/{scenario}: completed with zero cycles"),
                );
            }
            if let Some(clean) = clean_cycles(workload) {
                if clean > 0 && !close(slowdown, cycles as f64 / clean as f64) {
                    rep.fail(
                        file,
                        format!(
                            "row {workload}/{scenario}: slowdown {slowdown} != \
                             cycles quotient {:.4}",
                            cycles as f64 / clean as f64
                        ),
                    );
                }
            }
        }
        if smoke {
            continue;
        }
        if !completed || outcome != "ok" {
            rep.fail(
                file,
                format!("row {workload}/{scenario}: outcome {outcome:?} (completed = {completed})"),
            );
        }
        if slowdown > RESILIENCE_SLOWDOWN_CEIL {
            rep.fail(
                file,
                format!(
                    "row {workload}/{scenario}: slowdown {slowdown:.2}x above the \
                     {RESILIENCE_SLOWDOWN_CEIL}x ceiling"
                ),
            );
        }
    }
    if smoke {
        rep.gates_skipped.push(file);
    }
}

fn check_crash_resume(rep: &mut Report) {
    let file = "BENCH_crash_resume.json";
    let Some(doc) = load(rep, file) else { return };
    if doc.get("smoke").and_then(Value::as_bool).is_none() {
        rep.fail(file, "missing boolean smoke field".into());
        return;
    }
    let Some(points) = doc.get("points").and_then(Value::as_arr) else {
        rep.fail(file, "missing points array".into());
        return;
    };
    if points.is_empty() {
        rep.fail(file, "no points".into());
    }
    // The matrix the file must cover: both kill modes at both engine
    // shapes (serial 1-thread, chunked 4-thread).
    let mut covered: Vec<(String, u64)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let mode = p.get("mode").and_then(Value::as_str);
        let threads = p.get("threads").and_then(Value::as_u64);
        let baseline = p.get("baseline_cycles").and_then(Value::as_u64);
        let resumed = p.get("resumed_cycles").and_then(Value::as_u64);
        let digest = p.get("digest_match").and_then(Value::as_bool);
        let stats = p.get("stats_match").and_then(Value::as_bool);
        let (Some(mode), Some(threads), Some(baseline), Some(resumed), Some(digest), Some(stats)) =
            (mode, threads, baseline, resumed, digest, stats)
        else {
            rep.fail(file, format!("points[{i}]: missing/mistyped field"));
            continue;
        };
        covered.push((mode.to_string(), threads));
        if baseline == 0 {
            rep.fail(
                file,
                format!("point {mode}@{threads}: zero baseline cycles"),
            );
        }
        // Bit-identity is workload-size-independent, so these gates
        // apply to smoke artifacts too.
        if resumed != baseline {
            rep.fail(
                file,
                format!(
                    "point {mode}@{threads}: resumed run took {resumed} cycles, \
                     uninterrupted took {baseline}"
                ),
            );
        }
        if !digest {
            rep.fail(
                file,
                format!("point {mode}@{threads}: memory digest mismatch after resume"),
            );
        }
        if !stats {
            rep.fail(
                file,
                format!("point {mode}@{threads}: stats tree mismatch after resume"),
            );
        }
    }
    for mode in ["in-process", "sigkill"] {
        for threads in [1u64, 4] {
            if !covered.iter().any(|(m, t)| m == mode && *t == threads) {
                rep.fail(
                    file,
                    format!("missing coverage: no {mode} point at {threads} thread(s)"),
                );
            }
        }
    }
}

/// One-line summary per file for the default (no `--check`) mode.
fn summarize() {
    for file in [
        "BENCH_hotpath.json",
        "BENCH_simspeed.json",
        "BENCH_resilience.json",
        "BENCH_crash_resume.json",
    ] {
        let Ok(text) = std::fs::read_to_string(file) else {
            println!("{file:<24} (missing)");
            continue;
        };
        let Ok(doc) = parse(&text) else {
            println!("{file:<24} (malformed)");
            continue;
        };
        match file {
            "BENCH_hotpath.json" => {
                let speedups: Vec<String> = doc
                    .get("current")
                    .and_then(|c| c.get("kernels"))
                    .and_then(Value::as_arr)
                    .map(|ks| {
                        ks.iter()
                            .filter_map(|k| {
                                let flow = num(k, "flowpath_speedup")
                                    .map_or(String::new(), |f| format!(" (flow {f:.2}x)"));
                                let lower = num(k, "lowered_speedup")
                                    .map_or(String::new(), |l| format!(" (lower {l:.2}x)"));
                                Some(format!(
                                    "{} {:.2}x{flow}{lower}",
                                    k.get("name")?.as_str()?,
                                    num(k, "speedup_vs_baseline")?
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                println!("{file:<24} {}", speedups.join(", "));
            }
            "BENCH_simspeed.json" => {
                let speedups: Vec<String> = doc
                    .get("experiments")
                    .and_then(Value::as_arr)
                    .map(|es| {
                        es.iter()
                            .filter_map(|e| {
                                Some(format!(
                                    "{} {:.2}x",
                                    e.get("name")?.as_str()?,
                                    num(e, "speedup")?
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                println!("{file:<24} fast-forward: {}", speedups.join(", "));
                let chunked: Vec<String> = doc
                    .get("chunked")
                    .and_then(|c| c.get("rows"))
                    .and_then(Value::as_arr)
                    .map(|rs| {
                        rs.iter()
                            .filter_map(|r| {
                                Some(format!(
                                    "{}@{} {:.2}x",
                                    r.get("workload")?.as_str()?,
                                    r.get("threads")?.as_u64()?,
                                    num(r, "chunked_speedup")?
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if !chunked.is_empty() {
                    println!("{:<24} chunked:      {}", "", chunked.join(", "));
                }
            }
            "BENCH_crash_resume.json" => {
                let pts = doc.get("points").and_then(Value::as_arr);
                let total = pts.map_or(0, <[Value]>::len);
                let ok = pts.map_or(0, |ps| {
                    ps.iter()
                        .filter(|p| {
                            p.get("digest_match").and_then(Value::as_bool) == Some(true)
                                && p.get("stats_match").and_then(Value::as_bool) == Some(true)
                        })
                        .count()
                });
                println!("{file:<24} {ok}/{total} points bit-identical");
            }
            _ => {
                let rows = doc
                    .get("rows")
                    .and_then(Value::as_arr)
                    .map_or(0, <[Value]>::len);
                let ok = doc.get("rows").and_then(Value::as_arr).map_or(0, |rs| {
                    rs.iter()
                        .filter(|r| r.get("outcome").and_then(Value::as_str) == Some("ok"))
                        .count()
                });
                println!("{file:<24} {ok}/{rows} rows ok");
            }
        }
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if !check {
        summarize();
        return;
    }
    let mut rep = Report {
        findings: Vec::new(),
        gates_skipped: Vec::new(),
    };
    check_hotpath(&mut rep);
    check_simspeed(&mut rep);
    check_resilience(&mut rep);
    check_crash_resume(&mut rep);
    for file in &rep.gates_skipped {
        eprintln!("note: {file} is a smoke artifact; regression gates skipped");
    }
    if rep.findings.is_empty() {
        eprintln!("bench history: all artifacts valid, no unexplained regressions");
        return;
    }
    for f in &rep.findings {
        eprintln!("FAIL {}: {}", f.file, f.msg);
    }
    eprintln!("bench history: {} finding(s)", rep.findings.len());
    std::process::exit(1);
}

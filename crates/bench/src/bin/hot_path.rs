//! Busy-cycle throughput: simulated cycles per wall second on dense
//! kernels with fast-forward disabled.
//!
//! The event-horizon fast-forward (PR 3) made quiescent time nearly free,
//! so the remaining simulator-performance frontier is the busy cycle: the
//! per-tick cost when every subsystem is active. This bin pins that cost
//! on the paper's dense memory-system kernels — the rank-64 update (cache
//! and prefetch versions), the staged CG iteration and the banded
//! matrix–vector multiply — run cycle-by-cycle (fast-forward off via
//! config, so the numbers measure the tick loop, not the skip path).
//!
//! Results go to `BENCH_hotpath.json`. The file carries two sections:
//! `baseline` (the pre-overhaul tick loop, recorded once with `--rebase`)
//! and `current` (this build). Because the hot-path overhaul is bit-for-bit
//! invisible, the simulated cycle counts in both sections must be
//! identical — the bin asserts zero drift against the recorded baseline —
//! while the wall-clock columns show what the overhaul bought.
//!
//! Each `current` kernel also times the per-flit oracle sweep (flow-level
//! network fast path off) on the same workload, asserting bit-identical
//! cycles and memory digests across the two paths, and records
//! `cycles_per_sec_flowpath_off` plus the quotient `flowpath_speedup` —
//! what the flow path alone contributes on top of the other overhauls.
//! A third timed leg disables program lowering (the tree-walking
//! interpreter instead of flat micro-op streams), asserts the same
//! bit-identity, and records `cycles_per_sec_lowered_off` plus
//! `lowered_speedup` — what the lowering pipeline alone contributes.
//!
//! `--smoke` shrinks the workloads for CI and additionally runs every
//! kernel on both the serial engine and the 4-thread parallel engine,
//! asserting identical cycles and memory digests (zero simulated-cycle
//! drift vs the serial reference). Wall-clock numbers are reported, never
//! asserted, so CI stays flake-free.

use std::time::Instant;

use cedar_kernels::staged::banded::BandedMatvec;
use cedar_kernels::staged::cg::StagedCg;
use cedar_kernels::staged::rank64::{effective_peak_program, Rank64, Rank64Version};
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::Program;
use cedar_machine::MachineConfig;

/// Builds a kernel's per-CE programs against a fresh machine.
type ProgramBuilder = Box<dyn Fn(&mut Machine) -> Vec<(CeId, Program)>>;

/// A dense kernel the study drives, as a builder of per-CE programs.
struct Workload {
    name: &'static str,
    /// Timed repetitions (fixed per profile so total simulated cycles are
    /// reproducible; full-mode counts give each kernel several wall
    /// seconds).
    reps: u32,
    build: ProgramBuilder,
}

/// One kernel's timed run.
struct Measurement {
    name: &'static str,
    simulated_cycles: u64,
    wall_seconds: f64,
    /// Wall seconds for the same workload with the flow-level network
    /// fast path off (the per-flit oracle sweep), extrapolated to the
    /// same repetition count. `None` for re-emitted baseline entries,
    /// which predate the flow path.
    flowpath_off_wall_seconds: Option<f64>,
    /// Wall seconds for the same workload with program lowering off
    /// (the tree-walking interpreter), extrapolated to the same
    /// repetition count. `None` for re-emitted baseline entries, which
    /// predate the lowering pipeline.
    lowered_off_wall_seconds: Option<f64>,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_seconds.max(1e-9)
    }

    /// What the flow path buys on this kernel: oracle wall over flow-path
    /// wall (equivalently the rate quotient, since the cycle counts are
    /// identical by construction).
    fn flowpath_speedup(&self) -> Option<f64> {
        self.flowpath_off_wall_seconds
            .map(|off| off / self.wall_seconds.max(1e-9))
    }

    /// What program lowering buys on this kernel: interpreter wall over
    /// lowered wall.
    fn lowered_speedup(&self) -> Option<f64> {
        self.lowered_off_wall_seconds
            .map(|off| off / self.wall_seconds.max(1e-9))
    }

    fn json(&self, speedup: Option<f64>) -> String {
        let speedup_field = match speedup {
            Some(s) => format!(",\n        \"speedup_vs_baseline\": {s:.3}"),
            None => String::new(),
        };
        let flow_fields = match self.flowpath_off_wall_seconds {
            Some(off) => format!(
                concat!(
                    ",\n        \"cycles_per_sec_flowpath_off\": {:.1},\n",
                    "        \"flowpath_speedup\": {:.3}"
                ),
                self.simulated_cycles as f64 / off.max(1e-9),
                self.flowpath_speedup().unwrap_or(0.0),
            ),
            None => String::new(),
        };
        let lower_fields = match self.lowered_off_wall_seconds {
            Some(off) => format!(
                concat!(
                    ",\n        \"cycles_per_sec_lowered_off\": {:.1},\n",
                    "        \"lowered_speedup\": {:.3}"
                ),
                self.simulated_cycles as f64 / off.max(1e-9),
                self.lowered_speedup().unwrap_or(0.0),
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "      {{\n",
                "        \"name\": \"{}\",\n",
                "        \"simulated_cycles\": {},\n",
                "        \"wall_seconds\": {:.6},\n",
                "        \"cycles_per_sec\": {:.1}{}{}{}\n",
                "      }}"
            ),
            self.name,
            self.simulated_cycles,
            self.wall_seconds,
            self.cycles_per_sec(),
            flow_fields,
            lower_fields,
            speedup_field,
        )
    }
}

/// A kernel entry parsed back out of an existing `BENCH_hotpath.json`.
struct BaselineEntry {
    name: String,
    simulated_cycles: u64,
    wall_seconds: f64,
    cycles_per_sec: f64,
}

/// The dense-kernel profile. `smoke` shrinks every size for CI.
fn workloads(smoke: bool) -> Vec<Workload> {
    let clusters = 4;
    let rank_n: u32 = if smoke { 64 } else { 128 };
    let cg_n: u64 = if smoke { 2_048 } else { 16_384 };
    let banded_n: u64 = if smoke { 2_048 } else { 16_384 };
    let reps = |full: u32| if smoke { 1 } else { full };
    vec![
        Workload {
            name: "rank64_gm_cache",
            reps: reps(25),
            build: Box::new(move |m| {
                Rank64 {
                    n: rank_n,
                    k: 64,
                    version: Rank64Version::GmCache,
                }
                .build(m, clusters)
            }),
        },
        Workload {
            name: "rank64_gm_prefetch",
            reps: reps(8),
            build: Box::new(move |m| {
                Rank64 {
                    n: rank_n,
                    k: 64,
                    version: Rank64Version::GmPrefetch { block_words: 32 },
                }
                .build(m, clusters)
            }),
        },
        Workload {
            // The paper's effective-peak calibration: every CE runs the
            // register-only rank-64 inner loops (no memory operands), so
            // the busy cycle is pure CE issue and dispatch — the
            // component program lowering targets. The memory-bound
            // kernels above converge across the lowering hatch (their
            // wall clock is network and module movement, identical on
            // both paths); this row is where the lowered floor is gated.
            name: "rank64_peak",
            reps: reps(6),
            build: Box::new(move |m| {
                let ces = 4 * m.config().ces_per_cluster;
                (0..ces)
                    .map(|ce| (CeId(ce), effective_peak_program(rank_n, 64)))
                    .collect()
            }),
        },
        Workload {
            name: "cg_iteration",
            reps: reps(8),
            build: Box::new(move |m| StagedCg::new(cg_n).build(m, clusters * 8)),
        },
        Workload {
            name: "banded_bw11",
            reps: reps(12),
            build: Box::new(move |m| BandedMatvec::new(banded_n, 11).build(m, clusters)),
        },
    ]
}

/// Run one workload cycle-by-cycle on `threads` simulation threads with
/// the flow-level network fast path and program lowering on or off,
/// returning the fingerprint the drift assertions compare.
fn run_workload(w: &Workload, threads: usize, flow: bool, lowered: bool) -> (u64, u64, u64) {
    let cfg = MachineConfig::cedar_with_clusters(4)
        .with_threads(threads)
        .with_fast_forward(false)
        .with_flow_path(flow)
        .with_lowered(lowered);
    let mut m = Machine::new(cfg).expect("cedar config");
    let progs = (w.build)(&mut m);
    let r = m.run(progs, 2_000_000_000).expect("kernel run");
    (r.cycles, r.flops, m.memory_digest())
}

fn measure(w: &Workload, smoke: bool) -> Measurement {
    eprintln!("  {}: serial cycle-by-cycle x{}...", w.name, w.reps);
    let mut cycles = 0;
    let mut reference = (0, 0, 0);
    let mut best = f64::INFINITY;
    for _ in 0..w.reps {
        let t = Instant::now();
        reference = run_workload(w, 1, true, true);
        cycles += reference.0;
        best = best.min(t.elapsed().as_secs_f64());
    }
    // Time the per-flit oracle (flow path off) on the same workload.
    // Fewer repetitions suffice: the min-of-reps estimator converges
    // fast, and the flowpath_speedup column is informational while the
    // cross-path cycle/digest identity below is the hard assertion.
    let off_reps = if smoke { 1 } else { (w.reps / 4).max(2) };
    eprintln!("  {}: per-flit oracle x{off_reps}...", w.name);
    let mut best_off = f64::INFINITY;
    for _ in 0..off_reps {
        let t = Instant::now();
        let oracle = run_workload(w, 1, false, true);
        best_off = best_off.min(t.elapsed().as_secs_f64());
        assert_eq!(
            reference, oracle,
            "{}: flow path drifted from the per-flit oracle",
            w.name
        );
    }
    // Time the tree-walking interpreter (lowering off) on the same
    // workload, with the same hard cross-path identity assertion.
    eprintln!("  {}: interpreter x{off_reps}...", w.name);
    let mut best_interp = f64::INFINITY;
    for _ in 0..off_reps {
        let t = Instant::now();
        let interp = run_workload(w, 1, true, false);
        best_interp = best_interp.min(t.elapsed().as_secs_f64());
        assert_eq!(
            reference, interp,
            "{}: lowered streams drifted from the interpreter",
            w.name
        );
    }
    // Report the best (least-interfered) repetition extrapolated to all
    // reps: on a shared host the minimum is the standard noise-resistant
    // estimator of what the simulator can actually sustain.
    Measurement {
        name: w.name,
        simulated_cycles: cycles,
        wall_seconds: best * f64::from(w.reps),
        flowpath_off_wall_seconds: Some(best_off * f64::from(w.reps)),
        lowered_off_wall_seconds: Some(best_interp * f64::from(w.reps)),
    }
}

/// Extract the `"baseline": { ... }` object from a previous run's JSON
/// (the emitter's layout is fixed, so brace matching suffices).
fn baseline_section(json: &str) -> Option<&str> {
    let start = json.find("\"baseline\": {")?;
    let open = start + "\"baseline\": ".len();
    let bytes = json.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse kernel entries out of a baseline section. Field layout matches
/// the emitter in [`Measurement::json`].
fn parse_baseline(section: &str) -> Vec<BaselineEntry> {
    fn field<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
        let at = chunk.find(key)? + key.len();
        let rest = &chunk[at..];
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }
    let mut out = Vec::new();
    for chunk in section.split("\"name\":").skip(1) {
        let name = chunk.split('"').nth(1).unwrap_or_default().to_string();
        let cycles = field(chunk, "\"simulated_cycles\":").and_then(|v| v.parse().ok());
        let wall = field(chunk, "\"wall_seconds\":").and_then(|v| v.parse().ok());
        let cps = field(chunk, "\"cycles_per_sec\":").and_then(|v| v.parse().ok());
        if let (Some(simulated_cycles), Some(wall_seconds), Some(cycles_per_sec)) =
            (cycles, wall, cps)
        {
            out.push(BaselineEntry {
                name,
                simulated_cycles,
                wall_seconds,
                cycles_per_sec,
            });
        }
    }
    out
}

fn section_json(label: &str, body: &[String]) -> String {
    format!(
        "{{\n    \"label\": \"{label}\",\n    \"kernels\": [\n{}\n    ]\n  }}",
        body.join(",\n")
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebase = args.iter().any(|a| a == "--rebase");
    // `--only <name>` measures a single kernel and skips the JSON
    // rewrite: an iteration loop for profiling sessions.
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "busy-cycle throughput study (smoke = {smoke}, rebase = {rebase}, \
         host parallelism = {host}, fast-forward off)"
    );

    let baseline: Vec<BaselineEntry> = if rebase || smoke {
        Vec::new()
    } else {
        std::fs::read_to_string("BENCH_hotpath.json")
            .ok()
            .as_deref()
            .and_then(baseline_section)
            .map(parse_baseline)
            .unwrap_or_default()
    };

    let mut measurements = Vec::new();
    for w in workloads(smoke) {
        if only.as_deref().is_some_and(|o| o != w.name) {
            continue;
        }
        let m = measure(&w, smoke);
        if smoke {
            // Zero simulated-cycle drift vs the serial reference: the
            // parallel engine must produce the identical run.
            eprintln!("  {}: 4-thread drift check...", w.name);
            let serial = run_workload(&w, 1, true, true);
            let parallel = run_workload(&w, 4, true, true);
            assert_eq!(
                serial, parallel,
                "{}: parallel engine drifted from the serial reference",
                w.name
            );
            assert_eq!(
                m.simulated_cycles, serial.0,
                "{}: repeated serial runs disagree",
                w.name
            );
        }
        if let Some(b) = baseline.iter().find(|b| b.name == m.name) {
            assert_eq!(
                b.simulated_cycles, m.simulated_cycles,
                "{}: simulated cycles drifted from the recorded baseline \
                 (the hot-path overhaul must be bit-for-bit invisible)",
                m.name
            );
        }
        measurements.push(m);
    }

    println!(
        "{:<20} {:>14} {:>10} {:>14} {:>14} {:>8} {:>8} {:>8}",
        "kernel", "sim cycles", "wall (s)", "cyc/s", "base cyc/s", "speedup", "flow x", "lower x"
    );
    let mut current_json = Vec::new();
    let mut baseline_json = Vec::new();
    for m in &measurements {
        let base = baseline.iter().find(|b| b.name == m.name);
        let speedup = base.map(|b| m.cycles_per_sec() / b.cycles_per_sec.max(1e-9));
        println!(
            "{:<20} {:>14} {:>10.3} {:>14.0} {:>14} {:>8} {:>8} {:>8}",
            m.name,
            m.simulated_cycles,
            m.wall_seconds,
            m.cycles_per_sec(),
            base.map_or("-".into(), |b| format!("{:.0}", b.cycles_per_sec)),
            speedup.map_or("-".into(), |s| format!("{s:.2}x")),
            m.flowpath_speedup()
                .map_or("-".into(), |s| format!("{s:.2}x")),
            m.lowered_speedup()
                .map_or("-".into(), |s| format!("{s:.2}x")),
        );
        current_json.push(m.json(speedup));
        if let Some(b) = base {
            baseline_json.push(
                Measurement {
                    name: m.name,
                    simulated_cycles: b.simulated_cycles,
                    wall_seconds: b.wall_seconds,
                    flowpath_off_wall_seconds: None,
                    lowered_off_wall_seconds: None,
                }
                .json(None),
            );
        }
    }
    // With --rebase (or a missing/smoke baseline) the current build
    // becomes the recorded reference for future runs.
    let baseline_label = if baseline_json.is_empty() {
        baseline_json = measurements.iter().map(|m| m.json(None)).collect();
        "this build (rebased)"
    } else {
        "pre-overhaul tick loop"
    };

    if only.is_some() {
        // A profiling subset is not a coherent artifact; leave the
        // committed JSON alone.
        eprintln!("--only run: BENCH_hotpath.json left untouched");
        return Ok(());
    }
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"host_parallelism\": {host},\n  \
         \"baseline\": {},\n  \"current\": {}\n}}\n",
        section_json(baseline_label, &baseline_json),
        section_json(
            "hot-path overhaul + network flow path + program lowering",
            &current_json
        ),
    );
    std::fs::write("BENCH_hotpath.json", json)?;
    eprintln!("wrote BENCH_hotpath.json");
    Ok(())
}

//! Run every table and figure in sequence (the full evaluation).

use cedar::experiments::{fig3, suite::PerfectSuite, table3, table4, table5, table6};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = if cedar_bench::quick() { 128 } else { 256 };
    eprintln!("[1/4] Table 1...");
    println!("{}", cedar::experiments::table1::run(n)?.render());
    eprintln!("[2/4] Table 2...");
    println!("{}", cedar::experiments::table2::run()?.render());
    eprintln!("[3/4] Perfect suite (Tables 3-6, Fig. 3)...");
    let suite = PerfectSuite::measure(4)?;
    println!("{}", table3::run(&suite).render());
    println!("{}", table4::run(&suite).render());
    println!("{}", table5::run(&suite).render());
    println!("{}", table6::run(&suite).render());
    println!("{}", fig3::run(&suite).render());
    eprintln!("[4/4] PPT4 CG scalability...");
    println!("{}", cedar::experiments::ppt4::run(2)?.render());
    Ok(())
}

//! Regenerate the resilience study: Table 1 bandwidth kernels and one
//! Perfect code under deterministic fault injection, with recovery
//! traffic and slowdown per fault scenario. Writes
//! `BENCH_resilience.json` with one record per sweep point.
//!
//! `--smoke` shrinks the workloads for CI and validates the output
//! schema: every (workload, scenario) point present, every clean
//! baseline completed with zero recovery traffic.

use cedar::experiments::resilience::{self, Resilience, Scenario, Workload};

const SEED: u64 = 0xCEDA_0001;

fn json(r: &Resilience) -> String {
    let mut out = String::from("{\n  \"experiment\": \"resilience\",\n");
    out.push_str(&format!("  \"n\": {},\n  \"seed\": {},\n", r.n, r.seed));
    out.push_str("  \"rows\": [\n");
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"workload\": \"{}\",\n",
                    "      \"scenario\": \"{}\",\n",
                    "      \"completed\": {},\n",
                    "      \"outcome\": \"{}\",\n",
                    "      \"cycles\": {},\n",
                    "      \"slowdown\": {:.4},\n",
                    "      \"drops\": {},\n",
                    "      \"nacks\": {},\n",
                    "      \"retries\": {},\n",
                    "      \"timeouts\": {},\n",
                    "      \"prefetch_retries\": {},\n",
                    "      \"retry_p50\": {},\n",
                    "      \"retry_p95\": {},\n",
                    "      \"retry_p99\": {}\n",
                    "    }}"
                ),
                row.workload,
                row.scenario,
                row.completed,
                row.outcome,
                row.cycles,
                row.slowdown,
                row.drops,
                row.nacks,
                row.retries,
                row.timeouts,
                row.prefetch_retries,
                row.retry_p50.map_or("null".to_string(), |p| p.to_string()),
                row.retry_p95.map_or("null".to_string(), |p| p.to_string()),
                row.retry_p99.map_or("null".to_string(), |p| p.to_string()),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Schema validation for CI: the sweep covered every point, and the
/// clean baselines behaved like fault-free runs.
fn validate(r: &Resilience) -> Result<(), String> {
    let scenarios = Scenario::all();
    for w in Workload::ALL {
        let mine: Vec<_> = r.rows.iter().filter(|x| x.workload == w.label()).collect();
        if mine.len() != scenarios.len() {
            return Err(format!(
                "workload {:?}: {} rows, expected {}",
                w,
                mine.len(),
                scenarios.len()
            ));
        }
        let clean = mine
            .iter()
            .find(|x| x.scenario == "clean")
            .ok_or_else(|| format!("workload {w:?}: no clean row"))?;
        if !clean.completed {
            return Err(format!("workload {w:?}: clean baseline did not complete"));
        }
        if clean.drops + clean.nacks + clean.retries + clean.timeouts != 0 {
            return Err(format!(
                "workload {w:?}: clean baseline reports recovery traffic"
            ));
        }
        if mine.iter().any(|x| x.completed && x.cycles == 0) {
            return Err(format!("workload {w:?}: completed row with zero cycles"));
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ck = cedar::experiments::ckpt::Checkpoint::from_cli(std::env::args())?;
    let n = if smoke || cedar_bench::quick() {
        64
    } else {
        128
    };
    eprintln!("running resilience study (rank-64 n = {n}, seed = {SEED:#x})...");
    let r = resilience::run_with(n, SEED, ck.as_ref())?;
    println!("{}", r.render());
    if smoke {
        validate(&r).map_err(|e| format!("schema validation failed: {e}"))?;
        eprintln!("schema validation passed ({} rows)", r.rows.len());
    }
    std::fs::write("BENCH_resilience.json", json(&r))?;
    eprintln!("wrote BENCH_resilience.json");
    Ok(())
}

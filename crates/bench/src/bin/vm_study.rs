//! The TRFD virtual-memory study (§4.2, \[MaEG92\]).
//!
//! The paper's improved TRFD showed almost four times the page faults of
//! the one-cluster version and spent close to half its time in
//! virtual-memory activity: each additional cluster first accesses pages
//! whose PTE is already valid in global memory, taking a TLB-miss fault
//! per page per cluster. The distributed-memory version — each cluster
//! touching only its own partition — removed the pathology (TRFD's final
//! 7.5 s).
//!
//! The study runs two variants with *identical* flop and word counts:
//!
//! * **shared** — pages are interleaved over the machine: every cluster
//!   touches every page once (one fault per page per cluster);
//! * **distributed** — each cluster sweeps only its contiguous quarter,
//!   four times (revisits hit the TLB).

use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::{AddressExpr, MemOperand, Op, Program, ProgramBuilder, VectorOp};
use cedar_machine::MachineConfig;

/// Pages in the swept array (each 512 words = 4 KB).
const PAGES: u64 = 2048;

fn build(clusters: usize, distributed: bool) -> (Machine, Vec<(CeId, Program)>) {
    let mut cfg = MachineConfig::cedar_with_clusters(clusters);
    cfg.vm.enabled = true;
    // Big enough to hold one cluster's quarter, far too small for the
    // whole array.
    cfg.vm.tlb_entries = 1024;
    // Demand-zero service without disk involvement.
    cfg.vm.page_fault_cycles = 3_000;
    let m = Machine::new(cfg).unwrap();
    let cpc = 8usize;
    let mut progs = Vec::new();
    for c in 0..clusters {
        for lane in 0..cpc {
            let i = c * cpc + lane;
            let mut b = ProgramBuilder::new();
            b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
            let emit_page_read = |b: &mut ProgramBuilder, base: AddressExpr| {
                b.push(Op::PrefetchArm {
                    length: 512,
                    stride: 1,
                });
                b.push(Op::PrefetchFire { base });
                // Consume the page in register-sized chunks.
                b.repeat(16, |b| {
                    b.vector(VectorOp {
                        length: 32,
                        flops_per_element: 2,
                        operand: MemOperand::Prefetched,
                    });
                });
            };
            if distributed {
                // Four passes over my cluster's contiguous quarter: page =
                // quarter_base + lane + 8t.
                let quarter = PAGES / clusters as u64;
                let base = (c as u64 * quarter + lane as u64) * 512;
                let trips = (quarter / cpc as u64) as u32;
                b.repeat(4, |b| {
                    b.repeat(trips, |b| {
                        emit_page_read(b, AddressExpr::new(base).with_coeff(1, (cpc * 512) as i64));
                    });
                });
            } else {
                // One pass over residue class lane (mod 8): every cluster
                // touches every page exactly once.
                let base = (lane as u64) * 512;
                let trips = (PAGES / cpc as u64) as u32;
                b.repeat(4, |b| {
                    // Four strided sub-passes to keep trip counts equal to
                    // the distributed variant's structure.
                    b.repeat(trips / 4, |b| {
                        emit_page_read(
                            b,
                            AddressExpr::new(base)
                                .with_coeff(0, (PAGES / 4 * 512) as i64)
                                .with_coeff(1, (cpc * 512) as i64),
                        );
                    });
                });
            }
            progs.push((CeId(i), b.build()));
        }
    }
    (m, progs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== VM study: the TRFD multicluster paging pathology (identical work per variant) ==");
    println!(
        "{:>9} {:>12} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "clusters", "variant", "cycles", "TLB misses", "hard faults", "soft faults", "vm frac"
    );
    let mut one_cluster_misses = 0u64;
    let mut four_cluster_misses = 0u64;
    for &distributed in &[false, true] {
        for clusters in [1usize, 2, 4] {
            let (mut m, progs) = build(clusters, distributed);
            let r = m.run(progs, 8_000_000_000)?;
            let tlb_misses: u64 = r.ce_stats.iter().map(|(_, s)| s.tlb_misses).sum();
            let vm_cycles: u64 = r.ce_stats.iter().map(|(_, s)| s.vm_cycles).sum();
            let frac = vm_cycles as f64 / (r.cycles as f64 * (clusters * 8) as f64);
            if !distributed && clusters == 1 {
                one_cluster_misses = tlb_misses;
            }
            if !distributed && clusters == 4 {
                four_cluster_misses = tlb_misses;
            }
            println!(
                "{:>9} {:>12} {:>10} {:>12} {:>12} {:>12} {:>9.2}",
                clusters,
                if distributed { "distributed" } else { "shared" },
                r.cycles,
                tlb_misses,
                m.page_table().hard_faults(),
                m.page_table().soft_faults(),
                frac,
            );
        }
    }
    println!();
    println!(
        "shared-variant fault ratio, 4 clusters vs 1: {:.1}x (paper: almost four times the number of page faults)",
        four_cluster_misses as f64 / one_cluster_misses.max(1) as f64
    );
    println!("distributing the data removes the per-cluster re-faulting (TRFD: 11.5 s -> 7.5 s).");
    Ok(())
}

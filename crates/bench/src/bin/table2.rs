//! Regenerate Table 2: global memory performance (prefetch first-word
//! latency and interarrival time for VL, TM, RK, CG at 8/16/32 CEs).
//!
//! `--checkpoint <dir>` auto-snapshots every simulation so an
//! interrupted table can be continued with `--resume` (see
//! `EXPERIMENTS.md`, "Crash recovery").

use cedar::experiments::table2::{run_sized_with, Table2Sizes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ck = cedar::experiments::ckpt::Checkpoint::from_cli(std::env::args())?;
    eprintln!("running Table 2 (VL, TM, RK, CG at 8/16/32 CEs)...");
    let t2 = run_sized_with(Table2Sizes::default(), ck.as_ref())?;
    println!("{}", t2.render());
    for name in ["VL", "TM", "RK", "CG"] {
        if let Some(g) = t2.latency_growth(name) {
            println!("{name}: latency grows {g:.2}x from 8 to 32 CEs");
        }
    }
    println!(
        "paper: RK degrades most (256-word blocks, aggressive overlap); VL next; TM and CG least."
    );
    Ok(())
}

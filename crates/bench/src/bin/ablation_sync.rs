//! Ablation: Cedar synchronization instructions vs Test-And-Set-only
//! loop self-scheduling, across loop granularities.
//!
//! Drives the Table 3 "without synch" column: fine-grained self-scheduled
//! loops need the one-round-trip Test-And-Operate dispatch; the lock-based
//! fallback multiplies the per-iteration cost.

use cedar_fortran::compile::Backend;
use cedar_fortran::ir::{BodyMix, DataHome, LoopNest, Phase, SourceProgram};
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_xylem::costs::XylemCosts;

fn program(vector_len: u32, trips: u64) -> SourceProgram {
    let mut src = SourceProgram::new("ablation");
    let mut ph = Phase::new("loop", 1);
    ph.loops.push(LoopNest {
        trips,
        body: BodyMix {
            vector_ops: 1,
            vector_len,
            flops_per_elem: 2,
            global_frac: 1.0,
            global_writes: 0,
            scalar_global_reads: 0,
            scalar_cycles: 8,
        },
        needs: vec![],
        parallel: true,
        vectorizable: true,
        home: DataHome::Global,
    });
    src.phases.push(ph);
    src
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ablation: Cedar synchronization vs lock-based self-scheduling ==");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>10}",
        "iter len", "trips", "with sync", "w/o sync", "slowdown"
    );
    for &(len, trips) in &[(8u32, 4096u64), (32, 2048), (128, 512), (512, 128)] {
        let src = program(len, trips);
        let compiled = Restructurer::default().restructure(&src, Level::Automatable);
        let with = Backend::new(XylemCosts::cedar()).execute(&compiled, 4, 4_000_000_000)?;
        let without =
            Backend::new(XylemCosts::cedar_without_sync()).execute(&compiled, 4, 4_000_000_000)?;
        println!(
            "{:>12} {:>10} {:>12} {:>12} {:>10.2}",
            len,
            trips,
            with.cycles,
            without.cycles,
            without.cycles as f64 / with.cycles as f64
        );
    }
    println!("\nexpected: slowdown shrinks as iterations grow (the DYFESM/OCEAN effect inverted).");
    Ok(())
}

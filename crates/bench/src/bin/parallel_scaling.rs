//! Wall-clock scaling of the parallel simulation engine.
//!
//! Reruns the Table 1 and Table 2 drivers at 1, 2 and 4 simulation
//! threads (via `CEDAR_NUM_THREADS`, the same knob CI uses), times each
//! sweep, and checks the runs are bit-identical — the engine's
//! determinism guarantee means threading is purely a wall-clock
//! optimization. Speedup over the serial engine requires actual host
//! cores: on a single-CPU host the threaded runs time-slice one core and
//! can only break even at best, so the bin reports
//! `available_parallelism` alongside the measurements.

use std::time::Instant;

const THREADS: [usize; 3] = [1, 2, 4];

fn set_threads(t: usize) {
    std::env::set_var("CEDAR_NUM_THREADS", t.to_string());
}

fn speedup_row(label: &str, times: &[f64]) {
    print!("{label:<28}");
    for (i, &s) in times.iter().enumerate() {
        print!("  {} thr: {s:7.2}s ({:4.2}x)", THREADS[i], times[0] / s);
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism available: {host}");
    if host < *THREADS.last().unwrap() {
        println!(
            "note: fewer host cores than simulation threads; expect determinism \
             but not speedup (threads time-slice {host} core(s))"
        );
    }
    println!();

    // Table 1: rank-64 update, three memory versions x four cluster
    // counts.
    let n = if cedar_bench::quick() { 64 } else { 128 };
    eprintln!("Table 1 driver (rank-64, n = {n}) at {THREADS:?} threads...");
    let mut t1_times = Vec::new();
    let mut t1_runs = Vec::new();
    for &t in &THREADS {
        set_threads(t);
        let start = Instant::now();
        t1_runs.push(cedar::experiments::table1::run(n)?);
        t1_times.push(start.elapsed().as_secs_f64());
    }
    assert!(
        t1_runs.iter().all(|r| *r == t1_runs[0]),
        "Table 1 results must be bit-identical across thread counts"
    );
    speedup_row("table1 (identical results)", &t1_times);

    // Table 2: VL/TM/RK/CG at 8/16/32 CEs.
    let sizes = if cedar_bench::quick() {
        cedar::experiments::table2::Table2Sizes {
            vl_words_per_ce: 2048,
            tm_n: 8192,
            rk_n: 64,
            cg_n: 8192,
        }
    } else {
        cedar::experiments::table2::Table2Sizes::default()
    };
    eprintln!("Table 2 driver ({sizes:?}) at {THREADS:?} threads...");
    let mut t2_times = Vec::new();
    let mut t2_runs = Vec::new();
    for &t in &THREADS {
        set_threads(t);
        let start = Instant::now();
        t2_runs.push(cedar::experiments::table2::run_sized(sizes)?);
        t2_times.push(start.elapsed().as_secs_f64());
    }
    assert!(
        t2_runs.iter().all(|r| *r == t2_runs[0]),
        "Table 2 results must be bit-identical across thread counts"
    );
    speedup_row("table2 (identical results)", &t2_times);

    let best = (t1_times[0] / t1_times[2]).max(t2_times[0] / t2_times[2]);
    println!();
    println!("best 4-thread speedup: {best:.2}x (target on a >=4-core host: >=1.5x)");
    Ok(())
}

//! Wall-clock scaling of the parallel simulation engine.
//!
//! Two studies:
//!
//! 1. **Driver scaling** — reruns the Table 1 and Table 2 drivers at 1,
//!    2 and 4 simulation threads (via `CEDAR_NUM_THREADS`, the same knob
//!    CI uses), times each sweep, and checks the runs are bit-identical —
//!    the engine's determinism guarantee means threading is purely a
//!    wall-clock optimization.
//!
//! 2. **Lookahead chunking** — times the parallel engine's per-cycle
//!    barrier hatch (`chunk_cycles = 1`) against automatic lookahead
//!    chunking (`chunk_cycles = 0`) at each thread count on a dense
//!    register-only kernel (`rank64_peak`, where the network idles and
//!    the chunk bound is the full round trip) and a memory-bound one
//!    (`rank64_gm_prefetch`, where in-flight traffic pins chunks at one
//!    cycle and chunking must simply stay neutral). Both legs must be
//!    bit-identical; the timings — including simulated cycles per second
//!    per worker, the honest "is another thread worth it" number — are
//!    appended to `BENCH_simspeed.json` as the `chunked` section, which
//!    `bench_history --check` gates (dense kernels must keep a real
//!    chunking win at 4 threads, nothing may regress past neutrality).
//!
//! The chunked comparison is meaningful even on a small host: both legs
//! run the same thread count, so oversubscription penalizes them
//! equally — in fact barrier rounds are *more* expensive oversubscribed,
//! which is exactly the cost chunking removes. Speedup over the *serial*
//! engine still requires real cores, so the bin reports
//! `available_parallelism` alongside the measurements.

use std::time::Instant;

use cedar_bench::json::{parse, Value};
use cedar_kernels::staged::rank64::{effective_peak_program, Rank64, Rank64Version};
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::Program;
use cedar_machine::MachineConfig;

const THREADS: [usize; 3] = [1, 2, 4];

fn set_threads(t: usize) {
    std::env::set_var("CEDAR_NUM_THREADS", t.to_string());
}

fn speedup_row(label: &str, times: &[f64]) {
    print!("{label:<28}");
    for (i, &s) in times.iter().enumerate() {
        print!("  {} thr: {s:7.2}s ({:4.2}x)", THREADS[i], times[0] / s);
    }
    println!();
}

/// One chunked-vs-per-cycle measurement at one thread count.
struct ChunkRow {
    workload: &'static str,
    threads: usize,
    /// Worker threads actually used (threads capped at the cluster count;
    /// 1 = the serial engine, where the chunk knob is inert and the row
    /// pins neutrality).
    workers: usize,
    simulated_cycles: u64,
    wall_percycle: f64,
    wall_chunked: f64,
}

impl ChunkRow {
    fn speedup(&self) -> f64 {
        self.wall_percycle / self.wall_chunked.max(1e-9)
    }

    fn json(&self) -> String {
        let c = self.simulated_cycles as f64;
        let rate_chunked = c / self.wall_chunked.max(1e-9);
        format!(
            concat!(
                "      {{\n",
                "        \"workload\": \"{}\",\n",
                "        \"threads\": {},\n",
                "        \"workers\": {},\n",
                "        \"simulated_cycles\": {},\n",
                "        \"wall_seconds_percycle\": {:.6},\n",
                "        \"wall_seconds_chunked\": {:.6},\n",
                "        \"cycles_per_sec_percycle\": {:.1},\n",
                "        \"cycles_per_sec_chunked\": {:.1},\n",
                "        \"cycles_per_sec_per_worker\": {:.1},\n",
                "        \"chunked_speedup\": {:.3}\n",
                "      }}"
            ),
            self.workload,
            self.threads,
            self.workers,
            self.simulated_cycles,
            self.wall_percycle,
            self.wall_chunked,
            c / self.wall_percycle.max(1e-9),
            rate_chunked,
            rate_chunked / self.workers as f64,
            self.speedup(),
        )
    }
}

/// Build one chunk-study workload: `(CE, program)` pairs on a fresh
/// 4-cluster Cedar.
fn chunk_programs(workload: &str, n: u32, m: &mut Machine) -> Vec<(CeId, Program)> {
    match workload {
        "rank64_peak" => {
            let ces = 4 * m.config().ces_per_cluster;
            (0..ces)
                .map(|ce| (CeId(ce), effective_peak_program(n, 64)))
                .collect()
        }
        "rank64_gm_prefetch" => Rank64 {
            n,
            k: 64,
            version: Rank64Version::GmPrefetch { block_words: 32 },
        }
        .build(m, 4),
        other => unreachable!("unknown chunk workload {other}"),
    }
}

/// Run one chunk-study leg: `chunk` is the `MachineConfig::chunk_cycles`
/// value (1 = per-cycle hatch, 0 = automatic lookahead). Fast-forward is
/// off — the study times the tick loop itself, the same convention the
/// hot-path bench uses — and the fingerprint pins bit-equivalence.
fn run_chunk_leg(workload: &str, n: u32, threads: usize, chunk: usize) -> (u64, u64, u64) {
    let cfg = MachineConfig::cedar_with_clusters(4)
        .with_threads(threads)
        .with_fast_forward(false)
        .with_chunk_cycles(chunk);
    let mut m = Machine::new(cfg).expect("cedar config");
    let progs = chunk_programs(workload, n, &mut m);
    let r = m.run(progs, 2_000_000_000).expect("chunk-study run");
    (r.cycles, r.flops, m.memory_digest())
}

fn measure_chunked(workload: &'static str, n: u32, threads: usize, reps: u32) -> ChunkRow {
    let workers = threads.min(4);
    let mut wall_percycle = f64::INFINITY;
    let mut wall_chunked = f64::INFINITY;
    let mut reference = (0, 0, 0);
    for _ in 0..reps {
        let t = Instant::now();
        reference = run_chunk_leg(workload, n, threads, 1);
        wall_percycle = wall_percycle.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let chunked = run_chunk_leg(workload, n, threads, 0);
        wall_chunked = wall_chunked.min(t.elapsed().as_secs_f64());
        assert_eq!(
            reference, chunked,
            "{workload} @ {threads} threads: chunked run drifted from the per-cycle engine"
        );
    }
    ChunkRow {
        workload,
        threads,
        workers,
        simulated_cycles: reference.0,
        wall_percycle,
        wall_chunked,
    }
}

/// Splice the `chunked` section into `BENCH_simspeed.json`, preserving
/// whatever `sim_throughput` wrote. The section is always the last
/// member, so a rerun truncates the previous one at its marker.
fn write_chunked_section(rows: &[ChunkRow], smoke: bool, host: usize) -> std::io::Result<()> {
    const FILE: &str = "BENCH_simspeed.json";
    const MARKER: &str = ",\n  \"chunked\":";
    let mut text = std::fs::read_to_string(FILE).unwrap_or_else(|_| {
        // No throughput artifact yet (standalone run): start a minimal
        // document so the section still lands somewhere valid.
        format!("{{\n  \"host_parallelism\": {host},\n  \"smoke\": {smoke},\n  \"experiments\": []\n}}\n")
    });
    if let Some(at) = text.find(MARKER) {
        text.truncate(at);
        text.push_str("\n}\n");
    }
    let body = text.trim_end().strip_suffix('}').expect("JSON object");
    let json = format!(
        concat!(
            "{}{marker} {{\n",
            "    \"smoke\": {},\n",
            "    \"host_parallelism\": {},\n",
            "    \"rows\": [\n{}\n    ]\n",
            "  }}\n}}\n"
        ),
        body.trim_end(),
        smoke,
        host,
        rows.iter()
            .map(ChunkRow::json)
            .collect::<Vec<_>>()
            .join(",\n"),
        marker = MARKER,
    );
    parse(&json).expect("spliced BENCH_simspeed.json must stay valid JSON");
    std::fs::write(FILE, json)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke") || cedar_bench::quick();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism available: {host}");
    if host < *THREADS.last().unwrap() {
        println!(
            "note: fewer host cores than simulation threads; expect determinism \
             but not speedup over the serial engine (threads time-slice {host} core(s))"
        );
    }
    println!();

    // The chunk study must not inherit a CI matrix leg's chunk knob: the
    // config builder pins each leg explicitly, and clearing the variable
    // keeps `chunk_cycles = 0` meaning "automatic" rather than "ask the
    // environment".
    std::env::remove_var("CEDAR_CHUNK_CYCLES");

    // Table 1: rank-64 update, three memory versions x four cluster
    // counts.
    let n = if smoke { 64 } else { 128 };
    eprintln!("Table 1 driver (rank-64, n = {n}) at {THREADS:?} threads...");
    let mut t1_times = Vec::new();
    let mut t1_runs = Vec::new();
    for &t in &THREADS {
        set_threads(t);
        let start = Instant::now();
        t1_runs.push(cedar::experiments::table1::run(n)?);
        t1_times.push(start.elapsed().as_secs_f64());
    }
    assert!(
        t1_runs.iter().all(|r| *r == t1_runs[0]),
        "Table 1 results must be bit-identical across thread counts"
    );
    speedup_row("table1 (identical results)", &t1_times);

    // Table 2: VL/TM/RK/CG at 8/16/32 CEs.
    let sizes = if smoke {
        cedar::experiments::table2::Table2Sizes {
            vl_words_per_ce: 2048,
            tm_n: 8192,
            rk_n: 64,
            cg_n: 8192,
        }
    } else {
        cedar::experiments::table2::Table2Sizes::default()
    };
    eprintln!("Table 2 driver ({sizes:?}) at {THREADS:?} threads...");
    let mut t2_times = Vec::new();
    let mut t2_runs = Vec::new();
    for &t in &THREADS {
        set_threads(t);
        let start = Instant::now();
        t2_runs.push(cedar::experiments::table2::run_sized(sizes)?);
        t2_times.push(start.elapsed().as_secs_f64());
    }
    assert!(
        t2_runs.iter().all(|r| *r == t2_runs[0]),
        "Table 2 results must be bit-identical across thread counts"
    );
    speedup_row("table2 (identical results)", &t2_times);

    let best = (t1_times[0] / t1_times[2]).max(t2_times[0] / t2_times[2]);
    println!();
    println!("best 4-thread speedup: {best:.2}x (target on a >=4-core host: >=1.5x)");
    println!();

    // Lookahead chunking: per-cycle hatch vs automatic chunks, per
    // thread count, with bit-equivalence asserted on every pair.
    let (peak_n, reps) = if smoke { (64, 1) } else { (128, 3) };
    let mut rows = Vec::new();
    for (workload, n) in [("rank64_peak", peak_n), ("rank64_gm_prefetch", peak_n)] {
        for &t in &THREADS {
            eprintln!("chunk study: {workload} @ {t} thread(s), x{reps}...");
            rows.push(measure_chunked(workload, n, t, reps));
        }
    }
    println!(
        "{:<20} {:>7} {:>16} {:>12} {:>12} {:>14} {:>8}",
        "chunk study",
        "threads",
        "sim cycles",
        "1-cyc (s)",
        "chunked (s)",
        "cyc/s/worker",
        "speedup"
    );
    for r in &rows {
        let c = r.simulated_cycles as f64;
        println!(
            "{:<20} {:>7} {:>16} {:>12.3} {:>12.3} {:>14.0} {:>7.2}x",
            r.workload,
            r.threads,
            r.simulated_cycles,
            r.wall_percycle,
            r.wall_chunked,
            c / r.wall_chunked.max(1e-9) / r.workers as f64,
            r.speedup(),
        );
    }
    write_chunked_section(&rows, smoke, host)?;
    eprintln!("updated BENCH_simspeed.json (chunked section)");

    // Sanity-check the artifact round-trips through the bench-history
    // parser with the section attached.
    let doc = parse(&std::fs::read_to_string("BENCH_simspeed.json")?)?;
    assert!(doc
        .get("chunked")
        .and_then(|c| c.get("rows"))
        .and_then(Value::as_arr)
        .is_some());
    Ok(())
}

//! The memory-system characterization suite ([GJTV91]).
//!
//! Sustainable bandwidth of each level of the Cedar hierarchy at 1-32
//! CEs — the measurements behind the paper's statement that the Table 1
//! cache-version efficiency "is consistent with the observed maximum
//! bandwidth of memory system characterization benchmarks".

use cedar_kernels::staged::membw::{measure, Probe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== memory-system characterization (aggregate words/CE-cycle; MB/s at 170 ns) ==");
    print!("{:26}", "probe");
    let ce_counts = [1usize, 2, 4, 8, 16, 32];
    for c in ce_counts {
        print!("{c:>10}");
    }
    println!();
    for probe in Probe::ALL {
        print!("{:26}", probe.name());
        for &ces in &ce_counts {
            let p = measure(probe, ces)?;
            print!("{:>10.2}", p.words_per_cycle);
        }
        println!();
    }
    println!();
    println!("reference bounds: global modules 16 w/c aggregate (768 MB/s); per-CE direct");
    println!("~0.15 w/c (13-cycle latency x 2 outstanding); cluster cache 8 w/c per cluster;");
    println!("cluster memory 4 w/c per cluster.");
    Ok(())
}

//! Crash-recovery bench: kill checkpointing runs and prove the resumed
//! runs are bit-identical to uninterrupted ones.
//!
//! Two kill mechanisms on a Table 1 workload (rank-64 GM/cache, four
//! clusters) at 1 and 4 worker threads:
//!
//! * **in-process** — the run is cut off at an adversarial cycle via the
//!   cycle limit, the machine is dropped mid-run, and a fresh machine
//!   resumes from the auto-checkpoint;
//! * **sigkill** — the binary re-execs itself as a child running the
//!   same workload with auto-checkpointing, waits for a snapshot file to
//!   appear, and SIGKILLs the child (a real crash: no destructors, no
//!   flushing), then resumes from whatever image the dead process left.
//!
//! Both must reproduce the uninterrupted run's cycle count, memory
//! digest and full stats tree. Writes `BENCH_crash_resume.json`;
//! `bench_history --check` gates on every point matching. `--smoke`
//! shrinks the workload for CI.

use std::path::{Path, PathBuf};

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::Program;
use cedar_machine::{MachineConfig, MachineError, MachineStats};

const LIMIT: u64 = 2_000_000_000;
const CLUSTERS: usize = 4;

fn build(m: &mut Machine, n: u32) -> Vec<(CeId, Program)> {
    Rank64 {
        n,
        k: 64,
        version: Rank64Version::GmCache,
    }
    .build(m, CLUSTERS)
}

fn cfg_for(threads: usize) -> MachineConfig {
    MachineConfig::cedar_with_clusters(CLUSTERS).with_threads(threads)
}

struct Fingerprint {
    cycles: u64,
    memory: u64,
    stats: MachineStats,
}

fn uninterrupted(threads: usize, n: u32) -> Fingerprint {
    let mut m = Machine::new(cfg_for(threads)).expect("machine");
    let progs = build(&mut m, n);
    let r = m.run(progs, LIMIT).expect("baseline run");
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    }
}

fn resume(threads: usize, n: u32, snap: &Path) -> Fingerprint {
    let mut m = Machine::new(cfg_for(threads)).expect("machine");
    let progs = build(&mut m, n);
    let r = m
        .resume_from_file(progs, snap, LIMIT)
        .expect("resume from the crashed run's snapshot");
    Fingerprint {
        cycles: r.cycles,
        memory: m.memory_digest(),
        stats: r.stats,
    }
}

struct Point {
    mode: &'static str,
    threads: usize,
    kill_cycle: u64,
    baseline_cycles: u64,
    resumed_cycles: u64,
    digest_match: bool,
    stats_match: bool,
}

impl Point {
    fn ok(&self) -> bool {
        self.digest_match && self.stats_match && self.resumed_cycles == self.baseline_cycles
    }
}

fn point(
    mode: &'static str,
    threads: usize,
    kill_cycle: u64,
    base: &Fingerprint,
    got: &Fingerprint,
) -> Point {
    Point {
        mode,
        threads,
        kill_cycle,
        baseline_cycles: base.cycles,
        resumed_cycles: got.cycles,
        digest_match: base.memory == got.memory,
        stats_match: base.stats == got.stats,
    }
}

/// In-process crash: cut the run off at `kill_at` via the cycle limit,
/// drop the machine, resume from the checkpoint file.
fn in_process(threads: usize, n: u32, base: &Fingerprint, snap: &Path) -> Point {
    let kill_at = 2 * base.cycles / 3;
    let every = (base.cycles / 9).max(1);
    let _ = std::fs::remove_file(snap);
    let mut m = Machine::new(cfg_for(threads).with_checkpoint(every, snap)).expect("machine");
    let progs = build(&mut m, n);
    match m.run(progs, kill_at) {
        Err(MachineError::CycleLimitExceeded { .. }) => {}
        other => panic!("kill run should hit the cycle limit, got {other:?}"),
    }
    drop(m);
    assert!(snap.exists(), "no checkpoint after the in-process kill");
    let got = resume(threads, n, snap);
    let p = point("in-process", threads, kill_at, base, &got);
    let _ = std::fs::remove_file(snap);
    p
}

/// Real crash: re-exec this binary as a child running the workload with
/// auto-checkpointing, SIGKILL it once a snapshot exists, resume here.
fn sigkill(threads: usize, n: u32, base: &Fingerprint, snap: &Path) -> Point {
    let every = (base.cycles / 9).max(1);
    let _ = std::fs::remove_file(snap);
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args([
            "--child",
            snap.to_str().expect("utf-8 snap path"),
            &threads.to_string(),
            &n.to_string(),
            &every.to_string(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");
    // Wait for the first auto-checkpoint to land (atomic rename: a
    // visible file is always complete), then kill without ceremony.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while !snap.exists() {
        if let Some(status) = child.try_wait().expect("try_wait") {
            // The child finished before we could kill it: the snapshot
            // of its last interval is still on disk and resume must
            // still reproduce the run — unless it never checkpointed.
            assert!(
                status.success() && snap.exists(),
                "child exited ({status}) without leaving a snapshot"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child produced no snapshot within the deadline"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let _ = child.kill(); // SIGKILL on unix: the process gets no say
    let _ = child.wait();
    let got = resume(threads, n, snap);
    let p = point("sigkill", threads, 0, base, &got);
    let _ = std::fs::remove_file(snap);
    p
}

/// Child mode for the sigkill scenario: run the workload with
/// auto-checkpointing until killed.
fn child_main(args: &[String]) -> ! {
    let snap = PathBuf::from(&args[0]);
    let threads: usize = args[1].parse().expect("threads");
    let n: u32 = args[2].parse().expect("n");
    let every: u64 = args[3].parse().expect("every");
    let mut m = Machine::new(cfg_for(threads).with_checkpoint(every, &snap)).expect("machine");
    let progs = build(&mut m, n);
    m.run(progs, LIMIT).expect("child run");
    std::process::exit(0);
}

fn json(smoke: bool, points: &[Point]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"crash_resume\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n  \"points\": [\n"));
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"mode\": \"{}\",\n",
                    "      \"threads\": {},\n",
                    "      \"kill_cycle\": {},\n",
                    "      \"baseline_cycles\": {},\n",
                    "      \"resumed_cycles\": {},\n",
                    "      \"digest_match\": {},\n",
                    "      \"stats_match\": {}\n",
                    "    }}"
                ),
                p.mode,
                p.threads,
                p.kill_cycle,
                p.baseline_cycles,
                p.resumed_cycles,
                p.digest_match,
                p.stats_match,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        child_main(&args[1..]);
    }
    let smoke = args.iter().any(|a| a == "--smoke") || cedar_bench::quick();
    let n = if smoke { 64 } else { 128 };
    let mut points = Vec::new();
    for threads in [1usize, 4] {
        eprintln!("crash_resume: baseline (threads = {threads}, n = {n})...");
        let base = uninterrupted(threads, n);
        let snap = std::env::temp_dir().join(format!(
            "cedar-crash-resume-{}-t{threads}.snap",
            std::process::id()
        ));
        eprintln!(
            "crash_resume: in-process kill at 2/3 of {} cycles...",
            base.cycles
        );
        points.push(in_process(threads, n, &base, &snap));
        eprintln!("crash_resume: SIGKILL of a checkpointing child...");
        points.push(sigkill(threads, n, &base, &snap));
    }
    for p in &points {
        eprintln!(
            "crash_resume: {} t={} kill@{}: cycles {} -> {}, digest {}, stats {}",
            p.mode,
            p.threads,
            p.kill_cycle,
            p.baseline_cycles,
            p.resumed_cycles,
            if p.digest_match { "match" } else { "MISMATCH" },
            if p.stats_match { "match" } else { "MISMATCH" },
        );
    }
    std::fs::write("BENCH_crash_resume.json", json(smoke, &points)).expect("write artifact");
    eprintln!("wrote BENCH_crash_resume.json");
    if points.iter().any(|p| !p.ok()) {
        eprintln!("crash_resume: FAILED — resumed run differs from uninterrupted run");
        std::process::exit(1);
    }
    eprintln!("crash_resume: all {} points bit-identical", points.len());
}

//! Regenerate the PPT4 scalability study: CG on Cedar (2-32 CEs,
//! 1K-172K) versus the CM-5 banded matvec reference.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = if cedar_bench::quick() { 1 } else { 2 };
    eprintln!("running the PPT4 CG sweep (5 processor counts x 6 sizes)...");
    let study = cedar::experiments::ppt4::run(iters)?;
    println!("{}", study.render());
    if let Some(n) = study.high_band_crossover() {
        println!("32-CE high-band crossover at N = {n} (paper: between 10K and 16K)");
    }
    Ok(())
}

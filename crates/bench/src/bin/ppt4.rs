//! Regenerate the PPT4 scalability study: CG on Cedar (2-32 CEs,
//! 1K-172K) versus the CM-5 banded matvec reference.
//!
//! `--checkpoint <dir>` auto-snapshots every simulation so an
//! interrupted sweep can be continued with `--resume` (see
//! `EXPERIMENTS.md`, "Crash recovery").

use cedar::experiments::ppt4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ck = cedar::experiments::ckpt::Checkpoint::from_cli(std::env::args())?;
    let iters = if cedar_bench::quick() { 1 } else { 2 };
    eprintln!("running the PPT4 CG sweep (5 processor counts x 6 sizes)...");
    let study = ppt4::run_swept_with(
        iters,
        &ppt4::sizes(),
        &ppt4::processor_counts(),
        65_536,
        ck.as_ref(),
    )?;
    println!("{}", study.render());
    if let Some(n) = study.high_band_crossover() {
        println!("32-CE high-band crossover at N = {n} (paper: between 10K and 16K)");
    }
    Ok(())
}

//! # cedar-bench
//!
//! The benchmark harness of the Cedar reproduction.
//!
//! ## Table/figure regenerators (binaries)
//!
//! Each binary reruns one piece of the paper's evaluation on the
//! simulator and prints paper-vs-measured rows:
//!
//! ```text
//! cargo run --release -p cedar-bench --bin table1   # rank-64 update MFLOPS
//! cargo run --release -p cedar-bench --bin table2   # prefetch latency/interarrival
//! cargo run --release -p cedar-bench --bin table3   # Perfect suite (also 4, 5, 6, fig3)
//! cargo run --release -p cedar-bench --bin ppt4     # CG scalability vs CM-5
//! cargo run --release -p cedar-bench --bin all_experiments
//! ```
//!
//! `table3` measures the whole Perfect suite once and prints Tables 3–6
//! and Figure 3 from the same measurement (they share the ensemble, as in
//! the paper).
//!
//! ## Ablations
//!
//! `ablation_prefetch`, `ablation_sync`, `ablation_network` and
//! `ablation_loops` vary the design choices DESIGN.md calls out
//! (prefetch block size and policy, Cedar synchronization, switch queue
//! depth/radix, loop-scheduling flavor).
//!
//! ## Criterion micro-benchmarks
//!
//! `cargo bench -p cedar-bench` times short, representative simulator
//! workloads (kernel slices, network transit, cache access, sync ops) —
//! these measure the *simulator*, the binaries measure the *machine*.

pub mod json;

/// Environment flag: set `CEDAR_BENCH_QUICK=1` to shrink problem sizes
/// (useful in CI).
pub fn quick() -> bool {
    std::env::var("CEDAR_BENCH_QUICK").is_ok_and(|v| v == "1")
}

//! A minimal recursive-descent JSON parser over `std` only.
//!
//! The bench harness emits its `BENCH_*.json` artifacts with hand-rolled
//! formatting; `bench_history` needs to read them back for schema checks
//! and regression gates, and the build environment is offline, so the
//! parser is hand-rolled too. It accepts strict RFC 8259 JSON (no
//! comments, no trailing commas) and keeps numbers as `f64` — fine for
//! the magnitudes the bench files hold.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for other kinds or a missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in bench output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar, not byte by byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("250604").unwrap().as_u64(), Some(250604));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_a_bench_shaped_document() {
        let v = parse(r#"{"smoke": false, "experiments": [{"name": "x", "speedup": 1.042}]}"#)
            .expect("parses");
        assert_eq!(v.get("smoke").unwrap().as_bool(), Some(false));
        let exp = v.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(exp[0].get("name").unwrap().as_str(), Some("x"));
        assert!((exp[0].get("speedup").unwrap().as_f64().unwrap() - 1.042).abs() < 1e-9);
    }
}

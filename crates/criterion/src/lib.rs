//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API subset `cedar-bench` uses.
//!
//! The real crate cannot be fetched in the offline build environment, so
//! this workspace member shadows it via a `[workspace.dependencies]` path
//! entry. Each benchmark closure is run a handful of times and the mean
//! wall-clock time is printed; there is no statistical analysis, warm-up
//! tuning, or HTML report.

use std::time::Instant;

const DEFAULT_SAMPLES: usize = 10;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iterations: 1,
        elapsed_ns: 0,
    };
    let mut total_ns: u128 = 0;
    let mut runs: u64 = 0;
    for _ in 0..samples {
        b.elapsed_ns = 0;
        f(&mut b);
        total_ns += b.elapsed_ns;
        runs += b.iterations;
    }
    let mean_ns = if runs == 0 {
        0
    } else {
        total_ns / runs as u128
    };
    println!("bench {name:<48} {:>12.3} ms/iter", mean_ns as f64 / 1e6);
}

/// Re-exported for compatibility; benches in this workspace use
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| vec![0u8; 16].len()));
        g.finish();
    }
}

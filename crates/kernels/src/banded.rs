//! Banded matrices: tridiagonal, 5-diagonal and general bandwidth.
//!
//! The memory-system kernels of Table 2 include a tridiagonal
//! matrix–vector multiply (TM); the PPT4 scalability study uses a
//! 5-diagonal matvec inside conjugate gradient on Cedar, and banded
//! matvecs with bandwidths 3 and 11 on the CM-5 \[FWPS92\].

/// A symmetric-structure banded matrix stored by diagonals: `diag(d)` for
/// offset `d ∈ [-half, +half]` where `bandwidth = 2·half + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    half: usize,
    /// `diags[k]` is the diagonal at offset `k - half`; entry `i` of
    /// diagonal `d` is `A[i, i+d]` for valid columns.
    diags: Vec<Vec<f64>>,
}

impl BandedMatrix {
    /// An `n × n` banded matrix of zeros with odd `bandwidth`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is even, zero, or wider than the matrix.
    pub fn zeros(n: usize, bandwidth: usize) -> BandedMatrix {
        assert!(bandwidth % 2 == 1, "bandwidth must be odd");
        assert!(
            bandwidth >= 1 && bandwidth < 2 * n,
            "bandwidth out of range"
        );
        let half = bandwidth / 2;
        BandedMatrix {
            n,
            half,
            diags: vec![vec![0.0; n]; bandwidth],
        }
    }

    /// Build from a function of (row, col); entries outside the band are
    /// ignored.
    pub fn from_fn(n: usize, bandwidth: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n, bandwidth);
        let half = m.half as isize;
        for i in 0..n {
            for d in -half..=half {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    m.set(i, j as usize, f(i, j as usize));
                }
            }
        }
        m
    }

    /// The classic 2-D Poisson-like 5-diagonal test matrix used by the
    /// CG scalability study: 4 on the main diagonal, −1 on the ±1 and ±s
    /// diagonals (here folded to ±2 for the banded storage used on
    /// Cedar's 5-diagonal kernel).
    pub fn penta_laplacian(n: usize) -> BandedMatrix {
        Self::from_fn(n, 5, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) <= 2 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth (number of diagonals).
    pub fn bandwidth(&self) -> usize {
        2 * self.half + 1
    }

    /// Entry `(i, j)`, zero outside the band.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let d = j as isize - i as isize;
        if d.unsigned_abs() > self.half {
            return 0.0;
        }
        self.diags[(d + self.half as isize) as usize][i]
    }

    /// Set entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let d = j as isize - i as isize;
        assert!(
            d.unsigned_abs() <= self.half,
            "({i},{j}) outside bandwidth {}",
            self.bandwidth()
        );
        self.diags[(d + self.half as isize) as usize][i] = v;
    }

    /// `y = A·x` by diagonals (the vectorizable form).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have the wrong length.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        let half = self.half as isize;
        for (k, diag) in self.diags.iter().enumerate() {
            let d = k as isize - half;
            for i in 0..self.n {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < self.n {
                    y[i] += diag[i] * x[j as usize];
                }
            }
        }
    }

    /// Flops of one banded matvec: 2 per stored nonzero row entry.
    pub fn matvec_flops(&self) -> u64 {
        // Interior rows have `bandwidth` entries; edges slightly fewer.
        let mut nnz = 0u64;
        let half = self.half as isize;
        for i in 0..self.n as isize {
            let lo = (i - half).max(0);
            let hi = (i + half).min(self.n as isize - 1);
            nnz += (hi - lo + 1) as u64;
        }
        2 * nnz
    }
}

/// A tridiagonal matrix (`bandwidth == 3`) convenience constructor.
pub fn tridiagonal(n: usize, lower: f64, diag: f64, upper: f64) -> BandedMatrix {
    BandedMatrix::from_fn(n, 3, |i, j| {
        if i == j {
            diag
        } else if j + 1 == i {
            lower
        } else {
            upper
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_matvec(a: &BandedMatrix, x: &[f64]) -> Vec<f64> {
        let n = a.n();
        (0..n)
            .map(|i| (0..n).map(|j| a.get(i, j) * x[j]).sum())
            .collect()
    }

    #[test]
    fn tridiagonal_matvec_matches_dense() {
        let n = 33;
        let a = tridiagonal(n, -1.0, 2.0, -0.5);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        a.matvec(&x, &mut y);
        let want = dense_matvec(&a, &x);
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn penta_matvec_matches_dense() {
        let n = 40;
        let a = BandedMatrix::penta_laplacian(n);
        assert_eq!(a.bandwidth(), 5);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y = vec![0.0; n];
        a.matvec(&x, &mut y);
        let want = dense_matvec(&a, &x);
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn wide_band_from_fn() {
        let n = 20;
        let a = BandedMatrix::from_fn(n, 11, |i, j| (i + j) as f64);
        assert_eq!(a.bandwidth(), 11);
        assert_eq!(a.get(3, 8), 11.0);
        assert_eq!(a.get(3, 9), 0.0, "outside band");
    }

    #[test]
    fn matvec_flops_counts_band_edges() {
        let a = tridiagonal(4, 1.0, 1.0, 1.0);
        // rows have 2,3,3,2 entries -> nnz 10 -> 20 flops.
        assert_eq!(a.matvec_flops(), 20);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be odd")]
    fn even_bandwidth_rejected() {
        BandedMatrix::zeros(8, 4);
    }

    #[test]
    #[should_panic(expected = "outside bandwidth")]
    fn set_outside_band_panics() {
        let mut a = BandedMatrix::zeros(8, 3);
        a.set(0, 5, 1.0);
    }
}

//! Dense matrices (column-major) and the rank-k update.
//!
//! The Table 1 primitive computes a rank-64 update to an `n × n` matrix:
//! `C += A · B` with `A` being `n × 64` and `B` being `64 × n`. These are
//! the *numeric* implementations used for correctness and property tests;
//! the timing behaviour on Cedar comes from the staged programs in
//! [`staged`](crate::staged).

/// A column-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of range");
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of range");
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Maximum absolute difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.rows + i]
    }
}

/// `C += A · B`: the rank-`k` update (`k = A.cols = B.rows`), computed
/// column-by-column with an axpy inner loop — the same dataflow the Cedar
/// kernel vectorizes (chained multiply–add on a column chunk per memory
/// operand).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn rank_update(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows(), c.rows(), "A rows must match C rows");
    assert_eq!(b.cols(), c.cols(), "B cols must match C cols");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must match");
    let k = a.cols();
    for j in 0..c.cols() {
        for l in 0..k {
            let blj = b[(l, j)];
            let col_a = a.col(l);
            let col_c = c.col_mut(j);
            for i in 0..col_c.len() {
                col_c[i] += col_a[i] * blj;
            }
        }
    }
}

/// Floating-point operations in a rank-`k` update of an `n × m` result:
/// 2 per (element, k).
pub fn rank_update_flops(n: u64, m: u64, k: u64) -> u64 {
    2 * n * m * k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul_add(c: &mut Matrix, a: &Matrix, b: &Matrix) {
        for i in 0..c.rows() {
            for j in 0..c.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] += s;
            }
        }
    }

    #[test]
    fn rank_update_matches_naive() {
        let n = 17;
        let k = 5;
        let a = Matrix::from_fn(n, k, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0);
        let b = Matrix::from_fn(k, n, |i, j| (i + 7 * j) as f64 * 0.5 - 3.0);
        let mut c1 = Matrix::from_fn(n, n, |i, j| (i as f64) - (j as f64));
        let mut c2 = c1.clone();
        rank_update(&mut c1, &a, &b);
        naive_matmul_add(&mut c2, &a, &b);
        assert!(c1.max_abs_diff(&c2) < 1e-9);
    }

    #[test]
    fn flops_count() {
        assert_eq!(rank_update_flops(1024, 1024, 64), 134_217_728);
    }

    #[test]
    fn indexing_is_column_major() {
        let m = Matrix::from_fn(3, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(m.col(1), &[1.0, 11.0, 21.0]);
        assert_eq!(m[(2, 1)], 21.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn col_out_of_range_panics() {
        Matrix::zeros(2, 2).col(2);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn rank_update_rejects_mismatch() {
        let mut c = Matrix::zeros(4, 4);
        let a = Matrix::zeros(4, 3);
        let b = Matrix::zeros(2, 4);
        rank_update(&mut c, &a, &b);
    }
}

//! # cedar-kernels
//!
//! The computational kernels of the Cedar performance study, in two
//! forms:
//!
//! * **Pure numeric implementations** ([`dense`], [`banded`], [`cg`]) —
//!   real `f64` mathematics, used for correctness and property tests and
//!   by the downstream methodology crate for operation counting.
//! * **Staged kernels** ([`staged`]) — the same algorithms expressed as
//!   Cedar instruction streams and executed on the `cedar-machine`
//!   simulator; these produce the timing numbers of Table 1, Table 2 and
//!   the PPT4 scalability study.
//!
//! The split mirrors the simulator's design: `cedar-machine` is a timing
//! model that tracks addresses, queues and tags but not floating-point
//! values, so numeric truth lives here.
//!
//! ## Example: the Table 1 kernel on one cluster
//!
//! ```no_run
//! use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
//! use cedar_machine::machine::Machine;
//!
//! # fn main() -> Result<(), cedar_machine::MachineError> {
//! let mut m = Machine::cedar()?;
//! let kernel = Rank64::new(Rank64Version::GmPrefetch { block_words: 256 });
//! let programs = kernel.build(&mut m, 1);
//! let report = m.run(programs, 1_000_000_000)?;
//! println!("{:.1} MFLOPS", report.mflops);
//! # Ok(())
//! # }
//! ```

pub mod banded;
pub mod cg;
pub mod dense;
pub mod staged;

pub use banded::{tridiagonal, BandedMatrix};
pub use cg::{axpy, cg_iteration_flops, cg_solve, dot, CgResult};
pub use dense::{rank_update, rank_update_flops, Matrix};

//! The vector-load kernel (Table 2 "VL").
//!
//! Pure prefetched vector loads from global memory: each CE sweeps its
//! own region in compiler-sized blocks (32 words). Dominated by memory
//! accesses but with lower access intensity than the 256-word-block RK
//! kernel, so it degrades more slowly under contention (§4.1).

use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::{AddressExpr, Program};
use cedar_xylem::gang::Gang;

use super::{consume, prefetch};

/// Vector-load kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorLoad {
    /// Words each CE loads.
    pub words_per_ce: u32,
    /// Prefetch block size (32 = compiler-generated).
    pub block: u32,
}

impl VectorLoad {
    /// The Table 2 configuration.
    pub fn new() -> VectorLoad {
        VectorLoad {
            words_per_ce: 16 * 1024,
            block: 32,
        }
    }

    /// Build per-CE programs over the first `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_ce` is not a multiple of `block`.
    pub fn build(&self, m: &mut Machine, clusters: usize) -> Vec<(CeId, Program)> {
        assert!(self.block > 0 && self.words_per_ce.is_multiple_of(self.block));
        let cpc = m.config().ces_per_cluster;
        let blocks = self.words_per_ce / self.block;
        let mut gang = Gang::clusters(clusters, cpc);
        gang.each(|i, _ce, b| {
            // Offset regions off module alignment per CE (a real code's
            // arrays are never all module-aligned).
            let base = u64::from(self.words_per_ce) * i as u64 + 3 * i as u64;
            // Start skew: spreads the CEs' module-sweep phases (the real
            // machine's scheduling provides this naturally).
            b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
            b.repeat(blocks, |b| {
                prefetch(
                    b,
                    AddressExpr::new(base).with_coeff(0, i64::from(self.block)),
                    self.block,
                );
                consume(b, self.block, 0);
            });
        });
        gang.finish()
    }
}

impl Default for VectorLoad {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vl_prefetches_every_word_once() {
        let mut m = Machine::cedar().unwrap();
        let vl = VectorLoad {
            words_per_ce: 1024,
            block: 32,
        };
        let progs = vl.build(&mut m, 1);
        let r = m.run(progs, 50_000_000).unwrap();
        assert_eq!(r.prefetch.requests, 8 * 1024);
        assert_eq!(r.prefetch.words_returned, 8 * 1024);
        assert_eq!(r.flops, 0);
    }

    #[test]
    fn vl_latency_grows_with_machine_size() {
        let lat = |clusters: usize| {
            let mut m = Machine::cedar().unwrap();
            let progs = VectorLoad {
                words_per_ce: 2048,
                block: 32,
            }
            .build(&mut m, clusters);
            let r = m.run(progs, 50_000_000).unwrap();
            r.prefetch.mean_latency()
        };
        let l1 = lat(1);
        let l4 = lat(4);
        assert!(l4 > l1, "latency should grow: {l1:.1} -> {l4:.1}");
    }
}

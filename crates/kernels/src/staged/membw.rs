//! Memory-system characterization probes.
//!
//! The paper grounds its Table 1 interpretation in "the observed maximum
//! bandwidth of memory system characterization benchmarks" \[GJTV91\].
//! These probes measure sustainable word rates of each level of the
//! hierarchy and each access mode, at 1–32 CEs: global loads (direct and
//! prefetched), global stores, cluster-cache streams (warm), and
//! cluster-memory streams (cold, cache-missing).

use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::{AddressExpr, MemOperand, Op, Program, ProgramBuilder, VectorOp};
use cedar_machine::MachineConfig;

/// The access mode a probe exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Direct global loads (no prefetch): the 13-cycle/2-outstanding mode.
    GlobalDirect,
    /// Prefetched global loads (32-word compiler blocks).
    GlobalPrefetched,
    /// Global stores.
    GlobalStore,
    /// Cluster-cache streams, warm (second pass over a cache-resident
    /// region).
    CacheWarm,
    /// Cluster-memory streams, cold (each pass touches fresh lines).
    ClusterCold,
}

impl Probe {
    /// All probes in report order.
    pub const ALL: [Probe; 5] = [
        Probe::GlobalDirect,
        Probe::GlobalPrefetched,
        Probe::GlobalStore,
        Probe::CacheWarm,
        Probe::ClusterCold,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Probe::GlobalDirect => "global load (direct)",
            Probe::GlobalPrefetched => "global load (prefetch)",
            Probe::GlobalStore => "global store",
            Probe::CacheWarm => "cluster cache (warm)",
            Probe::ClusterCold => "cluster memory (cold)",
        }
    }
}

/// One probe measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwPoint {
    pub probe: Probe,
    pub ces: usize,
    /// Aggregate words per CE cycle.
    pub words_per_cycle: f64,
    /// The same in MB/s at the 170 ns cycle.
    pub mb_per_s: f64,
}

/// Words each CE moves per measurement.
const WORDS_PER_CE: u64 = 4096;

fn build(probe: Probe, ces: usize, cpc: usize) -> Vec<(CeId, Program)> {
    let mut progs = Vec::new();
    for i in 0..ces {
        let mut b = ProgramBuilder::new();
        b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
        let region = (i as u64) * (WORDS_PER_CE * 4) + 3 * i as u64;
        let blocks = (WORDS_PER_CE / 32) as u32;
        match probe {
            Probe::GlobalDirect => {
                b.repeat(blocks, |b| {
                    b.vector(VectorOp {
                        length: 32,
                        flops_per_element: 0,
                        operand: MemOperand::GlobalRead {
                            addr: AddressExpr::new(region).with_coeff(0, 32),
                            stride: 1,
                        },
                    });
                });
            }
            Probe::GlobalPrefetched => {
                b.repeat(blocks, |b| {
                    b.push(Op::PrefetchArm {
                        length: 32,
                        stride: 1,
                    });
                    b.push(Op::PrefetchFire {
                        base: AddressExpr::new(region).with_coeff(0, 32),
                    });
                    b.vector(VectorOp {
                        length: 32,
                        flops_per_element: 0,
                        operand: MemOperand::Prefetched,
                    });
                });
            }
            Probe::GlobalStore => {
                b.repeat(blocks, |b| {
                    b.vector(VectorOp {
                        length: 32,
                        flops_per_element: 0,
                        operand: MemOperand::GlobalWrite {
                            addr: AddressExpr::new(region).with_coeff(0, 32),
                            stride: 1,
                        },
                    });
                });
                b.push(Op::Fence);
            }
            Probe::CacheWarm => {
                // Region sized to stay cache-resident per CE (4K words =
                // 32 KB; 8 CEs × 32 KB = 256 KB < 512 KB).
                let lane_region = (i % cpc) as u64 * WORDS_PER_CE;
                for _pass in 0..2 {
                    b.repeat(blocks, |b| {
                        b.vector(VectorOp {
                            length: 32,
                            flops_per_element: 0,
                            operand: MemOperand::ClusterRead {
                                addr: AddressExpr::new(lane_region).with_coeff(0, 32),
                                stride: 1,
                            },
                        });
                    });
                }
            }
            Probe::ClusterCold => {
                // Each CE sweeps a large private region once: every line
                // misses to cluster memory.
                let lane_region = (i % cpc) as u64 * (WORDS_PER_CE * 8);
                b.repeat(blocks, |b| {
                    b.vector(VectorOp {
                        length: 32,
                        flops_per_element: 0,
                        operand: MemOperand::ClusterRead {
                            addr: AddressExpr::new(lane_region).with_coeff(0, 32),
                            stride: 1,
                        },
                    });
                });
            }
        }
        progs.push((CeId(i), b.build()));
    }
    progs
}

/// Run one probe at `ces` CEs; returns aggregate words per cycle.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure(probe: Probe, ces: usize) -> cedar_machine::Result<BwPoint> {
    let clusters = ces.div_ceil(8).clamp(1, 4);
    let mut m = Machine::new(MachineConfig::cedar_with_clusters(clusters).with_env_threads())?;
    let cpc = m.config().ces_per_cluster;
    let cycle_ns = m.config().cycle_ns;
    let progs = build(probe, ces, cpc);
    let r = m.run(progs, 2_000_000_000)?;
    let mut words = WORDS_PER_CE * ces as u64;
    if probe == Probe::CacheWarm {
        words *= 2; // two passes
    }
    let wpc = words as f64 / r.cycles as f64;
    Ok(BwPoint {
        probe,
        ces,
        words_per_cycle: wpc,
        mb_per_s: wpc * 8.0 / (cycle_ns * 1e-9) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_orders_single_ce_rates() {
        let direct = measure(Probe::GlobalDirect, 1).unwrap().words_per_cycle;
        let pref = measure(Probe::GlobalPrefetched, 1).unwrap().words_per_cycle;
        let warm = measure(Probe::CacheWarm, 1).unwrap().words_per_cycle;
        assert!(
            direct < pref && pref < warm * 2.0,
            "hierarchy: direct {direct:.2} < prefetch {pref:.2} <~ cache {warm:.2}"
        );
        // The paper's numbers: direct ~0.15 w/c, prefetch ~0.5-0.7, cache ~0.7+.
        assert!(direct < 0.25);
        assert!(pref > 0.4);
        assert!(warm > 0.5);
    }

    #[test]
    fn global_bandwidth_saturates_by_32_ces() {
        let at8 = measure(Probe::GlobalPrefetched, 8).unwrap();
        let at32 = measure(Probe::GlobalPrefetched, 32).unwrap();
        // Aggregate grows but sublinearly: the 16 w/c module bound.
        assert!(at32.words_per_cycle > at8.words_per_cycle);
        assert!(
            at32.words_per_cycle < 16.5,
            "cannot exceed the module service bound: {:.1}",
            at32.words_per_cycle
        );
        // And per-CE efficiency drops.
        assert!(at32.words_per_cycle / 32.0 < at8.words_per_cycle / 8.0);
    }

    #[test]
    fn store_bandwidth_is_positive_and_bounded() {
        let p = measure(Probe::GlobalStore, 8).unwrap();
        assert!(p.words_per_cycle > 0.5 && p.words_per_cycle < 16.5);
        assert!(p.mb_per_s > 0.0);
    }
}

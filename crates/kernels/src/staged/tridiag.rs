//! The tridiagonal matrix–vector multiply (Table 2 "TM").
//!
//! `y = A·x` with `A` tridiagonal, vectorized by diagonals: per 32-element
//! chunk the kernel streams the three diagonals and the `x` chunk from
//! global memory (32-word compiler prefetches) and performs two
//! register–register shift/add operations — the register–register work
//! that lowers TM's demand on the memory system relative to VL and RK
//! (§4.1).

use cedar_machine::ids::CeId;
use cedar_machine::machine::Machine;
use cedar_machine::program::{AddressExpr, Program};
use cedar_xylem::gang::Gang;

use super::{consume, gwrite, prefetch, vreg};

/// Tridiagonal matvec kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TridiagMatvec {
    /// System size; rows are block-partitioned over the CEs.
    pub n: u32,
    /// Number of repeated multiplies (the kernel loops to give the
    /// monitor a stable sample).
    pub sweeps: u32,
}

impl TridiagMatvec {
    /// The Table 2 configuration.
    pub fn new() -> TridiagMatvec {
        TridiagMatvec {
            n: 64 * 1024,
            sweeps: 4,
        }
    }

    /// Flops: 3 diagonal triads (2 each) + 2 register ops (1 each) per
    /// element per sweep.
    pub fn flops(&self) -> u64 {
        u64::from(self.n) * u64::from(self.sweeps) * 8
    }

    /// Build per-CE programs over the first `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of 32 × the CE count.
    pub fn build(&self, m: &mut Machine, clusters: usize) -> Vec<(CeId, Program)> {
        let cpc = m.config().ces_per_cluster;
        let p = (clusters * cpc) as u32;
        assert!(
            self.n.is_multiple_of(32 * p),
            "n={} must divide over {p} CEs in 32-element chunks",
            self.n
        );
        let n = u64::from(self.n);
        // Layout: three diagonals, then x, then y.
        let diag = |d: u64| d * n;
        let x_base = 3 * n;
        let y_base = 4 * n;
        let chunks_per_ce = self.n / (32 * p);
        let mut gang = Gang::clusters(clusters, cpc);
        gang.each(|i, _ce, b| {
            let row0 = i as u64 * u64::from(chunks_per_ce) * 32;
            // Start skew: spreads the CEs' module-sweep phases.
            b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
            b.repeat(self.sweeps, |b| {
                // depth 1: my row chunks.
                b.repeat(chunks_per_ce, |b| {
                    let off = |base: u64| AddressExpr::new(base + row0).with_coeff(1, 32);
                    // x chunk into registers.
                    prefetch(b, off(x_base), 32);
                    consume(b, 32, 0);
                    // three diagonal triads.
                    for d in 0..3 {
                        prefetch(b, off(diag(d)), 32);
                        consume(b, 32, 2);
                    }
                    // register-register shift/adds for the off-diagonals.
                    vreg(b, 32, 1);
                    vreg(b, 32, 1);
                    // store y chunk.
                    gwrite(b, off(y_base), 32);
                });
            });
        });
        gang.finish()
    }
}

impl Default for TridiagMatvec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tm_flop_accounting() {
        let mut m = Machine::cedar().unwrap();
        let tm = TridiagMatvec { n: 2048, sweeps: 2 };
        let progs = tm.build(&mut m, 1);
        let r = m.run(progs, 50_000_000).unwrap();
        assert_eq!(r.flops, tm.flops());
    }

    #[test]
    fn tm_has_lower_memory_intensity_than_vl() {
        // Per word fetched, TM does more compute; its prefetch request
        // rate per cycle should be lower than VL's.
        let mut m = Machine::cedar().unwrap();
        let tm = TridiagMatvec { n: 8192, sweeps: 1 };
        let progs = tm.build(&mut m, 1);
        let r_tm = m.run(progs, 50_000_000).unwrap();
        let tm_rate = r_tm.prefetch.requests as f64 / r_tm.cycles as f64;

        let mut m = Machine::cedar().unwrap();
        let vl = super::super::vload::VectorLoad {
            words_per_ce: 4096,
            block: 32,
        };
        let progs = vl.build(&mut m, 1);
        let r_vl = m.run(progs, 50_000_000).unwrap();
        let vl_rate = r_vl.prefetch.requests as f64 / r_vl.cycles as f64;
        assert!(
            tm_rate < vl_rate,
            "TM demand {tm_rate:.3} should be below VL {vl_rate:.3}"
        );
    }
}

//! Staged kernels: machine instruction streams for the paper's kernels.
//!
//! Each staged kernel builds per-CE [`Program`](cedar_machine::program::Program)s
//! that exercise the simulated Cedar exactly the way the paper's hand- or
//! compiler-generated code exercised the real machine: global vector
//! accesses with or without prefetch, cached work arrays in cluster
//! memory, static column/row partitioning, cluster barriers, and global
//! reductions.
//!
//! | kernel | paper use |
//! |---|---|
//! | [`rank64::Rank64`] | Table 1 (three memory versions) and Table 2 "RK" |
//! | [`vload::VectorLoad`] | Table 2 "VL" |
//! | [`tridiag::TridiagMatvec`] | Table 2 "TM" |
//! | [`cg::StagedCg`] | Table 2 "CG" and the PPT4 scalability study |
//! | [`banded::BandedMatvec`] | the §4.3 Cedar-vs-CM-5 banded matvec comparison |
//! | [`membw`] | the \[GJTV91\] memory-system characterization probes |

pub mod banded;
pub mod cg;
pub mod membw;
pub mod rank64;
pub mod tridiag;
pub mod vload;

use cedar_machine::program::{AddressExpr, MemOperand, Op, ProgramBuilder, VectorOp};

/// Emit `arm(len, stride 1)` + `fire(base)`.
pub(crate) fn prefetch(b: &mut ProgramBuilder, base: AddressExpr, len: u32) {
    b.push(Op::PrefetchArm {
        length: len,
        stride: 1,
    });
    b.push(Op::PrefetchFire { base });
}

/// Emit a vector op consuming `len` prefetched words with `fpe` flops per
/// element.
pub(crate) fn consume(b: &mut ProgramBuilder, len: u32, fpe: u8) {
    b.vector(VectorOp {
        length: len,
        flops_per_element: fpe,
        operand: MemOperand::Prefetched,
    });
}

/// Emit a direct (non-prefetched) global vector read.
pub(crate) fn gread(b: &mut ProgramBuilder, addr: AddressExpr, len: u32, fpe: u8) {
    b.vector(VectorOp {
        length: len,
        flops_per_element: fpe,
        operand: MemOperand::GlobalRead { addr, stride: 1 },
    });
}

/// Emit a global vector write.
pub(crate) fn gwrite(b: &mut ProgramBuilder, addr: AddressExpr, len: u32) {
    b.vector(VectorOp {
        length: len,
        flops_per_element: 0,
        operand: MemOperand::GlobalWrite { addr, stride: 1 },
    });
}

/// Emit a register–register vector op.
pub(crate) fn vreg(b: &mut ProgramBuilder, len: u32, fpe: u8) {
    b.vector(VectorOp {
        length: len,
        flops_per_element: fpe,
        operand: MemOperand::None,
    });
}

/// Emit a cluster-memory vector read (through the shared cache).
pub(crate) fn cread(b: &mut ProgramBuilder, addr: AddressExpr, len: u32, fpe: u8) {
    b.vector(VectorOp {
        length: len,
        flops_per_element: fpe,
        operand: MemOperand::ClusterRead { addr, stride: 1 },
    });
}

/// Emit a cluster-memory vector write.
#[allow(dead_code)] // symmetry with cread; used by downstream staged kernels
pub(crate) fn cwrite(b: &mut ProgramBuilder, addr: AddressExpr, len: u32) {
    b.vector(VectorOp {
        length: len,
        flops_per_element: 0,
        operand: MemOperand::ClusterWrite { addr, stride: 1 },
    });
}

//! Staged banded matrix–vector multiply on Cedar.
//!
//! §4.3 compares Cedar's CG against banded matvecs (bandwidths 3 and 11)
//! on the CM-5 and observes that "the per-processor MFLOPS of the two
//! systems on these problems are roughly equivalent". This kernel lets
//! the same banded matvec run on the simulated Cedar so the comparison
//! can be made directly: `y = A·x` by diagonals, rows block-partitioned
//! over the CEs, one prefetched stream per diagonal plus the `x` chunk.

use cedar_machine::ids::CeId;
use cedar_machine::machine::{Machine, RunReport};
use cedar_machine::program::{AddressExpr, Program};
use cedar_xylem::gang::Gang;

use super::{consume, gwrite, prefetch, vreg};

/// Staged banded matvec configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandedMatvec {
    /// System size; rows are block-partitioned over the CEs.
    pub n: u64,
    /// Odd bandwidth (3 = tridiagonal, 11 = the CM-5 study's wide case).
    pub bandwidth: u32,
    /// Repeated multiplies for a stable rate.
    pub sweeps: u32,
}

impl BandedMatvec {
    /// A study point at the CM-5 comparison sizes.
    pub fn new(n: u64, bandwidth: u32) -> BandedMatvec {
        BandedMatvec {
            n,
            bandwidth,
            sweeps: 2,
        }
    }

    /// Flops: 2 per stored entry per sweep (interior-row approximation,
    /// matching the staged emission of `bandwidth` triads per chunk).
    pub fn flops(&self) -> u64 {
        let chunks = self.n.div_ceil(32);
        u64::from(self.sweeps) * chunks * 32 * 2 * u64::from(self.bandwidth)
    }

    /// Build per-CE programs over the first `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is even or zero.
    pub fn build(&self, m: &mut Machine, clusters: usize) -> Vec<(CeId, Program)> {
        assert!(
            self.bandwidth % 2 == 1 && self.bandwidth >= 1,
            "bandwidth must be odd"
        );
        let cpc = m.config().ces_per_cluster;
        let p = (clusters * cpc) as u64;
        let chunks = self.n.div_ceil(32);
        let n = chunks * 32;
        // Layout: `bandwidth` diagonals, then x, then y.
        let diag = |d: u64| d * n;
        let x_base = u64::from(self.bandwidth) * n;
        let y_base = x_base + n;
        let mut gang = Gang::clusters(clusters, cpc);
        let bw = self.bandwidth;
        gang.each(|i, _ce, b| {
            let i = i as u64;
            let my_chunks = (chunks / p + u64::from(chunks % p > i)) as u32;
            let base_off = 32 * i;
            let stride = (32 * p) as i64;
            b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
            b.repeat(self.sweeps, |b| {
                // depth 1: my row chunks (round-robin over CEs).
                b.repeat(my_chunks, |b| {
                    let off = |base: u64| AddressExpr::new(base + base_off).with_coeff(1, stride);
                    // x chunk into registers.
                    prefetch(b, off(x_base), 32);
                    consume(b, 32, 0);
                    // one triad per diagonal.
                    for d in 0..u64::from(bw) {
                        prefetch(b, off(diag(d)), 32);
                        consume(b, 32, 2);
                    }
                    // register shifts for the off-diagonal alignment.
                    vreg(b, 32, 0);
                    gwrite(b, off(y_base), 32);
                });
            });
        });
        gang.finish()
    }

    /// MFLOPS on a fresh Cedar with `clusters` clusters.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn mflops_on_cedar(&self, clusters: usize) -> cedar_machine::Result<f64> {
        Ok(self.report_on_cedar(clusters)?.mflops)
    }

    /// As [`mflops_on_cedar`](BandedMatvec::mflops_on_cedar), but return
    /// the full run report (for simulated-cycle accounting).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn report_on_cedar(&self, clusters: usize) -> cedar_machine::Result<RunReport> {
        let mut m = Machine::new(
            cedar_machine::MachineConfig::cedar_with_clusters(clusters.clamp(1, 4))
                .with_env_threads(),
        )?;
        let progs = self.build(&mut m, clusters.clamp(1, 4));
        m.run(progs, 4_000_000_000)
    }

    /// [`Self::report_on_cedar`] with machine-level crash recovery: the
    /// run auto-checkpoints to `snap` every `every` cycles, and with
    /// `resume` an existing snapshot continues the interrupted run
    /// (bit-identically) instead of restarting it.
    ///
    /// # Errors
    ///
    /// As [`Self::report_on_cedar`], plus snapshot read/validation
    /// failures.
    pub fn report_on_cedar_recoverable(
        &self,
        clusters: usize,
        snap: &std::path::Path,
        every: u64,
        resume: bool,
    ) -> cedar_machine::Result<RunReport> {
        let cfg = cedar_machine::MachineConfig::cedar_with_clusters(clusters.clamp(1, 4))
            .with_env_threads()
            .with_checkpoint(every, snap);
        let mut m = Machine::new(cfg)?;
        let progs = self.build(&mut m, clusters.clamp(1, 4));
        if resume && snap.exists() {
            m.resume_from_file(progs, snap, 4_000_000_000)
        } else {
            m.run(progs, 4_000_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_accounting_matches_emission() {
        let mut m = Machine::cedar().unwrap();
        let k = BandedMatvec {
            n: 4096,
            bandwidth: 3,
            sweeps: 1,
        };
        let progs = k.build(&mut m, 1);
        let r = m.run(progs, 100_000_000).unwrap();
        assert_eq!(r.flops, k.flops());
    }

    #[test]
    fn wider_bands_deliver_more_mflops() {
        // More triads per x-load and per y-store: arithmetic intensity
        // rises with bandwidth, exactly the CM-5 study's BW=3 vs BW=11
        // contrast.
        let narrow = BandedMatvec {
            n: 16_384,
            bandwidth: 3,
            sweeps: 1,
        }
        .mflops_on_cedar(4)
        .unwrap();
        let wide = BandedMatvec {
            n: 16_384,
            bandwidth: 11,
            sweeps: 1,
        }
        .mflops_on_cedar(4)
        .unwrap();
        assert!(
            wide > narrow * 1.2,
            "bandwidth 11 should outrate 3: {narrow:.1} vs {wide:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be odd")]
    fn even_bandwidth_rejected() {
        let mut m = Machine::cedar().unwrap();
        BandedMatvec {
            n: 1024,
            bandwidth: 4,
            sweeps: 1,
        }
        .build(&mut m, 1);
    }
}

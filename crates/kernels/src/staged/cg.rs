//! The staged conjugate gradient solver (Table 2 "CG" and the PPT4
//! scalability study).
//!
//! Each iteration performs a 5-diagonal matrix–vector product plus vector
//! and reduction operations of size `N` (§4.3). Rows are block-partitioned
//! over the CEs; global reductions go through the memory-based
//! synchronization instructions, and each phase ends at a multicluster
//! barrier — the structure whose fixed costs make small problems
//! *intermediate* and large problems *high* performance on Cedar.

use cedar_machine::ids::CeId;
use cedar_machine::machine::{Machine, RunReport};
use cedar_machine::memory::sync::SyncInstr;
use cedar_machine::program::{AddressExpr, Op, Program};
use cedar_machine::sched::BarrierScope;
use cedar_xylem::gang::Gang;

use super::{consume, gwrite, prefetch, vreg};

/// Staged CG configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedCg {
    /// System size `N` (1 K–172 K in the paper's study).
    pub n: u64,
    /// CG iterations to run (timing is per-iteration-stable after 1).
    pub iterations: u32,
}

/// Runtime cost charged at the head of each of CG's parallel phases
/// (loop dispatch through the runtime library) — the fixed cost that
/// makes small systems intermediate and large systems high band.
const PHASE_OVERHEAD: u32 = 250;

/// Software cycles around each multicluster barrier.
const BARRIER_SOFTWARE: u32 = 30;

impl StagedCg {
    /// A mid-sized study point.
    pub fn new(n: u64) -> StagedCg {
        StagedCg { n, iterations: 4 }
    }

    /// Flops per the CG iteration breakdown (~20·N per iteration).
    pub fn flops(&self) -> u64 {
        // matvec: 5 triads ×2 flops; dots: 2 ×2; axpy/updates: 3 ×2.
        u64::from(self.iterations) * self.n_padded() * 20
    }

    fn n_padded(&self) -> u64 {
        self.n.div_ceil(32) * 32
    }

    /// Build per-CE programs over the first `clusters` clusters of `m`
    /// using `ces` CEs (≤ clusters × CEs-per-cluster; the study varies P
    /// from 2 to 32).
    ///
    /// # Panics
    ///
    /// Panics if `ces` is zero or exceeds the machine.
    pub fn build(&self, m: &mut Machine, ces: usize) -> Vec<(CeId, Program)> {
        let cpc = m.config().ces_per_cluster;
        assert!(ces > 0 && ces <= m.config().total_ces());
        let p = ces as u64;
        let chunks = self.n_padded() / 32;
        // Layout: 5 diagonals, then p, q, r, x vectors.
        let n = self.n_padded();
        let diag = |d: u64| d * n;
        let p_base = 5 * n;
        let q_base = 6 * n;
        let r_base = 7 * n;
        let x_base = 8 * n;
        // Reduction cells: one per dot product per iteration (epochless:
        // use a distinct address per (iteration, dot) to avoid resets).
        let red_base = 9 * n + 512;

        let barrier = m.alloc_barrier(BarrierScope::Global, ces as u32);
        // Chunk ownership: chunk c belongs to CE c mod p (round-robin so
        // odd sizes stay balanced).
        let my_chunks = |i: u64| -> u32 { (chunks / p + u64::from(chunks % p > i)) as u32 };

        let gang = {
            let mut gang = Gang::of_ces((0..ces).map(CeId).collect(), cpc);
            gang.each(|i, _ce, b| {
                let i = i as u64;
                let nchunks = my_chunks(i);
                // Chunk index = i + p·t ⇒ word offset = 32·(i + p·t).
                let base_off = 32 * i;
                let stride = (32 * p) as i64;
                // Start skew: spreads the CEs' module-sweep phases.
                b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
                // depth 0: iteration loop.
                b.repeat(self.iterations, |b| {
                    // ---- matvec q = A·p ----
                    b.scalar(PHASE_OVERHEAD);
                    b.repeat(nchunks, |b| {
                        let off =
                            |base: u64| AddressExpr::new(base + base_off).with_coeff(1, stride);
                        prefetch(b, off(p_base), 32);
                        consume(b, 32, 0);
                        for d in 0..5 {
                            prefetch(b, off(diag(d)), 32);
                            consume(b, 32, 2);
                        }
                        // shift/recombine of p neighbours.
                        vreg(b, 32, 0);
                        gwrite(b, off(q_base), 32);
                    });
                    // ---- dot p·q (local partial then global reduce) ----
                    b.scalar(PHASE_OVERHEAD);
                    b.repeat(nchunks, |b| {
                        let off =
                            |base: u64| AddressExpr::new(base + base_off).with_coeff(1, stride);
                        prefetch(b, off(q_base), 32);
                        consume(b, 32, 2);
                    });
                    b.push(Op::SyncOp {
                        addr: AddressExpr::new(red_base).with_coeff(0, 4),
                        instr: SyncInstr::fetch_add(1),
                    });
                    b.scalar(BARRIER_SOFTWARE);
                    b.push(Op::Barrier { barrier });
                    b.scalar(8); // alpha = rr/pq
                                 // ---- x += alpha p ; r -= alpha q ----
                    b.scalar(PHASE_OVERHEAD);
                    b.repeat(nchunks, |b| {
                        let off =
                            |base: u64| AddressExpr::new(base + base_off).with_coeff(1, stride);
                        prefetch(b, off(p_base), 32);
                        consume(b, 32, 2);
                        gwrite(b, off(x_base), 32);
                        prefetch(b, off(q_base), 32);
                        consume(b, 32, 2);
                        gwrite(b, off(r_base), 32);
                    });
                    // ---- dot r·r then beta, p = r + beta p ----
                    b.scalar(PHASE_OVERHEAD);
                    b.repeat(nchunks, |b| {
                        let off =
                            |base: u64| AddressExpr::new(base + base_off).with_coeff(1, stride);
                        prefetch(b, off(r_base), 32);
                        consume(b, 32, 2);
                    });
                    b.push(Op::SyncOp {
                        addr: AddressExpr::new(red_base + 1).with_coeff(0, 4),
                        instr: SyncInstr::fetch_add(1),
                    });
                    b.scalar(BARRIER_SOFTWARE);
                    b.push(Op::Barrier { barrier });
                    b.scalar(8); // beta
                    b.scalar(PHASE_OVERHEAD);
                    b.repeat(nchunks, |b| {
                        let off =
                            |base: u64| AddressExpr::new(base + base_off).with_coeff(1, stride);
                        prefetch(b, off(r_base), 32);
                        consume(b, 32, 2);
                        gwrite(b, off(p_base), 32);
                    });
                    b.scalar(BARRIER_SOFTWARE);
                    b.push(Op::Barrier { barrier });
                });
            });
            gang
        };
        gang.finish()
    }

    /// Run on a fresh Cedar restricted to `ces` CEs and return MFLOPS.
    ///
    /// # Errors
    ///
    /// Propagates machine errors (notably the cycle limit on deadlock).
    pub fn mflops_on_cedar(&self, ces: usize) -> cedar_machine::Result<f64> {
        // Use the intended flop count (identical to emitted — checked in
        // tests) so rates stay comparable across P.
        Ok(self.report_on_cedar(ces)?.mflops)
    }

    /// Run on a fresh Cedar restricted to `ces` CEs and return the full
    /// run report (the throughput benchmarks need simulated cycle counts,
    /// not just the rate).
    ///
    /// # Errors
    ///
    /// Propagates machine errors (notably the cycle limit on deadlock).
    pub fn report_on_cedar(&self, ces: usize) -> cedar_machine::Result<RunReport> {
        let clusters = ces.div_ceil(8).max(1);
        let mut m = Machine::new(
            cedar_machine::MachineConfig::cedar_with_clusters(clusters.min(4)).with_env_threads(),
        )?;
        let progs = self.build(&mut m, ces);
        m.run(progs, 2_000_000_000)
    }

    /// [`Self::report_on_cedar`] with machine-level crash recovery: the
    /// run auto-checkpoints to `snap` every `every` cycles, and with
    /// `resume` an existing snapshot continues the interrupted run
    /// (bit-identically) instead of restarting it.
    ///
    /// # Errors
    ///
    /// As [`Self::report_on_cedar`], plus snapshot read/validation
    /// failures.
    pub fn report_on_cedar_recoverable(
        &self,
        ces: usize,
        snap: &std::path::Path,
        every: u64,
        resume: bool,
    ) -> cedar_machine::Result<RunReport> {
        let clusters = ces.div_ceil(8).max(1);
        let cfg = cedar_machine::MachineConfig::cedar_with_clusters(clusters.min(4))
            .with_env_threads()
            .with_checkpoint(every, snap);
        let mut m = Machine::new(cfg)?;
        let progs = self.build(&mut m, ces);
        if resume && snap.exists() {
            m.resume_from_file(progs, snap, 2_000_000_000)
        } else {
            m.run(progs, 2_000_000_000)
        }
    }
}

/// The flop accounting per emitted iteration chunk must match
/// [`StagedCg::flops`]: 5 triads (10) + 3 dots/updates… verified by test.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_flop_accounting_matches_model() {
        let mut m = Machine::cedar().unwrap();
        let cg = StagedCg {
            n: 2048,
            iterations: 2,
        };
        let progs = cg.build(&mut m, 8);
        let r = m.run(progs, 100_000_000).unwrap();
        assert_eq!(r.flops, cg.flops());
    }

    #[test]
    fn cg_balances_chunks_over_uneven_ce_counts() {
        let mut m = Machine::cedar().unwrap();
        let cg = StagedCg {
            n: 3200, // 100 chunks over 6 CEs: 17,17,17,17,16,16
            iterations: 1,
        };
        let progs = cg.build(&mut m, 6);
        let r = m.run(progs, 100_000_000).unwrap();
        assert_eq!(r.flops, cg.flops());
        let flops: Vec<u64> = r.ce_stats.iter().map(|(_, s)| s.flops).collect();
        let max = *flops.iter().max().unwrap();
        let min = *flops.iter().min().unwrap();
        assert!(max - min <= max / 10, "imbalance: {flops:?}");
    }

    #[test]
    fn cg_scales_with_more_ces_on_large_problems() {
        let cg = StagedCg {
            n: 32 * 1024,
            iterations: 2,
        };
        let m8 = cg.mflops_on_cedar(8).unwrap();
        let m32 = cg.mflops_on_cedar(32).unwrap();
        assert!(
            m32 > 1.8 * m8,
            "32 CEs should be much faster than 8 on N=32K: {m8:.1} -> {m32:.1}"
        );
    }

    #[test]
    fn cg_efficiency_collapses_on_tiny_problems() {
        let eff = |n: u64, ces: usize| {
            let cg = StagedCg { n, iterations: 2 };
            let mf = cg.mflops_on_cedar(ces).unwrap();
            let one = StagedCg { n, iterations: 2 }.mflops_on_cedar(1).unwrap();
            mf / (one * ces as f64)
        };
        let small = eff(1024, 32);
        let large = eff(64 * 1024, 32);
        assert!(
            large > small,
            "efficiency should grow with N: small={small:.2} large={large:.2}"
        );
    }
}

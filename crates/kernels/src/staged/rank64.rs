//! The rank-64 update on Cedar: the Table 1 kernel.
//!
//! Three versions differing only in the mode of access and the transfer
//! of subblocks to the cluster cache (§4.1):
//!
//! * **GM/no-pref** — all vector accesses go directly to global memory
//!   without prefetching: throughput is pinned by the 13-cycle latency ×
//!   2 outstanding requests per CE.
//! * **GM/pref** — identical, but every global stream is prefetched
//!   (the hand-coded kernel uses 256-word blocks and overlaps
//!   aggressively, which is also the "RK" row of Table 2).
//! * **GM/cache** — the 64-column A panel for the current row block is
//!   copied once into a cached cluster work array; the 64 reuses then run
//!   at cache speed.
//!
//! The A matrix is stored in packed panels (row-chunk major) so that
//! prefetch streams are unit-stride, as a hand-tuned kernel would lay it
//! out. All matrices live in global memory.

use cedar_machine::ids::{CeId, ClusterId};
use cedar_machine::machine::Machine;
use cedar_machine::program::{AddressExpr, Program, ProgramBuilder};
use cedar_machine::sched::BarrierScope;
use cedar_xylem::gang::Gang;

use super::{consume, cread, gread, gwrite, prefetch, vreg};

/// Which memory strategy the kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rank64Version {
    /// Direct global accesses, no prefetch.
    GmNoPrefetch,
    /// Prefetched global accesses with the given block size in words
    /// (32 = compiler-generated, 256 = hand-coded RK).
    GmPrefetch { block_words: u32 },
    /// A panels staged through the cluster cache.
    GmCache,
}

/// The rank-64 update kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rank64 {
    /// Matrix dimension `n` (C is n×n). Must be a multiple of
    /// 32 × total CEs.
    pub n: u32,
    /// Rank of the update (the paper's kernel: 64).
    pub k: u32,
    /// Memory strategy.
    pub version: Rank64Version,
}

impl Rank64 {
    /// The paper's kernel at a simulation-friendly size.
    pub fn new(version: Rank64Version) -> Rank64 {
        Rank64 {
            n: 256,
            k: 64,
            version,
        }
    }

    /// Floating-point operations of the update: `2·n²·k`.
    pub fn flops(&self) -> u64 {
        2 * u64::from(self.n) * u64::from(self.n) * u64::from(self.k)
    }

    /// Build the per-CE programs for the first `clusters` clusters of `m`.
    /// Columns are block-partitioned; uneven counts give the first CEs one
    /// extra column.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of 32, `k` not a multiple of 8, or
    /// there are fewer columns than CEs.
    pub fn build(&self, m: &mut Machine, clusters: usize) -> Vec<(CeId, Program)> {
        let cpc = m.config().ces_per_cluster;
        let p = clusters * cpc;
        assert!(self.n.is_multiple_of(32), "n must be a multiple of 32");
        assert!(
            self.n as usize >= p,
            "n={} must be at least the CE count {p}",
            self.n
        );
        assert!(self.k.is_multiple_of(8), "k must be a multiple of 8");

        let n = u64::from(self.n);
        let k = u64::from(self.k);
        let chunks = n / 32; // row chunks
                             // Global layout: packed A panels, then B (col-major, k×n), then C.
        let a_base = 0u64;
        let b_base = a_base + n * k;
        let c_base = b_base + k * n;

        match self.version {
            Rank64Version::GmNoPrefetch => {
                self.build_gm(m, clusters, p, chunks, a_base, b_base, c_base, None)
            }
            Rank64Version::GmPrefetch { block_words } => self.build_gm(
                m,
                clusters,
                p,
                chunks,
                a_base,
                b_base,
                c_base,
                Some(block_words),
            ),
            Rank64Version::GmCache => {
                self.build_cache(m, clusters, cpc, chunks, a_base, b_base, c_base)
            }
        }
    }

    /// The two pure-global-memory versions.
    #[allow(clippy::too_many_arguments)]
    fn build_gm(
        &self,
        m: &mut Machine,
        clusters: usize,
        p: usize,
        chunks: u64,
        a_base: u64,
        b_base: u64,
        c_base: u64,
        block: Option<u32>,
    ) -> Vec<(CeId, Program)> {
        let cpc = m.config().ces_per_cluster;
        let n = u64::from(self.n);
        let k = u64::from(self.k);
        let mut gang = Gang::clusters(clusters, cpc);
        gang.each(|i, _ce, b| {
            let (first_col, my_cols) = split(n, p as u64, i as u64);
            // Skew the CEs' start times so the shared A-panel streams do
            // not sweep the interleaved modules in lockstep (on the real
            // machine self-scheduling and interrupts provide this skew
            // for free; our static programs must add it).
            b.scalar(1 + (i as u32) * 4 + (i as u32) / 8);
            // depth 0: local column loop.
            b.repeat(my_cols as u32, |b| {
                // Load the b column (k words) into registers.
                let baddr = AddressExpr::new(b_base + first_col * k).with_coeff(0, k as i64);
                match block {
                    Some(_) => {
                        prefetch(b, baddr, self.k);
                        consume(b, self.k, 0);
                    }
                    None => gread(b, baddr, self.k, 0),
                }
                // depth 1: row-chunk loop.
                b.repeat(chunks as u32, |b| {
                    let caddr = AddressExpr::new(c_base + first_col * n)
                        .with_coeff(0, n as i64)
                        .with_coeff(1, 32);
                    // Load the C chunk.
                    match block {
                        Some(_) => {
                            prefetch(b, caddr.clone(), 32);
                            consume(b, 32, 0);
                        }
                        None => gread(b, caddr.clone(), 32, 0),
                    }
                    // 64 chained triads against the packed A panel.
                    let panel = AddressExpr::new(a_base).with_coeff(1, (k * 32) as i64);
                    match block {
                        None => {
                            // depth 2: k loop, direct reads.
                            b.repeat(self.k, |b| {
                                gread(b, panel.clone().with_coeff(2, 32), 32, 2);
                            });
                        }
                        Some(bw) => {
                            let triads_per_block = (bw / 32).max(1);
                            let groups = self.k / triads_per_block;
                            // The hand-coded large-block kernel rotates
                            // each CE's accumulation order so the CEs do
                            // not sweep the memory modules in lockstep
                            // (addition commutes; the compiler's 32-word
                            // version does not bother).
                            let rot = if bw >= 64 { i as u32 % groups } else { 0 };
                            let emit_groups = |b: &mut ProgramBuilder, count: u32, first: u32| {
                                if count == 0 {
                                    return;
                                }
                                let base =
                                    AddressExpr::new(a_base + u64::from(first) * u64::from(bw))
                                        .with_coeff(1, (k * 32) as i64);
                                // depth 2: prefetch-block loop.
                                b.repeat(count, |b| {
                                    prefetch(b, base.clone().with_coeff(2, i64::from(bw)), bw);
                                    b.repeat(triads_per_block, |b| {
                                        consume(b, 32, 2);
                                    });
                                });
                            };
                            emit_groups(b, groups - rot, rot);
                            emit_groups(b, rot, 0);
                        }
                    }
                    // Store the C chunk.
                    gwrite(b, caddr, 32);
                });
            });
        });
        gang.finish()
    }

    /// The cluster-cache version: A panels staged per cluster.
    #[allow(clippy::too_many_arguments)]
    fn build_cache(
        &self,
        m: &mut Machine,
        clusters: usize,
        cpc: usize,
        chunks: u64,
        a_base: u64,
        b_base: u64,
        c_base: u64,
    ) -> Vec<(CeId, Program)> {
        let n = u64::from(self.n);
        let k = u64::from(self.k);
        let panel_words = k * 32;
        // One barrier per cluster, reused (epoch-addressed) across chunks.
        let barriers: Vec<_> = (0..clusters)
            .map(|c| m.alloc_barrier(BarrierScope::Cluster(ClusterId(c)), cpc as u32))
            .collect();
        let copy_share = (panel_words / cpc as u64) as u32;
        let mut gang = Gang::clusters(clusters, cpc);
        gang.each(|_, ce, b| {
            let cluster = ce.cluster(cpc).0;
            let lane = ce.index_in_cluster(cpc) as u64;
            let (cluster_first, cluster_cols) = split(n, clusters as u64, cluster as u64);
            let (lane_off, my_cols) = split(cluster_cols, cpc as u64, lane);
            let first_col = cluster_first + lane_off;
            let work = 0u64; // cluster work array base
                             // depth 0: row-chunk loop.
            b.repeat(chunks as u32, |b| {
                // Cooperative panel copy-in: my share, prefetched.
                cedar_xylem::copy::global_to_cluster(
                    b,
                    a_base + lane * u64::from(copy_share),
                    work + lane * u64::from(copy_share),
                    copy_share,
                    Some((cedar_xylem::gang::LoopVar::direct(0), panel_words as i64, 0)),
                    true,
                );
                b.push(cedar_machine::program::Op::Barrier {
                    barrier: barriers[cluster],
                });
                // depth 1: my columns.
                b.repeat(my_cols as u32, |b| {
                    // b column into registers (PFU is otherwise idle here).
                    let baddr = AddressExpr::new(b_base + first_col * k).with_coeff(1, k as i64);
                    prefetch(b, baddr, self.k);
                    consume(b, self.k, 0);
                    // C chunk into registers.
                    let caddr = AddressExpr::new(c_base + first_col * n)
                        .with_coeff(1, n as i64)
                        .with_coeff(0, 32);
                    prefetch(b, caddr.clone(), 32);
                    consume(b, 32, 0);
                    // depth 2: 64 triads at cache speed.
                    b.repeat(self.k, |b| {
                        cread(b, AddressExpr::new(work).with_coeff(2, 32), 32, 2);
                    });
                    gwrite(b, caddr, 32);
                });
                b.push(cedar_machine::program::Op::Barrier {
                    barrier: barriers[cluster],
                });
            });
        });
        gang.finish()
    }
}

/// Block-partition `total` items over `parts`, giving part `i` its
/// `(start, count)`; the first `total % parts` parts get one extra item.
fn split(total: u64, parts: u64, i: u64) -> (u64, u64) {
    let base = total / parts;
    let extra = total % parts;
    let count = base + u64::from(i < extra);
    let start = i * base + i.min(extra);
    (start, count)
}

/// A register-only calibration variant: what the machine would do with an
/// infinitely fast memory system (used to compute effective peak).
pub fn effective_peak_program(n: u32, k: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let chunks = n / 32;
    b.repeat(n, |b| {
        b.repeat(chunks, |b| {
            b.repeat(k, |b| {
                vreg(b, 32, 2);
            });
        });
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: u64 = 200_000_000;

    fn mflops(version: Rank64Version, clusters: usize, n: u32) -> f64 {
        let mut m = Machine::cedar().unwrap();
        let kern = Rank64 { n, k: 64, version };
        let progs = kern.build(&mut m, clusters);
        let r = m.run(progs, LIMIT).unwrap();
        assert_eq!(r.flops, kern.flops(), "flop accounting");
        r.mflops
    }

    #[test]
    fn no_prefetch_one_cluster_is_latency_bound() {
        let mf = mflops(Rank64Version::GmNoPrefetch, 1, 64);
        // Paper: 14.5 MFLOPS on 8 CEs. Accept a generous band.
        assert!(mf > 8.0 && mf < 25.0, "GM/no-pref 1 cluster = {mf:.1}");
    }

    #[test]
    fn prefetch_beats_no_prefetch_substantially() {
        let nopref = mflops(Rank64Version::GmNoPrefetch, 1, 64);
        let pref = mflops(Rank64Version::GmPrefetch { block_words: 256 }, 1, 64);
        let ratio = pref / nopref;
        assert!(
            ratio > 2.0,
            "prefetch should give ~3.5x on one cluster: {nopref:.1} -> {pref:.1}"
        );
    }

    #[test]
    fn cache_version_scales_and_beats_prefetch_at_four_clusters() {
        let pref4 = mflops(Rank64Version::GmPrefetch { block_words: 256 }, 4, 256);
        let cache4 = mflops(Rank64Version::GmCache, 4, 256);
        assert!(
            cache4 > pref4,
            "cache should win at 4 clusters: pref={pref4:.1} cache={cache4:.1}"
        );
    }

    #[test]
    fn effective_peak_is_about_three_quarters_of_absolute() {
        let mut m = Machine::cedar().unwrap();
        let p = effective_peak_program(32, 64);
        let r = m
            .run(vec![(cedar_machine::ids::CeId(0), p)], LIMIT)
            .unwrap();
        // absolute peak 11.76 MFLOPS; startup-limited ~8.4-8.6.
        assert!(
            r.mflops > 7.5 && r.mflops < 9.5,
            "effective peak per CE = {:.2}",
            r.mflops
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn non_chunked_n_rejected() {
        let mut m = Machine::cedar().unwrap();
        Rank64 {
            n: 100,
            k: 64,
            version: Rank64Version::GmNoPrefetch,
        }
        .build(&mut m, 3);
    }

    #[test]
    fn uneven_column_split_covers_everything() {
        // 3 clusters × 8 CEs = 24 CEs over 256 columns: uneven split.
        let mut m = Machine::cedar().unwrap();
        let kern = Rank64 {
            n: 256,
            k: 64,
            version: Rank64Version::GmCache,
        };
        let progs = kern.build(&mut m, 3);
        let r = m.run(progs, 500_000_000).unwrap();
        assert_eq!(r.flops, kern.flops());
    }

    #[test]
    fn split_partitions_exactly() {
        for total in [1u64, 7, 24, 256] {
            for parts in [1u64, 3, 8, 24] {
                let mut covered = 0;
                let mut next = 0;
                for i in 0..parts {
                    let (start, count) = super::split(total, parts, i);
                    assert_eq!(start, next, "contiguous");
                    next = start + count;
                    covered += count;
                }
                assert_eq!(covered, total, "total={total} parts={parts}");
            }
        }
    }
}

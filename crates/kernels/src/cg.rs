//! The conjugate gradient iterative solver.
//!
//! The PPT4 study measures "a simple conjugate gradient algorithm"
//! solving 5-diagonal systems with matrix–vector products plus vector and
//! reduction operations of size `N`, `1K ≤ N ≤ 172K`. This is the numeric
//! implementation; its staged counterpart drives the scalability
//! experiment.

use crate::banded::BandedMatrix;

/// Result of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Solve `A·x = b` by conjugate gradients, starting from `x = 0`.
///
/// `A` must be symmetric positive definite for convergence guarantees
/// (the 5-diagonal Laplacian of the study is).
///
/// # Panics
///
/// Panics if `b` and `x` lengths do not match `A`.
pub fn cg_solve(a: &BandedMatrix, b: &[f64], x: &mut [f64], tol: f64, max_iter: usize) -> CgResult {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    x.fill(0.0);

    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rr = dot(&r, &r);
    let bnorm = rr.sqrt().max(f64::MIN_POSITIVE);

    for it in 0..max_iter {
        if rr.sqrt() <= tol * bnorm {
            return CgResult {
                iterations: it,
                residual: rr.sqrt(),
                converged: true,
            };
        }
        a.matvec(&p, &mut q);
        let pq = dot(&p, &q);
        let alpha = rr / pq;
        axpy(alpha, &p, x);
        axpy(-alpha, &q, &mut r);
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    CgResult {
        iterations: max_iter,
        residual: rr.sqrt(),
        converged: rr.sqrt() <= tol * bnorm,
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Flops of one CG iteration on an `n`-point 5-diagonal system:
/// matvec (~2·5n) + 2 dots (2·2n) + 3 axpy-like updates (2·3n) ≈ 20n.
pub fn cg_iteration_flops(n: u64) -> u64 {
    let matvec = 2 * 5 * n;
    let dots = 2 * 2 * n;
    let updates = 3 * 2 * n;
    matvec + dots + updates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_solves_penta_laplacian() {
        let n = 200;
        let a = BandedMatrix::penta_laplacian(n);
        let xtrue: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        let res = cg_solve(&a, &b, &mut x, 1e-10, 2 * n);
        assert!(res.converged, "residual {}", res.residual);
        for (got, want) in x.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn cg_on_zero_rhs_converges_instantly() {
        let a = BandedMatrix::penta_laplacian(10);
        let b = vec![0.0; 10];
        let mut x = vec![1.0; 10];
        let res = cg_solve(&a, &b, &mut x, 1e-12, 100);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn iteration_flops_are_about_20n() {
        assert_eq!(cg_iteration_flops(1000), 20_000);
    }

    #[test]
    fn cg_hits_iteration_budget_on_hard_tolerance() {
        let n = 50;
        let a = BandedMatrix::penta_laplacian(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = cg_solve(&a, &b, &mut x, 0.0, 3);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }
}

//! End-to-end behaviour of the simulated machine, including calibration
//! checks against the paper's headline numbers:
//!
//! * ~13-cycle unloaded global-memory latency (2 outstanding requests →
//!   ~0.15 words/cycle per CE without prefetch);
//! * ~8-cycle minimal first-word prefetch latency, ~1-cycle interarrival;
//! * prefetch sustains roughly the 24 MB/s-per-processor module bandwidth;
//! * self-scheduled loops partition iterations exactly;
//! * cluster and global barriers synchronize.

use cedar_machine::ids::CeId;
use cedar_machine::machine::{CounterScope, Machine};
use cedar_machine::program::{AddressExpr, MemOperand, Op, Program, ProgramBuilder, VectorOp};
use cedar_machine::sched::BarrierScope;
use cedar_machine::{ClusterId, MachineConfig, MachineError};

const LIMIT: u64 = 2_000_000;

fn vec_op(length: u32, fpe: u8, operand: MemOperand) -> VectorOp {
    VectorOp {
        length,
        flops_per_element: fpe,
        operand,
    }
}

#[test]
fn empty_machine_runs_nothing() {
    let mut m = Machine::cedar().unwrap();
    let r = m.run(vec![], LIMIT).unwrap();
    assert_eq!(r.flops, 0);
    assert!(r.cycles <= 1);
}

#[test]
fn register_vector_op_takes_startup_plus_length() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.vector(vec_op(32, 2, MemOperand::None));
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    assert_eq!(r.flops, 64);
    // startup 12 + 32 elements, plus a couple of dispatch cycles.
    assert!(r.cycles >= 44 && r.cycles <= 50, "cycles={}", r.cycles);
}

#[test]
fn direct_global_vector_load_is_latency_bound() {
    // One CE streaming a long vector directly from global memory with two
    // outstanding requests: the paper's no-prefetch mode. Effective rate
    // should be ~2 elements per ~13 cycles ≈ 0.15 words/cycle.
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    let n = 512u32;
    b.repeat(16, |b| {
        b.vector(vec_op(
            32,
            2,
            MemOperand::GlobalRead {
                addr: AddressExpr::new(0).with_coeff(0, 32),
                stride: 1,
            },
        ));
    });
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    let rate = f64::from(n) / r.cycles as f64;
    assert!(
        rate > 0.10 && rate < 0.22,
        "direct-load rate {rate:.3} words/cycle (cycles={})",
        r.cycles
    );
}

#[test]
fn prefetched_vector_load_hides_latency() {
    // Arm+fire a 256-word prefetch, then consume it: sustained rate should
    // approach the module service bound (0.5 words/cycle/module stream —
    // but spread over 32 modules a single CE is limited by its own
    // 1-request-per-cycle issue rate and the reply stream).
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    let blocks = 8u32;
    b.repeat(blocks, |b| {
        b.push(Op::PrefetchArm {
            length: 256,
            stride: 1,
        });
        b.push(Op::PrefetchFire {
            base: AddressExpr::new(0).with_coeff(0, 256),
        });
        b.repeat(8, |b| {
            b.vector(vec_op(32, 2, MemOperand::Prefetched));
        });
    });
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    let words = f64::from(blocks * 256);
    let rate = words / r.cycles as f64;
    assert!(
        rate > 0.45,
        "prefetch rate {rate:.3} words/cycle should beat direct loads by ~3.5x"
    );
    // Monitor: near-minimal latency and interarrival for a single CE.
    assert!(
        r.prefetch.mean_latency() >= 7.0 && r.prefetch.mean_latency() <= 14.0,
        "latency={}",
        r.prefetch.mean_latency()
    );
    assert!(
        r.prefetch.mean_interarrival() <= 2.5,
        "interarrival={}",
        r.prefetch.mean_interarrival()
    );
}

#[test]
fn prefetch_beats_direct_by_paper_factor() {
    // Table 1 shows prefetch improving one-cluster rank-64 by ~3.5x.
    let run = |prefetch: bool| -> u64 {
        let mut m = Machine::cedar().unwrap();
        let mut b = ProgramBuilder::new();
        b.repeat(16, |b| {
            if prefetch {
                b.push(Op::PrefetchArm {
                    length: 32,
                    stride: 1,
                });
                b.push(Op::PrefetchFire {
                    base: AddressExpr::new(0).with_coeff(0, 32),
                });
                b.vector(vec_op(32, 2, MemOperand::Prefetched));
            } else {
                b.vector(vec_op(
                    32,
                    2,
                    MemOperand::GlobalRead {
                        addr: AddressExpr::new(0).with_coeff(0, 32),
                        stride: 1,
                    },
                ));
            }
        });
        m.run(vec![(CeId(0), b.build())], LIMIT).unwrap().cycles
    };
    let direct = run(false) as f64;
    let pref = run(true) as f64;
    let speedup = direct / pref;
    assert!(
        speedup > 2.0 && speedup < 6.0,
        "prefetch speedup {speedup:.2} out of plausible range"
    );
}

#[test]
fn cluster_vector_ops_run_near_cache_bandwidth() {
    // After warmup, 8 CEs streaming from the shared cache should sustain
    // close to 8 words/cycle in aggregate (one stream each).
    let mut m = Machine::cedar().unwrap();
    let mut progs = Vec::new();
    for ce in 0..8usize {
        let mut b = ProgramBuilder::new();
        // Each CE sweeps its own 4KB region twice: first pass warms,
        // second pass hits.
        for _pass in 0..2 {
            b.repeat(16, |b| {
                b.vector(vec_op(
                    32,
                    2,
                    MemOperand::ClusterRead {
                        addr: AddressExpr::new((ce * 4096) as u64).with_coeff(0, 32),
                        stride: 1,
                    },
                ));
            });
        }
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, LIMIT).unwrap();
    let words = 8.0 * 2.0 * 16.0 * 32.0;
    let agg_rate = words / r.cycles as f64;
    assert!(
        agg_rate > 3.0,
        "aggregate cluster-cache rate {agg_rate:.2} words/cycle too low (cycles={})",
        r.cycles
    );
    assert!(r.cache[0].hits > 0);
}

#[test]
fn self_scheduled_cluster_loop_partitions_iterations() {
    // 8 CEs of cluster 0 share 1000 iterations via the concurrency bus;
    // every iteration must execute exactly once (total scalar work).
    let mut m = Machine::cedar().unwrap();
    let counter = m.alloc_counter(CounterScope::Cluster(ClusterId(0)));
    let mut progs = Vec::new();
    for ce in 0..8usize {
        let mut b = ProgramBuilder::new();
        b.self_sched(counter, 1000, 1, |b| {
            b.vector(vec_op(10, 1, MemOperand::None));
        });
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, LIMIT).unwrap();
    // 1000 iterations × 10 elements × 1 flop.
    assert_eq!(r.flops, 10_000);
    // Work spread across CEs: no CE did everything.
    let max_ce = r.ce_stats.iter().map(|(_, s)| s.flops).max().unwrap();
    assert!(max_ce < 10_000, "one CE hogged the loop: {max_ce}");
}

#[test]
fn self_scheduled_global_loop_partitions_iterations_across_clusters() {
    let mut m = Machine::cedar().unwrap();
    let counter = m.alloc_counter(CounterScope::Global);
    let mut progs = Vec::new();
    for ce in 0..32usize {
        let mut b = ProgramBuilder::new();
        b.self_sched(counter, 320, 1, |b| {
            b.vector(vec_op(10, 1, MemOperand::None));
        });
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, LIMIT).unwrap();
    assert_eq!(r.flops, 3_200);
    let participating = r.ce_stats.iter().filter(|(_, s)| s.flops > 0).count();
    assert!(
        participating >= 16,
        "only {participating} CEs got iterations"
    );
}

#[test]
fn chunked_self_scheduling_reduces_dispatches() {
    let run = |chunk: u32| -> u64 {
        let mut m = Machine::cedar().unwrap();
        let counter = m.alloc_counter(CounterScope::Cluster(ClusterId(0)));
        let mut progs = Vec::new();
        for ce in 0..8usize {
            let mut b = ProgramBuilder::new();
            b.self_sched(counter, 512, chunk, |b| {
                b.scalar(2);
            });
            progs.push((CeId(ce), b.build()));
        }
        let r = m.run(progs, LIMIT).unwrap();
        assert_eq!(r.ce_stats.iter().map(|(_, s)| s.flops).sum::<u64>(), 0);
        r.cycles
    };
    let fine = run(1);
    let coarse = run(16);
    assert!(
        coarse < fine,
        "chunking should cut scheduling overhead: fine={fine} coarse={coarse}"
    );
}

#[test]
fn nested_self_scheduled_loop_in_timesteps_reuses_epochs() {
    // The SDOALL-inside-timestep pattern: outer Repeat, inner self-sched.
    // Epoch addressing must give each timestep a fresh counter.
    let mut m = Machine::cedar().unwrap();
    let counter = m.alloc_counter(CounterScope::Cluster(ClusterId(0)));
    let barrier = m.alloc_barrier(BarrierScope::Cluster(ClusterId(0)), 4);
    let mut progs = Vec::new();
    for ce in 0..4usize {
        let mut b = ProgramBuilder::new();
        b.repeat(5, |b| {
            b.self_sched(counter, 40, 1, |b| {
                b.vector(vec_op(8, 1, MemOperand::None));
            });
            b.push(Op::Barrier { barrier });
        });
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, LIMIT).unwrap();
    // 5 timesteps × 40 iterations × 8 flops.
    assert_eq!(r.flops, 1600);
}

#[test]
fn global_barrier_synchronizes_all_clusters() {
    // CE 0 does long work before the barrier; all others must wait.
    let mut m = Machine::cedar().unwrap();
    let barrier = m.alloc_barrier(BarrierScope::Global, 32);
    let mut progs = Vec::new();
    for ce in 0..32usize {
        let mut b = ProgramBuilder::new();
        if ce == 0 {
            b.scalar(5_000);
        }
        b.push(Op::Barrier { barrier });
        b.scalar(10);
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, LIMIT).unwrap();
    // Everyone finishes after CE0's 5000-cycle phase.
    assert!(r.cycles > 5_000, "cycles={}", r.cycles);
    assert!(r.cycles < 8_000, "barrier overhead too large: {}", r.cycles);
}

#[test]
fn fence_waits_for_outstanding_writes() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.vector(vec_op(
        64,
        0,
        MemOperand::GlobalWrite {
            addr: AddressExpr::new(0),
            stride: 1,
        },
    ));
    b.push(Op::Fence);
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    // 64 writes at ~1/cycle plus drain.
    assert!(r.cycles >= 64, "cycles={}", r.cycles);
}

#[test]
fn contention_degrades_prefetch_interarrival_with_more_ces() {
    // The Table 2 phenomenon: 32 CEs prefetching concurrently see larger
    // first-word latency and interarrival than 8 CEs.
    let run = |ces: usize| -> (f64, f64) {
        let mut m = Machine::cedar().unwrap();
        let mut progs = Vec::new();
        for ce in 0..ces {
            let mut b = ProgramBuilder::new();
            b.repeat(16, |b| {
                b.push(Op::PrefetchArm {
                    length: 256,
                    stride: 1,
                });
                // Offset regions by a non-multiple of the module count so
                // the streams do not start bank-aligned.
                b.push(Op::PrefetchFire {
                    base: AddressExpr::new((ce * 100_007) as u64).with_coeff(0, 256),
                });
                b.repeat(8, |b| {
                    b.vector(vec_op(32, 2, MemOperand::Prefetched));
                });
            });
            progs.push((CeId(ce), b.build()));
        }
        let r = m.run(progs, LIMIT).unwrap();
        (r.prefetch.mean_latency(), r.prefetch.mean_interarrival())
    };
    let (lat8, inter8) = run(8);
    let (lat32, inter32) = run(32);
    assert!(
        lat32 > lat8,
        "latency should grow with CEs: {lat8:.1} -> {lat32:.1}"
    );
    assert!(
        inter32 > inter8,
        "interarrival should grow with CEs: {inter8:.2} -> {inter32:.2}"
    );
}

#[test]
fn bad_programs_are_rejected() {
    use cedar_machine::program::BarrierId;
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.push(Op::Barrier {
        barrier: BarrierId(99),
    });
    match m.run(vec![(CeId(0), b.build())], LIMIT) {
        Err(MachineError::BadProgram { .. }) => {}
        other => panic!("expected BadProgram, got {other:?}"),
    }
    let r = m.run(vec![(CeId(99), Program::empty())], LIMIT);
    assert!(matches!(r, Err(MachineError::NoSuchCe(_))));
}

#[test]
fn deadlocked_barrier_is_diagnosed_with_a_hang_report() {
    let mut m = Machine::cedar().unwrap();
    let barrier = m.alloc_barrier(BarrierScope::Global, 2);
    // Only one of the two expected participants arrives. The
    // forward-progress watchdog must catch this as a structured deadlock
    // (naming the stuck CE) long before the generous cycle budget runs
    // out — the run used to burn the whole budget and report only
    // CycleLimitExceeded.
    let mut b = ProgramBuilder::new();
    b.push(Op::Barrier { barrier });
    match m.run(vec![(CeId(0), b.build())], 2_000_000) {
        Err(MachineError::Deadlock { report }) => {
            assert_eq!(report.kind, "synchronization stall");
            assert!(
                report.at_cycle < 100_000,
                "caught late: {}",
                report.at_cycle
            );
            assert_eq!(report.ces.len(), 1);
            assert_eq!(report.ces[0].0, 0);
            assert_eq!(report.barrier_waiters, 1);
            let text = report.to_string();
            assert!(text.contains("ce[0]"), "report names the waiter: {text}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn short_budget_still_reports_cycle_limit() {
    // A budget shorter than the watchdog's first inspection still
    // surfaces as CycleLimitExceeded, unchanged behaviour.
    let mut m = Machine::cedar().unwrap();
    let barrier = m.alloc_barrier(BarrierScope::Global, 2);
    let mut b = ProgramBuilder::new();
    b.push(Op::Barrier { barrier });
    let r = m.run(vec![(CeId(0), b.build())], 1_000);
    assert!(matches!(r, Err(MachineError::CycleLimitExceeded { .. })));
}

#[test]
fn determinism_same_programs_same_cycles() {
    let run = || -> u64 {
        let mut m = Machine::cedar().unwrap();
        let counter = m.alloc_counter(CounterScope::Global);
        let mut progs = Vec::new();
        for ce in 0..32usize {
            let mut b = ProgramBuilder::new();
            b.self_sched(counter, 200, 1, |b| {
                b.push(Op::PrefetchArm {
                    length: 32,
                    stride: 1,
                });
                b.push(Op::PrefetchFire {
                    base: AddressExpr::new(0).with_coeff(0, 32),
                });
                b.vector(vec_op(32, 2, MemOperand::Prefetched));
            });
            progs.push((CeId(ce), b.build()));
        }
        m.run(progs, LIMIT).unwrap().cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn scalar_global_reads_cost_full_latency() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    let n = 50u32;
    b.repeat(n, |b| {
        b.push(Op::ScalarGlobalRead {
            addr: AddressExpr::new(0).with_coeff(0, 7),
        });
    });
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    let per = r.cycles as f64 / f64::from(n);
    assert!(
        (11.0..=20.0).contains(&per),
        "scalar global read should cost ~13 cycles, got {per:.1}"
    );
}

#[test]
fn software_events_reach_the_tracer() {
    let mut m = Machine::cedar().unwrap();
    let mut progs = Vec::new();
    for ce in 0..4usize {
        let mut b = ProgramBuilder::new();
        b.scalar(10 * (ce as u32 + 1));
        b.push(Op::PostEvent { tag: 7 });
        progs.push((CeId(ce), b.build()));
    }
    m.run(progs, 100_000).unwrap();
    let events = m.tracer().events();
    assert_eq!(events.len(), 4);
    // Tags carry the posting CE in the low byte; time stamps are ordered.
    let mut ces: Vec<u32> = events.iter().map(|(_, tag)| tag & 0xff).collect();
    ces.sort_unstable();
    assert_eq!(ces, vec![0, 1, 2, 3]);
    for w in events.windows(2) {
        assert!(w[0].0 <= w[1].0, "trace is time-ordered");
    }
    for (_, tag) in events {
        assert_eq!(tag >> 8, 7);
    }
}

#[test]
fn latency_histogram_agrees_with_pfu_statistics() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.repeat(16, |b| {
        b.push(Op::PrefetchArm {
            length: 32,
            stride: 1,
        });
        b.push(Op::PrefetchFire {
            base: AddressExpr::new(0).with_coeff(0, 32),
        });
        b.vector(vec_op(32, 2, MemOperand::Prefetched));
    });
    let r = m.run(vec![(CeId(0), b.build())], 1_000_000).unwrap();
    let h = m.latency_histogram();
    assert_eq!(h.total(), u64::from(r.prefetch.words_returned as u32));
    // The histogram's mean round trip should bracket the PFU's mean
    // first-word latency (first words are the slowest of each block's
    // pipeline fill, subsequent words stream).
    assert!(
        h.mean() > 3.0 && h.mean() < r.prefetch.mean_latency() + 4.0,
        "histogram mean {:.1} vs PFU first-word latency {:.1}",
        h.mean(),
        r.prefetch.mean_latency()
    );
}

#[test]
fn vm_faults_distinguish_first_touch_from_pte_hits() {
    let mut cfg = MachineConfig::cedar();
    cfg.vm.enabled = true;
    cfg.vm.tlb_entries = 8;
    let mut m = Machine::new(cfg).unwrap();
    // CE 0 (cluster 0) touches 4 pages; CE 8 (cluster 1) then touches the
    // same pages: cluster 1 takes TLB misses but no hard faults.
    let touch = |start_delay: u32| {
        let mut b = ProgramBuilder::new();
        b.scalar(start_delay);
        b.repeat(4, |b| {
            b.push(Op::ScalarGlobalRead {
                addr: AddressExpr::new(0).with_coeff(0, 512),
            });
        });
        b.build()
    };
    let progs = vec![(CeId(0), touch(1)), (CeId(8), touch(150_000))];
    let r = m.run(progs, 10_000_000).unwrap();
    assert_eq!(m.page_table().hard_faults(), 4);
    assert_eq!(m.page_table().soft_faults(), 4);
    let misses: u64 = r.ce_stats.iter().map(|(_, s)| s.tlb_misses).sum();
    assert_eq!(misses, 8);
    let hard: u64 = r.ce_stats.iter().map(|(_, s)| s.page_faults).sum();
    assert_eq!(hard, 4);
    // The soft-faulting CE pays far less than the hard-faulting one.
    let s0 = r.ce_stats.iter().find(|(c, _)| c.0 == 0).unwrap().1;
    let s8 = r.ce_stats.iter().find(|(c, _)| c.0 == 8).unwrap().1;
    assert!(
        s0.vm_cycles > 10 * s8.vm_cycles,
        "{} vs {}",
        s0.vm_cycles,
        s8.vm_cycles
    );
}

#[test]
fn vm_disabled_takes_no_faults() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.repeat(4, |b| {
        b.push(Op::ScalarGlobalRead {
            addr: AddressExpr::new(0).with_coeff(0, 512),
        });
    });
    let r = m.run(vec![(CeId(0), b.build())], 1_000_000).unwrap();
    assert_eq!(
        m.page_table().hard_faults() + m.page_table().soft_faults(),
        0
    );
    assert_eq!(r.ce_stats[0].1.tlb_misses, 0);
}

#[test]
fn gather_is_slower_than_strided_direct_reads() {
    // Gathers hit pseudo-random modules with the same 2-outstanding
    // limit; they cannot be prefetched, so they pay full latency per
    // element like direct reads, with extra module-conflict exposure.
    let run = |gather: bool| -> u64 {
        let mut m = Machine::cedar().unwrap();
        let mut b = ProgramBuilder::new();
        b.repeat(8, |b| {
            let operand = if gather {
                MemOperand::GlobalGather {
                    addr: AddressExpr::new(0),
                }
            } else {
                MemOperand::GlobalRead {
                    addr: AddressExpr::new(0).with_coeff(0, 32),
                    stride: 1,
                }
            };
            b.vector(vec_op(32, 2, operand));
        });
        m.run(vec![(CeId(0), b.build())], LIMIT).unwrap().cycles
    };
    let strided = run(false);
    let gathered = run(true);
    // Same request count; similar latency-bound timing.
    let ratio = gathered as f64 / strided as f64;
    assert!(
        (0.8..=1.5).contains(&ratio),
        "gather/strided ratio {ratio:.2} ({gathered} vs {strided})"
    );
}

#[test]
fn scatter_writes_complete_and_spread_modules() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.vector(vec_op(
        64,
        0,
        MemOperand::GlobalScatter {
            addr: AddressExpr::new(1000),
        },
    ));
    b.push(Op::Fence);
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    assert_eq!(r.memory.requests, 64);
    assert!(r.cycles >= 64);
}

#[test]
fn gather_addresses_are_deterministic_across_runs() {
    let run = || -> u64 {
        let mut m = Machine::cedar().unwrap();
        let mut progs = Vec::new();
        for ce in 0..8usize {
            let mut b = ProgramBuilder::new();
            b.repeat(16, |b| {
                b.vector(vec_op(
                    32,
                    1,
                    MemOperand::GlobalGather {
                        addr: AddressExpr::new((ce * 100_003) as u64).with_coeff(0, 64),
                    },
                ));
            });
            progs.push((CeId(ce), b.build()));
        }
        m.run(progs, LIMIT).unwrap().cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn nested_loop_indices_drive_addresses() {
    // Two nested Repeats; the inner vector op's address depends on both
    // levels. We verify via module request counts: each (i, j) pair
    // touches a distinct address, so the memory sees exactly
    // outer×inner×len requests.
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.repeat(3, |b| {
        b.repeat(4, |b| {
            b.vector(vec_op(
                8,
                1,
                MemOperand::GlobalRead {
                    addr: AddressExpr::new(0).with_coeff(0, 1000).with_coeff(1, 100),
                    stride: 1,
                },
            ));
        });
    });
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    assert_eq!(r.memory.requests, 3 * 4 * 8);
    assert_eq!(r.flops, 3 * 4 * 8);
}

#[test]
fn scalar_flops_run_at_the_configured_rate() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.push(Op::ScalarFlops {
        flops: 1000,
        cycles_per_flop: 4,
    });
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    assert_eq!(r.flops, 1000);
    assert!(r.cycles >= 4000 && r.cycles < 4020, "cycles={}", r.cycles);
}

#[test]
fn prefetch_rewind_reuses_buffered_data_without_new_requests() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.push(Op::PrefetchArm {
        length: 32,
        stride: 1,
    });
    b.push(Op::PrefetchFire {
        base: AddressExpr::new(0),
    });
    b.vector(vec_op(32, 2, MemOperand::Prefetched));
    b.push(Op::PrefetchRewind);
    b.vector(vec_op(32, 2, MemOperand::Prefetched));
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    // Two consumptions, one fetch.
    assert_eq!(r.prefetch.requests, 32);
    assert_eq!(r.flops, 2 * 64);
}

#[test]
fn cluster_write_then_read_hits_the_cache() {
    let mut m = Machine::cedar().unwrap();
    let mut b = ProgramBuilder::new();
    b.vector(vec_op(
        64,
        0,
        MemOperand::ClusterWrite {
            addr: AddressExpr::new(0),
            stride: 1,
        },
    ));
    b.scalar(200); // let fills land
    b.vector(vec_op(
        64,
        2,
        MemOperand::ClusterRead {
            addr: AddressExpr::new(0),
            stride: 1,
        },
    ));
    let r = m.run(vec![(CeId(0), b.build())], LIMIT).unwrap();
    let c = r.cache[0];
    // The write allocated 16 lines; the read hits all 64 words.
    assert!(c.hits >= 64, "hits={}", c.hits);
    assert!(c.misses <= 16, "misses={}", c.misses);
}

#[test]
fn sdoall_counter_used_directly_partitions_by_cluster() {
    let mut m = Machine::cedar().unwrap();
    let counter = m.alloc_counter(CounterScope::SdoallGlobal);
    let mut progs = Vec::new();
    for ce in 0..16usize {
        let mut b = ProgramBuilder::new();
        b.self_sched(counter, 12, 1, |b| {
            b.vector(vec_op(4, 1, MemOperand::None));
        });
        progs.push((CeId(ce), b.build()));
    }
    let r = m.run(progs, LIMIT).unwrap();
    // 12 iterations, each executed by all 8 CEs of the claiming cluster.
    assert_eq!(r.flops, 12 * 8 * 4);
}

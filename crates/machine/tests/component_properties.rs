//! Property-based tests on individual machine components: the cache
//! never loses accesses, the PFU delivers every armed word exactly once,
//! the concurrency bus conserves counter values, and program execution
//! terminates for arbitrary (well-formed) programs.

use proptest::prelude::*;

use cedar_machine::cache::{CacheAccess, ClusterCache};
use cedar_machine::ccbus::CcBus;
use cedar_machine::config::{
    CacheConfig, CcBusConfig, ClusterMemoryConfig, NetworkConfig, PrefetchConfig,
};
use cedar_machine::ids::CeId;
use cedar_machine::memory::cluster_mem::ClusterMemory;
use cedar_machine::network::packet::{Packet, Payload};
use cedar_machine::network::{NetSink, Omega};
use cedar_machine::prefetch::Pfu;
use cedar_machine::time::Cycle;

#[derive(Default)]
struct Feed {
    to_pfu: Vec<(u32, u64)>, // (elem, fire_seq)
}
impl NetSink for Feed {
    fn try_begin(&mut self, _p: usize) -> bool {
        true
    }
    fn deliver(&mut self, _p: usize, pkt: Packet) {
        if let Payload::Request(r) = pkt.payload {
            if let cedar_machine::network::packet::Stream::Prefetch { elem, fire_seq } = r.stream {
                self.to_pfu.push((elem, fire_seq));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every access is eventually serviced: a bounded retry loop over
    /// arbitrary (ce, address, rw) sequences always completes, and hit +
    /// miss counts equal serviced accesses.
    #[test]
    fn cache_services_every_access(
        accesses in prop::collection::vec((0usize..8, 0u64..4096, any::<bool>()), 1..80),
    ) {
        let mut cache = ClusterCache::new(
            &CacheConfig::cedar(),
            8,
            ClusterMemory::new(&ClusterMemoryConfig::cedar()),
        );
        let mut now = Cycle(0);
        let mut serviced = 0u64;
        for &(ce, addr, write) in &accesses {
            let mut guard = 0;
            loop {
                match cache.access(now, ce, addr, write) {
                    CacheAccess::Stall => {
                        now += 1;
                        guard += 1;
                        prop_assert!(guard < 10_000, "access starved");
                    }
                    CacheAccess::Ready { at } | CacheAccess::Pending { at } => {
                        prop_assert!(at >= now, "completion in the past");
                        serviced += 1;
                        now += 1;
                        break;
                    }
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(serviced, accesses.len() as u64);
        // Hits + misses counts only non-stalled accepted accesses (hits on
        // in-flight lines count as neither) — bounded by serviced.
        prop_assert!(s.hits + s.misses <= serviced);
    }

    /// The PFU delivers each armed element exactly once per fire, in
    /// consumable order, regardless of reply order.
    #[test]
    fn pfu_round_trip_exactly_once(
        length in 1u32..64,
        stride in prop::sample::select(vec![1i64, 2, 4, 7]),
        shuffle_seed in 0u64..1000,
    ) {
        let mut pfu = Pfu::new(CeId(0), &PrefetchConfig::cedar(), 512, 32, None);
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Feed::default();
        pfu.arm(length, stride);
        pfu.fire(Cycle(0), 10_000);
        let mut c = 0u64;
        while !pfu.done_issuing() || !net.is_idle() {
            pfu.tick(Cycle(c), 0, &mut net);
            net.tick(&mut sink);
            c += 1;
            prop_assert!(c < 100_000);
        }
        prop_assert_eq!(sink.to_pfu.len(), length as usize);
        // Deliver replies in a seed-shuffled order.
        let mut replies = sink.to_pfu.clone();
        let n = replies.len();
        for i in 0..n {
            let j = ((shuffle_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            replies.swap(i, j);
        }
        for (k, &(elem, seq)) in replies.iter().enumerate() {
            pfu.receive(Cycle(1000 + k as u64), elem, seq);
        }
        let mut consumed = 0;
        while pfu.try_consume() {
            consumed += 1;
        }
        prop_assert_eq!(consumed, length);
        prop_assert!(!pfu.try_consume(), "no extra words");
    }

    /// Cluster-counter grants form an exact partition of 0..limit
    /// regardless of request interleaving.
    #[test]
    fn ccbus_counter_partitions_iteration_space(
        limit in 1u64..60,
        chunk in 1u32..5,
        requesters in prop::collection::vec(0usize..8, 1..40),
    ) {
        let mut bus = CcBus::new(&CcBusConfig::cedar(), 8);
        let slot = bus.alloc_counter();
        let mut granted: Vec<u64> = Vec::new();
        let mut t = 0u64;
        for &ce in &requesters {
            bus.request_counter(ce, slot, 0, chunk, limit);
            // Let the bus drain fully.
            for _ in 0..4 {
                bus.tick(Cycle(t));
                t += 2;
            }
            if let Some(v) = bus.take_grant(ce) {
                if v < limit {
                    granted.push(v);
                }
            }
        }
        granted.sort_unstable();
        granted.dedup();
        // Every granted value is a distinct chunk base below the limit.
        for w in granted.windows(2) {
            prop_assert!(w[1] - w[0] >= u64::from(chunk) || w[1] < limit);
        }
        for &g in &granted {
            prop_assert_eq!(g % u64::from(chunk), 0);
        }
    }
}

//! Machine configuration.
//!
//! [`MachineConfig`] collects every architectural parameter of the simulated
//! machine. [`MachineConfig::cedar`] returns the configuration of the real
//! Cedar as described in the ISCA '93 paper (four Alliant FX/8 clusters of
//! eight CEs, 512 KB cluster caches, a 32-port shuffle-exchange network of
//! 8×8 crossbars, 64 MB of double-word-interleaved global memory, per-CE
//! prefetch units). Alternative configurations support the ablation studies
//! in `cedar-bench`.

use crate::fault::FaultPlan;
use crate::time::CEDAR_CYCLE_NS;

/// Parameters of the shared, interleaved cluster cache (one per cluster).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes (Cedar: 512 KB).
    pub capacity_bytes: usize,
    /// Line size in bytes (Cedar: 32 B = 4 words).
    pub line_bytes: usize,
    /// Set associativity.
    pub associativity: usize,
    /// Number of interleaved banks (Cedar: 4).
    pub banks: usize,
    /// Words the whole cache can deliver per cycle (Cedar: 8; one vector
    /// stream per CE in an 8-CE cluster).
    pub words_per_cycle: u32,
    /// Cycles from a bank accepting a request to data valid on a hit.
    pub hit_latency: u32,
    /// Maximum outstanding misses per CE (Cedar: lockup-free, 2).
    pub max_outstanding_misses_per_ce: u32,
}

impl CacheConfig {
    /// The Alliant FX/8 shared-cache configuration used by Cedar.
    pub fn cedar() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            line_bytes: 32,
            associativity: 2,
            banks: 4,
            words_per_cycle: 8,
            hit_latency: 2,
            max_outstanding_misses_per_ce: 2,
        }
    }

    /// Words per cache line.
    pub fn line_words(&self) -> usize {
        self.line_bytes / 8
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / self.line_bytes / self.associativity
    }
}

/// Parameters of one cluster's local (interleaved) memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMemoryConfig {
    /// Capacity in bytes (Cedar: 32 MB per cluster).
    pub capacity_bytes: usize,
    /// Sustained bandwidth in 64-bit words per cycle for the whole cluster
    /// (Cedar: 192 MB/s ≈ 4 words per 170 ns cycle).
    pub words_per_cycle: u32,
    /// Access latency in cycles for the first word of a line fill.
    pub latency: u32,
}

impl ClusterMemoryConfig {
    /// The Alliant FX/8 cluster-memory configuration.
    pub fn cedar() -> Self {
        ClusterMemoryConfig {
            capacity_bytes: 32 * 1024 * 1024,
            words_per_cycle: 4,
            latency: 8,
        }
    }
}

/// Parameters of the global shuffle-exchange networks (forward and reverse).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Crossbar radix (Cedar: 8×8 switches).
    pub radix: usize,
    /// Queue capacity, in words, on each switch input and output port
    /// (Cedar: two-word queues).
    pub queue_words: usize,
    /// Words a switch moves per port per cycle (Cedar: 1).
    pub words_per_cycle: u32,
}

impl NetworkConfig {
    /// The Cedar global-network configuration. The network stages are
    /// clocked at twice the 170 ns CE instruction cycle (85 ns switch
    /// stages), so each port moves up to two 64-bit words per CE cycle.
    pub fn cedar() -> Self {
        NetworkConfig {
            radix: 8,
            queue_words: 2,
            words_per_cycle: 2,
        }
    }
}

/// Parameters of the global shared memory.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalMemoryConfig {
    /// Capacity in bytes (Cedar: 64 MB).
    pub capacity_bytes: usize,
    /// Number of interleaved modules; the paper's global memory matches the
    /// network at one module per port (32).
    pub modules: usize,
    /// Cycles a module is busy servicing one 64-bit word access. Two cycles
    /// per word yields the paper's 24 MB/s-per-processor peak
    /// (768 MB/s across 32 modules).
    pub service_cycles: u32,
    /// Extra cycles for an indivisible synchronization (Test-And-Operate)
    /// request, performed by the module's synchronization processor.
    pub sync_extra_cycles: u32,
    /// Capacity of each module's input request queue, in requests.
    pub request_queue: usize,
}

impl GlobalMemoryConfig {
    /// The Cedar global-memory configuration.
    pub fn cedar() -> Self {
        GlobalMemoryConfig {
            capacity_bytes: 64 * 1024 * 1024,
            modules: 32,
            service_cycles: 2,
            sync_extra_cycles: 2,
            request_queue: 8,
        }
    }

    /// Words of global memory.
    pub fn capacity_words(&self) -> u64 {
        (self.capacity_bytes / 8) as u64
    }
}

/// Parameters of the per-CE data prefetch unit.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchConfig {
    /// Prefetch buffer capacity in words (Cedar: 512).
    pub buffer_words: u32,
    /// Maximum requests issued without pausing (Cedar: 512, within a page).
    pub max_burst: u32,
    /// Requests the PFU can inject per cycle (Cedar: 1).
    pub issue_per_cycle: u32,
    /// Whether crossing a 4 KB page boundary suspends the PFU until the CE
    /// supplies the next physical address (true on Cedar: the PFU only sees
    /// physical addresses).
    pub page_suspend: bool,
    /// Cycles the CE takes to re-arm a suspended PFU with the next page's
    /// first physical address.
    pub page_resume_cycles: u32,
}

impl PrefetchConfig {
    /// The Cedar PFU configuration.
    pub fn cedar() -> Self {
        PrefetchConfig {
            buffer_words: 512,
            max_burst: 512,
            issue_per_cycle: 1,
            page_suspend: true,
            page_resume_cycles: 6,
        }
    }
}

/// Parameters of each computational element (CE).
#[derive(Debug, Clone, PartialEq)]
pub struct CeConfig {
    /// Vector startup cost in cycles. With 32-element vectors this yields
    /// the paper's 274 MFLOPS "effective peak" against the 376 MFLOPS
    /// absolute peak (ratio ≈ 0.73 at 12 cycles).
    pub vector_startup: u32,
    /// Vector register length in 64-bit words (Cedar: 32; eight registers).
    pub vector_register_words: u32,
    /// Peak floating-point operations per cycle with chaining (Cedar: 2,
    /// i.e. 11.8 MFLOPS at 170 ns).
    pub flops_per_cycle: u32,
    /// Maximum outstanding direct (non-prefetched) global requests
    /// (Cedar: 2).
    pub max_outstanding_global: u32,
    /// CE-side cycles from a global reply landing to the datum being
    /// usable (and the outstanding-request slot freeing). Together with the
    /// ~8-cycle network+memory round trip this forms the paper's 13-cycle
    /// global-memory latency.
    pub global_read_extra: u32,
    /// Cycles between a CE's poll reads while spinning on a global barrier
    /// (runtime-library spin loop body).
    pub barrier_poll_cycles: u32,
}

impl CeConfig {
    /// The Cedar CE configuration.
    pub fn cedar() -> Self {
        CeConfig {
            vector_startup: 12,
            vector_register_words: 32,
            flops_per_cycle: 2,
            max_outstanding_global: 2,
            global_read_extra: 7,
            barrier_poll_cycles: 16,
        }
    }
}

/// Parameters of the per-cluster concurrency control bus.
#[derive(Debug, Clone, PartialEq)]
pub struct CcBusConfig {
    /// Cycles for a `concurrent start` broadcast that spreads a loop across
    /// the cluster ("a few microseconds" in the paper, dominated by the
    /// software around it; the bus itself is fast).
    pub start_cycles: u32,
    /// Cycles for one self-schedule (next-iteration) bus transaction.
    pub dispatch_cycles: u32,
    /// Cycles for a join/barrier once the last CE arrives.
    pub join_cycles: u32,
}

impl CcBusConfig {
    /// The Cedar concurrency-control-bus configuration.
    pub fn cedar() -> Self {
        CcBusConfig {
            start_cycles: 12,
            dispatch_cycles: 2,
            join_cycles: 4,
        }
    }
}

/// Virtual-memory parameters (4 KB pages on Cedar).
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Whether address translation (TLB/page-fault modelling) is enabled.
    pub enabled: bool,
    /// Page size in 64-bit words (4 KB = 512 words).
    pub page_words: u64,
    /// Per-cluster TLB entries.
    pub tlb_entries: usize,
    /// Cycles to service a TLB miss whose PTE is valid in global memory
    /// (the dominant fault in the paper's TRFD analysis).
    pub tlb_miss_cycles: u32,
    /// Cycles to service a hard page fault (Xylem involvement).
    pub page_fault_cycles: u32,
}

impl VmConfig {
    /// The Cedar virtual-memory configuration. Translation is disabled by
    /// default; experiments that study paging (TRFD) switch it on.
    pub fn cedar() -> Self {
        VmConfig {
            enabled: false,
            page_words: 512,
            tlb_entries: 256,
            tlb_miss_cycles: 300,
            page_fault_cycles: 30_000,
        }
    }
}

/// Complete machine configuration.
///
/// Use [`MachineConfig::cedar`] for the paper's machine, or start from it
/// and adjust fields for ablations:
///
/// ```
/// use cedar_machine::config::MachineConfig;
/// let mut cfg = MachineConfig::cedar();
/// cfg.clusters = 2; // a half-size Cedar
/// cfg.validate().unwrap();
/// assert_eq!(cfg.total_ces(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of clusters (Cedar: 4).
    pub clusters: usize,
    /// CEs per cluster (Cedar: 8).
    pub ces_per_cluster: usize,
    /// CE instruction cycle time in nanoseconds (Cedar: 170 ns).
    pub cycle_ns: f64,
    /// Simulation host threads for the cluster phase of each cycle.
    ///
    /// `1` (the default) is the single-threaded engine. Larger values shard
    /// the per-cycle cluster stepping (CEs, cluster cache and memory,
    /// prefetch units, concurrency bus) across `std::thread::scope` workers
    /// with a barrier exchange for cross-cluster traffic; results are
    /// bit-for-bit identical to the single-threaded engine (see
    /// `Machine::run`). Capped at the cluster count; ignored (serial
    /// fallback) when [`VmConfig::enabled`] is set, because page-fault
    /// interleaving is inherently order-dependent.
    pub num_threads: usize,
    /// Chunk length for the partitioned parallel engine, in cycles.
    ///
    /// `0` (the default) derives the chunk length automatically each round
    /// from the machine's conservative lookahead bound — the minimum number
    /// of cycles before shared state (the omega networks and global memory)
    /// can deliver anything back into a cluster. `1` recovers the per-cycle
    /// barrier engine. Larger values cap the automatic bound (they never
    /// raise it: the bound is what keeps results exact). Purely a
    /// wall-clock knob: results are bit-for-bit identical at any setting
    /// (tested). The `CEDAR_CHUNK_CYCLES` environment variable supplies
    /// this at run time when the configured value is 0, so explicit test
    /// legs stay meaningful under a CI env matrix. Only consulted by the
    /// parallel engine (`num_threads > 1`).
    pub chunk_cycles: usize,
    /// Whether the engines may fast-forward over quiescent stretches —
    /// cycles in which no subsystem can change externally visible state —
    /// instead of ticking through them one by one. Purely a wall-clock
    /// optimization: cycle counts, statistics, histograms and memory
    /// digests are bit-for-bit identical either way (tested). `true` by
    /// default; the `CEDAR_NO_FASTFWD` environment variable overrides it
    /// at run time (see `Machine::run`).
    pub fast_forward: bool,
    /// Whether the omega networks run their flow-level fast path (SWAR
    /// sparse switch sweeps plus O(1) replay of fully-stalled horizons)
    /// instead of the dense per-flit oracle sweep. Purely a wall-clock
    /// optimization: both paths are bit-for-bit identical (tested). `true`
    /// by default; the `CEDAR_NO_FLOWPATH` environment variable overrides
    /// it at machine construction.
    pub flow_path: bool,
    /// Whether CEs execute programs through the ahead-of-run lowering
    /// pipeline ([`lower`](crate::lower)): flat micro-op streams with
    /// fused timed runs and bulk stall charging, instead of the
    /// tree-walking interpreter. Purely a wall-clock optimization: both
    /// paths are bit-for-bit identical (tested). `true` by default; the
    /// `CEDAR_NO_LOWER` environment variable overrides it at machine
    /// construction, and enabling the VM model forces the interpreter.
    pub lowered: bool,
    pub ce: CeConfig,
    pub cache: CacheConfig,
    pub cluster_memory: ClusterMemoryConfig,
    pub network: NetworkConfig,
    pub global_memory: GlobalMemoryConfig,
    pub prefetch: PrefetchConfig,
    pub ccbus: CcBusConfig,
    pub vm: VmConfig,
    /// Deterministic fault-injection plan, or `None` (the default) for the
    /// fault-free machine. A plan whose rates and outage lists are all
    /// zero/empty behaves bit-for-bit like `None` (tested).
    pub faults: Option<FaultPlan>,
    /// Deterministic causal-tracing plan, or `None` (the default) for the
    /// untraced machine. A plan with `sample_ppm == 0` behaves bit-for-bit
    /// like `None` (tested): no journey is sampled, no `trace.*` stats key
    /// is emitted.
    pub trace: Option<crate::trace::TracePlan>,
    /// Simulated cycles between automatic mid-run checkpoints, or `0`
    /// (the default) for no auto-checkpointing. Requires
    /// [`checkpoint_path`](Self::checkpoint_path). Checkpoints are taken
    /// at run-loop boundaries only (post-tick in the serial engine,
    /// post-exchange in the parallel engine), so the interval is a floor,
    /// not an exact period. Purely an availability knob: the simulated
    /// results are bit-for-bit identical with checkpointing on or off,
    /// and a run resumed from a checkpoint finishes bit-identical to the
    /// uninterrupted run (tested).
    pub checkpoint_every: u64,
    /// Where the auto-checkpoint writes its snapshot. Each checkpoint
    /// atomically replaces the previous one (temp-file-and-rename), so
    /// the file always holds the latest complete snapshot — a crash
    /// mid-write can never leave a torn file behind.
    pub checkpoint_path: Option<std::path::PathBuf>,
}

impl MachineConfig {
    /// The full 4-cluster, 32-CE Cedar of the ISCA '93 paper.
    pub fn cedar() -> Self {
        MachineConfig {
            clusters: 4,
            ces_per_cluster: 8,
            cycle_ns: CEDAR_CYCLE_NS,
            num_threads: 1,
            chunk_cycles: 0,
            fast_forward: true,
            flow_path: true,
            lowered: true,
            ce: CeConfig::cedar(),
            cache: CacheConfig::cedar(),
            cluster_memory: ClusterMemoryConfig::cedar(),
            network: NetworkConfig::cedar(),
            global_memory: GlobalMemoryConfig::cedar(),
            prefetch: PrefetchConfig::cedar(),
            ccbus: CcBusConfig::cedar(),
            vm: VmConfig::cedar(),
            faults: None,
            trace: None,
            checkpoint_every: 0,
            checkpoint_path: None,
        }
    }

    /// A Cedar restricted to the first `clusters` clusters, as used in the
    /// paper's 1–4 cluster sweeps (the network and global memory keep their
    /// full size; idle CEs simply issue no traffic, as on the real machine).
    pub fn cedar_with_clusters(clusters: usize) -> Self {
        let mut cfg = Self::cedar();
        cfg.clusters = clusters;
        cfg
    }

    /// The same configuration with `num_threads` simulation threads.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// The same configuration with `num_threads` taken from the
    /// `CEDAR_NUM_THREADS` environment variable when set (and parseable);
    /// unchanged otherwise. The experiment drivers route every machine they
    /// build through this, so a CI leg or a user can switch the whole
    /// experiment suite to the parallel engine without touching code.
    pub fn with_env_threads(mut self) -> Self {
        if let Some(n) = threads_from_env() {
            self.num_threads = n;
        }
        self
    }

    /// The same configuration with the given parallel-engine chunk length
    /// (`0` = automatic lookahead bound; equivalence tests pin explicit
    /// lengths so they stay meaningful under a CI env matrix).
    pub fn with_chunk_cycles(mut self, chunk_cycles: usize) -> Self {
        self.chunk_cycles = chunk_cycles;
        self
    }

    /// The same configuration with fast-forwarding switched on or off
    /// (equivalence tests run both ways and compare).
    pub fn with_fast_forward(mut self, fast_forward: bool) -> Self {
        self.fast_forward = fast_forward;
        self
    }

    /// The same configuration with the network flow-level fast path
    /// switched on or off (equivalence tests run both ways and compare).
    pub fn with_flow_path(mut self, flow_path: bool) -> Self {
        self.flow_path = flow_path;
        self
    }

    /// The same configuration with program lowering switched on or off
    /// (equivalence tests run both ways and compare).
    pub fn with_lowered(mut self, lowered: bool) -> Self {
        self.lowered = lowered;
        self
    }

    /// The same configuration with the given fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The same configuration with the given causal-tracing plan.
    pub fn with_trace(mut self, plan: crate::trace::TracePlan) -> Self {
        self.trace = Some(plan);
        self
    }

    /// The same configuration with mid-run auto-checkpointing every
    /// `every` cycles (`0` switches it off) into `path`.
    pub fn with_checkpoint(mut self, every: u64, path: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_every = every;
        self.checkpoint_path = Some(path.into());
        self
    }

    /// The same configuration with the checkpoint knobs taken from the
    /// `CEDAR_CHECKPOINT_EVERY` / `CEDAR_CHECKPOINT_PATH` environment
    /// variables when set; unchanged otherwise. The experiment drivers
    /// route every machine they build through this.
    ///
    /// # Errors
    ///
    /// [`MachineError`](crate::error::MachineError::InvalidConfig) when
    /// either variable is set to garbage — checkpointing silently off
    /// when a CI leg asked for it would void the crash-recovery coverage,
    /// so these knobs parse strictly (see [`crate::env`]).
    pub fn with_env_checkpoint(mut self) -> Result<Self, crate::error::MachineError> {
        if let Some(every) = checkpoint_every_from_env()? {
            self.checkpoint_every = every;
        }
        if let Some(path) = checkpoint_path_from_env()? {
            self.checkpoint_path = Some(path);
        }
        Ok(self)
    }

    /// Total CEs in the machine.
    pub fn total_ces(&self) -> usize {
        self.clusters * self.ces_per_cluster
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (zero-sized components, non-power-of-radix network, cache
    /// geometry that does not divide evenly, and similar).
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 {
            return Err("machine must have at least one cluster".into());
        }
        if self.ces_per_cluster == 0 {
            return Err("clusters must have at least one CE".into());
        }
        if self.num_threads == 0 {
            return Err("the machine needs at least one simulation thread".into());
        }
        if self.cycle_ns <= 0.0 || self.cycle_ns.is_nan() {
            return Err("cycle time must be positive".into());
        }
        if self.network.radix < 2 {
            return Err("network radix must be at least 2".into());
        }
        if self.network.queue_words == 0 {
            return Err("network queues must hold at least one word".into());
        }
        if self.global_memory.modules == 0 {
            return Err("global memory must have at least one module".into());
        }
        if self.global_memory.service_cycles == 0 {
            return Err("global memory service time must be nonzero".into());
        }
        if self.cache.line_bytes == 0 || !self.cache.line_bytes.is_multiple_of(8) {
            return Err("cache line size must be a nonzero multiple of 8 bytes".into());
        }
        if !self
            .cache
            .capacity_bytes
            .is_multiple_of(self.cache.line_bytes * self.cache.associativity)
        {
            return Err("cache capacity must divide evenly into sets".into());
        }
        if self.cache.banks == 0 {
            return Err("cache must have at least one bank".into());
        }
        if self.ce.vector_register_words == 0 {
            return Err("vector registers must hold at least one word".into());
        }
        if self.prefetch.buffer_words == 0 {
            return Err("prefetch buffer must hold at least one word".into());
        }
        if self.vm.page_words == 0 {
            return Err("page size must be nonzero".into());
        }
        if let Some(plan) = &self.faults {
            plan.validate(self.network_ports(), self.global_memory.modules)?;
        }
        if let Some(plan) = &self.trace {
            plan.validate()?;
        }
        if self.checkpoint_every > 0 && self.checkpoint_path.is_none() {
            return Err("checkpoint interval set without a checkpoint path".into());
        }
        Ok(())
    }

    /// Number of ports each global network needs: enough for every CE and
    /// every memory module.
    pub fn network_ports(&self) -> usize {
        self.total_ces_full().max(self.global_memory.modules)
    }

    /// CEs the *hardware* provides (ports are sized for the full machine
    /// even when an experiment uses fewer clusters).
    fn total_ces_full(&self) -> usize {
        self.clusters.max(4) * self.ces_per_cluster
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::cedar()
    }
}

// The environment-knob parsers moved to `crate::env` (one module, one
// documented strict/lenient policy); re-exported here so call sites keep
// their historical `config::` paths.
pub use crate::env::{
    checkpoint_every_from_env, checkpoint_path_from_env, chunk_cycles_from_env,
    fastfwd_disabled_from_env, fault_seed_from_env, flowpath_disabled_from_env,
    lowered_disabled_from_env, parse_env_threads, threads_from_env, trace_plan_from_env,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_config_is_valid_and_has_paper_parameters() {
        let cfg = MachineConfig::cedar();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_ces(), 32);
        assert_eq!(cfg.cache.capacity_bytes, 512 * 1024);
        assert_eq!(cfg.cache.line_bytes, 32);
        assert_eq!(cfg.cache.line_words(), 4);
        assert_eq!(cfg.global_memory.modules, 32);
        assert_eq!(cfg.prefetch.buffer_words, 512);
        assert_eq!(cfg.vm.page_words, 512);
        assert_eq!(cfg.ce.vector_register_words, 32);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::cedar();
        // 512KB / 32B lines / 2-way = 8192 sets.
        assert_eq!(c.sets(), 8192);
    }

    #[test]
    fn cluster_subset_keeps_full_network() {
        let cfg = MachineConfig::cedar_with_clusters(1);
        assert_eq!(cfg.total_ces(), 8);
        // The hardware still has 32 ports / modules.
        assert_eq!(cfg.network_ports(), 32);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = MachineConfig::cedar();
        cfg.clusters = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::cedar();
        cfg.cache.line_bytes = 12;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::cedar();
        cfg.network.radix = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::cedar();
        cfg.global_memory.service_cycles = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        let cfg = MachineConfig::cedar();
        // 32 modules, one word per 2 cycles each, 170ns cycles:
        // 32 * 8 bytes / (2 * 170ns) = 753 MB/s ~ the paper's 768 MB/s.
        let bytes_per_sec = cfg.global_memory.modules as f64 * 8.0
            / (cfg.global_memory.service_cycles as f64 * cfg.cycle_ns * 1e-9);
        assert!(bytes_per_sec > 700e6 && bytes_per_sec < 800e6);
    }

    #[test]
    fn thread_count_defaults_to_serial_and_validates() {
        let cfg = MachineConfig::cedar();
        assert_eq!(cfg.num_threads, 1);
        assert_eq!(cfg.with_threads(4).num_threads, 4);
        let mut cfg = MachineConfig::cedar();
        cfg.num_threads = 0;
        assert!(cfg.validate().is_err(), "zero threads cannot step anything");
    }

    #[test]
    fn chunk_cycles_defaults_to_auto_and_builds() {
        let cfg = MachineConfig::cedar();
        assert_eq!(cfg.chunk_cycles, 0, "default is the automatic bound");
        assert_eq!(cfg.with_chunk_cycles(4).chunk_cycles, 4);
    }

    #[test]
    fn fault_plan_is_validated_with_the_machine() {
        let mut plan = FaultPlan::none(1);
        plan.drop_per_million = 2_000_000; // > 100%
        let cfg = MachineConfig::cedar().with_faults(plan);
        assert!(cfg.validate().is_err());

        let cfg = MachineConfig::cedar().with_faults(FaultPlan::none(1));
        cfg.validate().unwrap();
    }
}

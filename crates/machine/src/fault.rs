//! Deterministic fault injection and the retry machinery it exercises.
//!
//! The paper's Cedar is a real machine: its global-memory path (omega
//! networks, interleaved modules, Test-And-Operate sync processors) is
//! exactly where a cluster NUMA system meets transient failures. This
//! module models those failures *deterministically*: a [`FaultPlan`]
//! names a seed, per-packet drop/NACK rates, and scheduled link/module
//! outage windows, and every fault decision comes from a counter-based
//! hash ([`mix`]) keyed on `(seed, site, sequence)` — never on host
//! state — so a faulty run is bit-for-bit reproducible across
//! `CEDAR_NUM_THREADS` and with fast-forward on or off.
//!
//! Three kinds of fault, three recovery paths:
//!
//! * **Packet drops** (either network): decided at injection time from
//!   the per-port injection sequence number; the packet traverses the
//!   network normally (it consumes bandwidth) and evaporates at the
//!   delivery stage. CEs recover through [`CeFaultCtl`]'s timeout +
//!   bounded-exponential-backoff resend; prefetch units re-request
//!   missing elements of the current fire.
//! * **Packet NACKs** (forward network): the request is marked corrupted
//!   in flight; the memory module services it at normal cost but answers
//!   with a NACK reply instead of performing the operation. The CE backs
//!   off and retries.
//! * **Outages** ([`LinkOutage`], [`ModuleOutage`]): a [`FaultSchedule`]
//!   applies down/up transitions at exact cycles (it participates in
//!   `next_event()`, so fast-forward stops precisely at each boundary).
//!   A downed link refuses injection at that port (backpressure, which
//!   every injector already tolerates); an offline module NACKs every
//!   request it services.
//!
//! With no plan — or a plan whose [`FaultPlan::enabled`] is false — no
//! sequence numbers are assigned, no controller is allocated, and every
//! fingerprint, golden snapshot and digest is byte-identical to the
//! fault-free machine.

use crate::monitor::Histogrammer;
use crate::network::packet::{MemReply, Packet, Payload};
use crate::time::Cycle;

/// Bins of the retry-latency histogram (issue-to-completion cycles for
/// operations that needed at least one retry; the last bin catches all
/// longer latencies). Sized to resolve several exponential-backoff
/// rounds past the default 512-cycle timeout rather than clamping every
/// retried operation into the overflow bin.
pub const RETRY_LATENCY_BINS: usize = 8192;

/// Hash-salt distinguishing forward-network fault sites from reverse.
pub(crate) const SALT_FORWARD: u64 = 0xF0;
/// Hash-salt for reverse-network fault sites.
pub(crate) const SALT_REVERSE: u64 = 0x0F00;

/// A scheduled window during which one network port pair (the CE-side
/// forward injection port and the module-side reverse injection port
/// with the same index) refuses injection — the model of a downed
/// switch-port link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Port index on both omega networks.
    pub port: usize,
    /// First machine cycle the link is down.
    pub from: u64,
    /// First machine cycle the link is back up (exclusive end).
    pub until: u64,
}

/// A scheduled window during which one global-memory module is offline:
/// it still accepts and services requests (the interconnect path is up)
/// but answers every one with a NACK and performs no operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleOutage {
    /// Global-memory module index.
    pub module: usize,
    /// First machine cycle the module is offline.
    pub from: u64,
    /// First machine cycle the module is back online (exclusive end).
    pub until: u64,
}

/// A complete, deterministic description of the faults to inject into
/// one machine. All-integer so plans are `Eq` and trivially serializable
/// into test code and experiment tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the counter-based hash behind every random decision.
    pub seed: u64,
    /// Per-packet drop probability in parts per million (both networks).
    pub drop_per_million: u32,
    /// Per-packet NACK probability in parts per million (forward
    /// network; a NACK-doomed reply is indistinguishable from a drop, so
    /// the reverse network only drops).
    pub nack_per_million: u32,
    /// Scheduled link-down windows.
    pub link_outages: Vec<LinkOutage>,
    /// Scheduled module-offline windows.
    pub module_outages: Vec<ModuleOutage>,
    /// Cycles a CE or prefetch unit waits for a reply before declaring a
    /// timeout and resending (grows with bounded exponential backoff on
    /// repeated attempts).
    pub timeout_cycles: u32,
    /// Resend attempts before an operation is declared failed and the
    /// run aborts with [`MachineError::Faulted`](crate::MachineError).
    pub max_retries: u32,
}

impl FaultPlan {
    /// A plan with no faults at all: zero rates, no outages, default
    /// retry parameters. `enabled()` is false, so it behaves exactly
    /// like `faults: None`.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_million: 0,
            nack_per_million: 0,
            link_outages: Vec::new(),
            module_outages: Vec::new(),
            timeout_cycles: 512,
            max_retries: 16,
        }
    }

    /// True when the plan can actually produce a fault. A disabled plan
    /// is treated identically to no plan: no retry controllers, no
    /// sequence numbers, bit-identical fingerprints.
    pub fn enabled(&self) -> bool {
        self.drop_per_million > 0
            || self.nack_per_million > 0
            || !self.link_outages.is_empty()
            || !self.module_outages.is_empty()
    }

    /// Validate against a machine shape.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first inconsistency.
    pub fn validate(&self, ports: usize, modules: usize) -> Result<(), String> {
        if self.drop_per_million > 1_000_000 {
            return Err(format!(
                "drop_per_million {} exceeds 1_000_000",
                self.drop_per_million
            ));
        }
        if self.nack_per_million > 1_000_000 {
            return Err(format!(
                "nack_per_million {} exceeds 1_000_000",
                self.nack_per_million
            ));
        }
        if u64::from(self.drop_per_million) + u64::from(self.nack_per_million) > 1_000_000 {
            return Err("drop_per_million + nack_per_million exceeds 1_000_000".into());
        }
        if self.enabled() {
            if self.timeout_cycles == 0 {
                return Err("timeout_cycles must be positive when faults are enabled".into());
            }
            if self.max_retries == 0 {
                return Err("max_retries must be positive when faults are enabled".into());
            }
        }
        for o in &self.link_outages {
            if o.port >= ports {
                return Err(format!(
                    "link outage names port {} but the network has {ports} ports",
                    o.port
                ));
            }
            if o.from >= o.until {
                return Err(format!(
                    "link outage window {}..{} on port {} is empty",
                    o.from, o.until, o.port
                ));
            }
        }
        for o in &self.module_outages {
            if o.module >= modules {
                return Err(format!(
                    "module outage names module {} but global memory has {modules}",
                    o.module
                ));
            }
            if o.from >= o.until {
                return Err(format!(
                    "module outage window {}..{} on module {} is empty",
                    o.from, o.until, o.module
                ));
            }
        }
        Ok(())
    }
}

/// The counter-based hash behind every fault decision: a splitmix64-style
/// finalizer over `(seed, site, seq)`. Pure function of its inputs, so
/// any execution order that preserves per-site sequence numbering (the
/// parallel engine's staging replay does) sees identical faults.
#[must_use]
pub fn mix(seed: u64, site: u64, seq: u64) -> u64 {
    let mut z =
        seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheduled outage transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    LinkDown(usize),
    LinkUp(usize),
    ModuleDown(usize),
    ModuleUp(usize),
}

/// The machine-owned schedule of outage transitions, applied at the top
/// of each tick. Its [`next_event`](FaultSchedule::next_event) is folded
/// into the machine event horizon, so fast-forward stops exactly at each
/// transition cycle and skipped runs see the same outage windows as
/// ticked ones.
#[derive(Debug)]
pub(crate) struct FaultSchedule {
    /// Transitions sorted by cycle (stable, so same-cycle transitions
    /// apply in plan order — deterministic).
    events: Vec<(Cycle, FaultAction)>,
    next: usize,
}

impl FaultSchedule {
    pub(crate) fn new(plan: &FaultPlan) -> FaultSchedule {
        let mut events = Vec::new();
        for o in &plan.link_outages {
            events.push((Cycle(o.from), FaultAction::LinkDown(o.port)));
            events.push((Cycle(o.until), FaultAction::LinkUp(o.port)));
        }
        for o in &plan.module_outages {
            events.push((Cycle(o.from), FaultAction::ModuleDown(o.module)));
            events.push((Cycle(o.until), FaultAction::ModuleUp(o.module)));
        }
        events.sort_by_key(|&(at, _)| at);
        FaultSchedule { events, next: 0 }
    }

    /// Apply every transition scheduled at or before `now`.
    pub(crate) fn apply_due(
        &mut self,
        now: Cycle,
        forward: &mut crate::network::Omega,
        reverse: &mut crate::network::Omega,
        gmem: &mut crate::memory::global::GlobalMemory,
    ) {
        while let Some(&(at, action)) = self.events.get(self.next) {
            if at > now {
                break;
            }
            self.next += 1;
            match action {
                FaultAction::LinkDown(p) => {
                    forward.set_port_down(p, true);
                    reverse.set_port_down(p, true);
                }
                FaultAction::LinkUp(p) => {
                    forward.set_port_down(p, false);
                    reverse.set_port_down(p, false);
                }
                FaultAction::ModuleDown(m) => gmem.set_module_offline(m, true),
                FaultAction::ModuleUp(m) => gmem.set_module_offline(m, false),
            }
        }
    }

    /// The next transition cycle, if any remain.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.events.get(self.next).map(|&(at, _)| at.max(now + 1))
    }

    /// Only the cursor is mutable state: the transition list is rebuilt
    /// from the plan. The *effects* of already-applied transitions (downed
    /// ports, offline modules) live in the network and module snapshots.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.usize(self.next);
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        let next = r.usize()?;
        if next > self.events.len() {
            return Err(r.err_mismatch(&format!(
                "fault-schedule cursor {next} past the plan's {} transitions",
                self.events.len()
            )));
        }
        self.next = next;
        Ok(())
    }
}

/// Counters of one CE's retry controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCtlStats {
    /// Requests resent after a timeout or NACK.
    pub retries: u64,
    /// NACK replies received.
    pub nacks: u64,
    /// Reply timeouts declared.
    pub timeouts: u64,
}

impl FaultCtlStats {
    /// Component-wise accumulate.
    pub fn merge(&mut self, other: &FaultCtlStats) {
        self.retries += other.retries;
        self.nacks += other.nacks;
        self.timeouts += other.timeouts;
    }
}

/// What the controller decided about an incoming reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplyAction {
    /// First completion of a tracked operation: hand it to the engine.
    Deliver,
    /// Duplicate or unknown sequence number: discard silently.
    Stale,
    /// A NACK: the operation will be resent after backoff; discard.
    Nacked,
}

/// What the controller wants the engine to do this cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CtlPoll {
    /// Nothing due.
    Idle,
    /// Re-inject this packet (its sequence number is already assigned).
    Resend(Packet),
    /// An operation exceeded its retry budget; the run should abort.
    Exhausted,
}

/// One in-flight tracked operation.
#[derive(Debug, Clone, Copy)]
struct TrackedOp {
    seq: u64,
    pkt: Packet,
    first_issued: Cycle,
    attempts: u32,
    /// While `awaiting`, the cycle at which a timeout fires; otherwise
    /// the cycle at which the resend becomes due (post-backoff).
    at: Cycle,
    awaiting: bool,
}

/// Per-CE retry controller: tracks every sequenced global-memory request
/// from issue to first completed reply, declares timeouts, applies
/// bounded exponential backoff after NACKs and repeated timeouts, and
/// deduplicates late duplicate replies. Only allocated when the machine
/// runs under an enabled [`FaultPlan`].
#[derive(Debug)]
pub(crate) struct CeFaultCtl {
    timeout: u64,
    max_retries: u32,
    ops: Vec<TrackedOp>,
    stats: FaultCtlStats,
    retry_latency: Histogrammer,
    exhausted: Option<String>,
}

impl CeFaultCtl {
    pub(crate) fn new(plan: &FaultPlan) -> CeFaultCtl {
        CeFaultCtl {
            timeout: u64::from(plan.timeout_cycles),
            max_retries: plan.max_retries,
            ops: Vec::new(),
            stats: FaultCtlStats::default(),
            retry_latency: Histogrammer::with_bins(RETRY_LATENCY_BINS),
            exhausted: None,
        }
    }

    /// Reply-wait window for attempt `k`: the base timeout with bounded
    /// exponential backoff.
    fn wait_for(&self, attempts: u32) -> u64 {
        self.timeout << attempts.min(5)
    }

    /// Resend delay after a NACK on attempt `k`.
    fn nack_backoff(attempts: u32) -> u64 {
        (32u64 << attempts.min(6)).min(2048)
    }

    /// Begin tracking a sequenced request just handed to the network.
    pub(crate) fn track(&mut self, seq: u64, pkt: Packet, now: Cycle) {
        self.ops.push(TrackedOp {
            seq,
            pkt,
            first_issued: now,
            attempts: 0,
            at: now + self.timeout,
            awaiting: true,
        });
    }

    /// Classify an incoming reply; `Deliver` removes the operation.
    pub(crate) fn on_reply(&mut self, now: Cycle, reply: &MemReply) -> ReplyAction {
        let Some(i) = self.ops.iter().position(|o| o.seq == reply.seq) else {
            return ReplyAction::Stale;
        };
        if reply.nack {
            let op = &mut self.ops[i];
            self.stats.nacks += 1;
            op.awaiting = false;
            op.at = now + Self::nack_backoff(op.attempts);
            return ReplyAction::Nacked;
        }
        let op = self.ops.swap_remove(i);
        if op.attempts > 0 {
            self.retry_latency
                .record(now.saturating_since(op.first_issued) as usize);
        }
        ReplyAction::Deliver
    }

    /// Advance timeouts and surface at most one resend per cycle. Call
    /// only when the engine can actually take a packet (its pending
    /// latch is free).
    pub(crate) fn poll(&mut self, now: Cycle) -> CtlPoll {
        if self.exhausted.is_some() {
            return CtlPoll::Exhausted;
        }
        for op in &mut self.ops {
            if op.awaiting && now >= op.at {
                self.stats.timeouts += 1;
                op.awaiting = false;
            }
        }
        let due = self.ops.iter().position(|o| !o.awaiting && now >= o.at);
        let Some(i) = due else { return CtlPoll::Idle };
        let wait = self.wait_for(self.ops[i].attempts + 1);
        let op = &mut self.ops[i];
        if op.attempts >= self.max_retries {
            let reason = format!(
                "request seq {} (addr {:#x}) failed after {} attempts",
                op.seq,
                request_addr(&op.pkt),
                op.attempts + 1,
            );
            self.exhausted = Some(reason);
            return CtlPoll::Exhausted;
        }
        op.attempts += 1;
        self.stats.retries += 1;
        op.awaiting = true;
        op.at = now + wait;
        CtlPoll::Resend(op.pkt)
    }

    /// The next cycle at which this controller needs a tick (a timeout
    /// fires or a backoff expires), clamped to the future.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.exhausted.is_some() {
            return Some(now + 1);
        }
        self.ops.iter().map(|o| o.at.max(now + 1)).min()
    }

    /// True when no operations are outstanding.
    pub(crate) fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Outstanding tracked operations (for hang reports).
    pub(crate) fn pending(&self) -> usize {
        self.ops.len()
    }

    /// The failure description, once an operation exhausted its budget.
    pub(crate) fn exhausted(&self) -> Option<&str> {
        self.exhausted.as_deref()
    }

    pub(crate) fn stats(&self) -> FaultCtlStats {
        self.stats
    }

    pub(crate) fn retry_latency(&self) -> &Histogrammer {
        &self.retry_latency
    }

    /// Serialize tracked operations, counters, the retry-latency
    /// histogram and the exhaustion latch. Timeout/budget parameters come
    /// from the plan on reconstruction.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::put_packet;
        w.seq(self.ops.iter(), |w, op| {
            w.u64(op.seq);
            put_packet(w, &op.pkt);
            w.cycle(op.first_issued);
            w.u32(op.attempts);
            w.cycle(op.at);
            w.bool(op.awaiting);
        });
        w.u64(self.stats.retries);
        w.u64(self.stats.nacks);
        w.u64(self.stats.timeouts);
        self.retry_latency.save_state(w);
        w.opt(self.exhausted.as_ref(), |w, s| w.str(s));
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        use crate::snapshot::get_packet;
        self.ops = r.seq(|r| {
            Ok(TrackedOp {
                seq: r.u64()?,
                pkt: get_packet(r)?,
                first_issued: r.cycle()?,
                attempts: r.u32()?,
                at: r.cycle()?,
                awaiting: r.bool()?,
            })
        })?;
        self.stats = FaultCtlStats {
            retries: r.u64()?,
            nacks: r.u64()?,
            timeouts: r.u64()?,
        };
        self.retry_latency = Histogrammer::decode(r)?;
        self.exhausted = r.opt(|r| r.str())?;
        Ok(())
    }
}

fn request_addr(pkt: &Packet) -> u64 {
    match &pkt.payload {
        Payload::Request(r) => r.addr,
        Payload::Reply(r) => r.addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CeId;
    use crate::network::packet::{MemRequest, RequestKind, Stream};

    fn plan() -> FaultPlan {
        FaultPlan {
            drop_per_million: 1000,
            ..FaultPlan::none(7)
        }
    }

    fn pkt(seq: u64) -> Packet {
        Packet::read_request(
            0,
            MemRequest {
                ce: CeId(0),
                kind: RequestKind::Read,
                addr: 0x40,
                stream: Stream::Scalar,
                issued: Cycle(1),
                seq,
                nacked: false,
                trace: 0,
            },
        )
    }

    fn reply(seq: u64, nack: bool) -> MemReply {
        MemReply {
            ce: CeId(0),
            stream: Stream::Scalar,
            addr: 0x40,
            value: 0,
            req_issued: Cycle(1),
            seq,
            nack,
            trace: 0,
        }
    }

    #[test]
    fn mix_is_deterministic_and_site_sensitive() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 3));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn mix_rates_land_near_target() {
        // 1% target over 100k sequence numbers: the counter hash should
        // land within ±20% of expectation.
        let hits = (0..100_000u64)
            .filter(|&s| mix(42, 3, s) % 1_000_000 < 10_000)
            .count();
        assert!((800..1200).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn disabled_plans_report_disabled() {
        assert!(!FaultPlan::none(1).enabled());
        assert!(plan().enabled());
        assert!(FaultPlan {
            link_outages: vec![LinkOutage {
                port: 0,
                from: 1,
                until: 2
            }],
            ..FaultPlan::none(0)
        }
        .enabled());
    }

    #[test]
    fn validate_catches_bad_shapes() {
        let mut p = plan();
        p.drop_per_million = 2_000_000;
        assert!(p.validate(32, 32).is_err());
        let mut p = plan();
        p.module_outages.push(ModuleOutage {
            module: 99,
            from: 0,
            until: 10,
        });
        assert!(p.validate(32, 32).is_err());
        let mut p = plan();
        p.link_outages.push(LinkOutage {
            port: 0,
            from: 10,
            until: 10,
        });
        assert!(p.validate(32, 32).is_err());
        let mut p = plan();
        p.max_retries = 0;
        assert!(p.validate(32, 32).is_err());
        assert!(plan().validate(32, 32).is_ok());
    }

    #[test]
    fn ctl_times_out_and_resends_with_backoff() {
        let mut ctl = CeFaultCtl::new(&plan());
        ctl.track(1, pkt(1), Cycle(0));
        assert_eq!(ctl.poll(Cycle(10)), CtlPoll::Idle);
        // Timeout at 512, resend due immediately.
        assert!(matches!(ctl.poll(Cycle(512)), CtlPoll::Resend(_)));
        assert_eq!(ctl.stats().timeouts, 1);
        assert_eq!(ctl.stats().retries, 1);
        // Second wait window doubles (1024 cycles from the resend).
        assert_eq!(ctl.poll(Cycle(513)), CtlPoll::Idle);
        assert_eq!(ctl.next_event(Cycle(513)), Some(Cycle(512 + 1024)));
    }

    #[test]
    fn ctl_delivers_once_and_drops_duplicates() {
        let mut ctl = CeFaultCtl::new(&plan());
        ctl.track(5, pkt(5), Cycle(0));
        assert_eq!(
            ctl.on_reply(Cycle(20), &reply(5, false)),
            ReplyAction::Deliver
        );
        assert_eq!(
            ctl.on_reply(Cycle(25), &reply(5, false)),
            ReplyAction::Stale
        );
        assert!(ctl.is_empty());
        // No retry happened, so the latency histogram stays empty.
        assert_eq!(ctl.retry_latency().total(), 0);
    }

    #[test]
    fn ctl_nack_backs_off_then_completes_with_latency_sample() {
        let mut ctl = CeFaultCtl::new(&plan());
        ctl.track(9, pkt(9), Cycle(100));
        assert_eq!(
            ctl.on_reply(Cycle(120), &reply(9, true)),
            ReplyAction::Nacked
        );
        assert_eq!(ctl.stats().nacks, 1);
        // Backoff of 32 cycles for attempt 0: not due at 130, due at 152.
        assert_eq!(ctl.poll(Cycle(130)), CtlPoll::Idle);
        assert!(matches!(ctl.poll(Cycle(152)), CtlPoll::Resend(_)));
        assert_eq!(
            ctl.on_reply(Cycle(190), &reply(9, false)),
            ReplyAction::Deliver
        );
        assert_eq!(ctl.retry_latency().total(), 1);
        assert!(ctl.is_empty());
    }

    #[test]
    fn ctl_exhausts_after_max_retries() {
        let mut p = plan();
        p.max_retries = 2;
        p.timeout_cycles = 10;
        let mut ctl = CeFaultCtl::new(&p);
        ctl.track(1, pkt(1), Cycle(0));
        let mut now = 0;
        let mut resends = 0;
        loop {
            now += 10_000;
            match ctl.poll(Cycle(now)) {
                CtlPoll::Resend(_) => resends += 1,
                CtlPoll::Exhausted => break,
                CtlPoll::Idle => {}
            }
        }
        assert_eq!(resends, 2);
        assert!(ctl.exhausted().unwrap().contains("failed after"));
        // Exhaustion latches.
        assert_eq!(ctl.poll(Cycle(now + 1)), CtlPoll::Exhausted);
    }

    #[test]
    fn schedule_orders_transitions_and_reports_next_event() {
        let mut p = FaultPlan::none(0);
        p.link_outages.push(LinkOutage {
            port: 2,
            from: 100,
            until: 200,
        });
        p.module_outages.push(ModuleOutage {
            module: 1,
            from: 50,
            until: 150,
        });
        let s = FaultSchedule::new(&p);
        let cycles: Vec<u64> = s.events.iter().map(|&(c, _)| c.0).collect();
        assert_eq!(cycles, vec![50, 100, 150, 200]);
        assert_eq!(s.next_event(Cycle(0)), Some(Cycle(50)));
        assert_eq!(s.next_event(Cycle(60)), Some(Cycle(61)));
    }
}

//! Machine-level scheduling resources: shared loop counters and barriers.
//!
//! Self-scheduled loops draw iterations from a shared counter that lives
//! either on a cluster's concurrency control bus (CDOALL-style, a few
//! cycles per dispatch) or in a global-memory synchronization processor
//! (XDOALL-style, a network round trip per dispatch). Barriers likewise
//! come in cluster (bus-counted) and global (memory-counter plus spin
//! polling) flavors. Both are *epoch addressed*: each entry of the loop or
//! barrier uses a fresh logical instance, so nested re-execution needs no
//! reset protocol.

use crate::ids::ClusterId;

/// Spacing between epoch addresses of one global counter/barrier: allows
/// ~16 M uses before two logical instances could collide.
pub const EPOCH_SPACING: u64 = 1 << 24;

/// Where a self-scheduling counter lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterDef {
    /// On a cluster's concurrency control bus.
    Cluster { cluster: ClusterId, slot: usize },
    /// In global memory; epoch `e` of the counter is the synchronization
    /// word at `base_addr + e`.
    Global { base_addr: u64 },
    /// In global memory, but scheduled at *cluster* granularity: one CE
    /// fetches each value on its cluster's behalf and the concurrency bus
    /// hands it to every cluster member — the self-scheduled SDOALL of
    /// §3.2.
    GlobalShared { base_addr: u64 },
}

/// Which CEs a barrier synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierScope {
    /// The CEs of one cluster, via the concurrency control bus.
    Cluster(ClusterId),
    /// CEs across clusters, via a global-memory counter and spin polling.
    Global,
}

/// A machine barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierDef {
    pub scope: BarrierScope,
    /// Number of participating CEs.
    pub expected: u32,
    /// For global barriers: epoch `e` counts arrivals in the
    /// synchronization word at `base_addr + e`. For cluster barriers this
    /// is the bus barrier slot.
    pub base_addr: u64,
}

//! The per-cluster concurrency control bus.
//!
//! Every CE in an Alliant cluster connects to a concurrency control bus
//! whose instructions implement fast fork, join and synchronization:
//! `concurrent start` spreads a parallel loop across the cluster in a few
//! cycles, and the CEs then self-schedule iterations among themselves over
//! the bus (§2 "Alliant clusters"). The bus model serializes one
//! dispatch transaction per [`dispatch_cycles`](crate::config::CcBusConfig)
//! and provides counted cluster barriers for loop joins.
//!
//! Counters and barriers are *epoch addressed*: a loop that executes many
//! times (e.g. inside a timestep loop) uses a fresh logical counter each
//! entry, exactly as the runtime library allocates fresh control blocks,
//! so no reset protocol is needed.

use std::collections::{HashMap, VecDeque};

use crate::config::CcBusConfig;
use crate::time::Cycle;

/// One pending counter-dispatch transaction.
#[derive(Debug, Clone, Copy)]
struct CounterReq {
    ce: usize,
    slot: usize,
    epoch: u64,
    chunk: u32,
    limit: u64,
}

#[derive(Debug, Default)]
struct BarrierWait {
    arrived: u32,
    /// Each waiting CE with the cycle it arrived, so the release can
    /// account the wait time.
    waiting: Vec<(usize, Cycle)>,
}

/// Result of asking the bus for the cluster's next SDOALL value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdoallTake {
    /// The next value for this CE (every CE of the cluster sees the same
    /// sequence of values, each exactly once).
    Ready(u64),
    /// No value buffered and no fetch in flight: this CE is elected to
    /// fetch the next value from the global counter on the cluster's
    /// behalf.
    Fetch,
    /// Another CE's fetch is in flight; retry next cycle.
    Wait,
}

#[derive(Debug, Default)]
struct SdoallState {
    values: Vec<u64>,
    cursor: Vec<usize>,
    fetch_in_flight: bool,
}

/// Bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcBusStats {
    /// Counter dispatch transactions granted.
    pub dispatches: u64,
    /// Counter dispatch transactions requested (granted or still queued).
    pub counter_requests: u64,
    /// Barrier releases performed.
    pub barrier_releases: u64,
    /// Individual CE arrivals at cluster barriers.
    pub barrier_arrivals: u64,
    /// Total cycles CEs spent parked at cluster barriers, from each CE's
    /// arrival to the barrier's release.
    pub barrier_wait_cycles: u64,
    /// SDOALL values broadcast over the bus.
    pub sdoall_posts: u64,
}

/// One cluster's concurrency control bus.
#[derive(Debug)]
pub struct CcBus {
    dispatch_cycles: u32,
    join_cycles: u32,
    start_cycles: u32,
    next_free: Cycle,
    pending: VecDeque<CounterReq>,
    /// `(slot, epoch)` → counter value.
    values: HashMap<(usize, u64), u64>,
    /// Per-CE granted old counter value.
    grants: Vec<Option<u64>>,
    /// `(barrier slot, epoch)` → arrival state.
    barriers: HashMap<(usize, u64), BarrierWait>,
    /// `(sdoall counter id, epoch)` → shared-value state.
    sdoall: HashMap<(usize, u64), SdoallState>,
    /// Per-CE barrier release time.
    releases: Vec<Option<Cycle>>,
    n_counters: usize,
    stats: CcBusStats,
}

impl CcBus {
    /// Build a bus for a cluster of `ces` processors.
    pub fn new(cfg: &CcBusConfig, ces: usize) -> CcBus {
        CcBus {
            dispatch_cycles: cfg.dispatch_cycles.max(1),
            join_cycles: cfg.join_cycles,
            start_cycles: cfg.start_cycles,
            next_free: Cycle::ZERO,
            pending: VecDeque::new(),
            values: HashMap::new(),
            grants: vec![None; ces],
            barriers: HashMap::new(),
            sdoall: HashMap::new(),
            releases: vec![None; ces],
            n_counters: 0,
            stats: CcBusStats::default(),
        }
    }

    /// Cycles a `concurrent start` broadcast takes.
    pub fn start_cycles(&self) -> u32 {
        self.start_cycles
    }

    /// Allocate a counter slot on this bus.
    pub fn alloc_counter(&mut self) -> usize {
        self.n_counters += 1;
        self.n_counters - 1
    }

    /// Queue a bounded fetch-and-add: grants `old`, adding `chunk` only
    /// while `old < limit`.
    pub fn request_counter(&mut self, ce: usize, slot: usize, epoch: u64, chunk: u32, limit: u64) {
        debug_assert!(slot < self.n_counters, "counter slot not allocated");
        self.stats.counter_requests += 1;
        self.pending.push_back(CounterReq {
            ce,
            slot,
            epoch,
            chunk,
            limit,
        });
    }

    /// Take a granted counter value for `ce`, if one arrived.
    pub fn take_grant(&mut self, ce: usize) -> Option<u64> {
        self.grants[ce].take()
    }

    /// Arrive at cluster barrier `(slot, epoch)` expecting `expected`
    /// participants. When the last participant arrives, all are released
    /// after the join delay.
    pub fn arrive_barrier(
        &mut self,
        now: Cycle,
        ce: usize,
        slot: usize,
        epoch: u64,
        expected: u32,
    ) {
        let w = self.barriers.entry((slot, epoch)).or_default();
        w.arrived += 1;
        w.waiting.push((ce, now));
        self.stats.barrier_arrivals += 1;
        if w.arrived >= expected {
            let release_at = now + u64::from(self.join_cycles);
            let waiting = std::mem::take(&mut w.waiting);
            self.barriers.remove(&(slot, epoch));
            for (ce, arrived_at) in waiting {
                self.stats.barrier_wait_cycles += release_at.saturating_since(arrived_at);
                self.releases[ce] = Some(release_at);
            }
            self.stats.barrier_releases += 1;
        }
    }

    /// Take `ce`'s barrier release time, if released.
    pub fn take_release(&mut self, ce: usize) -> Option<Cycle> {
        self.releases[ce].take()
    }

    /// True when a granted counter value is waiting for `ce` (a
    /// non-consuming [`CcBus::take_grant`]).
    pub(crate) fn peek_grant(&self, ce: usize) -> bool {
        self.grants[ce].is_some()
    }

    /// True when a barrier release is waiting for `ce` (a non-consuming
    /// [`CcBus::take_release`]).
    pub(crate) fn peek_release(&self, ce: usize) -> bool {
        self.releases[ce].is_some()
    }

    /// True when [`CcBus::sdoall_take`] would return something other than
    /// [`SdoallTake::Wait`] for this CE — i.e. the CE would make progress
    /// on its next attempt.
    pub(crate) fn sdoall_can_take(&self, ce: usize, id: usize, epoch: u64) -> bool {
        match self.sdoall.get(&(id, epoch)) {
            // No state yet: the first take creates it and is elected to
            // fetch.
            None => true,
            Some(st) => {
                st.cursor.get(ce).copied().unwrap_or(0) < st.values.len() || !st.fetch_in_flight
            }
        }
    }

    /// The earliest future cycle at which the bus can change externally
    /// visible state: the next dispatch grant, or `None` with nothing
    /// queued. Already-posted grants/releases are the *engines'* events —
    /// the bus itself has nothing left to do for them.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.next_free.max(now + 1))
        }
    }

    /// Advance one cycle: grant at most one dispatch per
    /// `dispatch_cycles`.
    pub fn tick(&mut self, now: Cycle) {
        if self.pending.is_empty() || now < self.next_free {
            return;
        }
        if let Some(req) = self.pending.pop_front() {
            let v = self.values.entry((req.slot, req.epoch)).or_insert(0);
            let old = *v;
            if old < req.limit {
                *v = old + u64::from(req.chunk);
            }
            self.grants[req.ce] = Some(old);
            self.stats.dispatches += 1;
            self.next_free = now + u64::from(self.dispatch_cycles);
        }
    }

    /// Take the next SDOALL value for CE `ce` (index within the cluster)
    /// from shared counter `id` at `epoch`; the cluster holds `ces`
    /// members.
    pub fn sdoall_take(&mut self, ce: usize, id: usize, epoch: u64, ces: usize) -> SdoallTake {
        let st = self
            .sdoall
            .entry((id, epoch))
            .or_insert_with(|| SdoallState {
                values: Vec::new(),
                cursor: vec![0; ces],
                fetch_in_flight: false,
            });
        if st.cursor.len() < ces {
            st.cursor.resize(ces, 0);
        }
        if st.cursor[ce] < st.values.len() {
            let v = st.values[st.cursor[ce]];
            st.cursor[ce] += 1;
            SdoallTake::Ready(v)
        } else if !st.fetch_in_flight {
            st.fetch_in_flight = true;
            SdoallTake::Fetch
        } else {
            SdoallTake::Wait
        }
    }

    /// Post a value fetched from the global counter on the cluster's
    /// behalf; it becomes visible to every CE of the cluster.
    pub fn sdoall_post(&mut self, id: usize, epoch: u64, value: u64) {
        let st = self.sdoall.entry((id, epoch)).or_default();
        st.values.push(value);
        st.fetch_in_flight = false;
        self.stats.sdoall_posts += 1;
    }

    /// Serialize the bus. Hash-keyed maps (counter values, barrier
    /// arrival states, SDOALL states) are written in sorted key order so
    /// the snapshot bytes are deterministic; the pending dispatch queue
    /// keeps its FIFO order.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::SnapWriter;
        w.tag(b"CBUS");
        w.cycle(self.next_free);
        w.seq(self.pending.iter(), |w, req| {
            w.usize(req.ce);
            w.usize(req.slot);
            w.u64(req.epoch);
            w.u32(req.chunk);
            w.u64(req.limit);
        });
        fn sorted_keys<V>(m: &HashMap<(usize, u64), V>) -> Vec<(usize, u64)> {
            let mut keys: Vec<(usize, u64)> = m.keys().copied().collect();
            keys.sort_unstable();
            keys
        }
        let put_key = |w: &mut SnapWriter, k: &(usize, u64)| {
            w.usize(k.0);
            w.u64(k.1);
        };
        w.seq(sorted_keys(&self.values).iter(), |w, k| {
            put_key(w, k);
            w.u64(self.values[k]);
        });
        w.seq(self.grants.iter(), |w, g| {
            w.opt(g.as_ref(), |w, v| w.u64(*v));
        });
        w.seq(sorted_keys(&self.barriers).iter(), |w, k| {
            put_key(w, k);
            let b = &self.barriers[k];
            w.u32(b.arrived);
            w.seq(b.waiting.iter(), |w, (ce, at)| {
                w.usize(*ce);
                w.cycle(*at);
            });
        });
        w.seq(sorted_keys(&self.sdoall).iter(), |w, k| {
            put_key(w, k);
            let st = &self.sdoall[k];
            w.seq(st.values.iter(), |w, v| w.u64(*v));
            w.seq(st.cursor.iter(), |w, c| w.usize(*c));
            w.bool(st.fetch_in_flight);
        });
        w.seq(self.releases.iter(), |w, rel| {
            w.opt(rel.as_ref(), |w, at| w.cycle(*at));
        });
        w.usize(self.n_counters);
        let s = &self.stats;
        for v in [
            s.dispatches,
            s.counter_requests,
            s.barrier_releases,
            s.barrier_arrivals,
            s.barrier_wait_cycles,
            s.sdoall_posts,
        ] {
            w.u64(v);
        }
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        r.tag(b"CBUS")?;
        self.next_free = r.cycle()?;
        self.pending = r
            .seq(|r| {
                Ok(CounterReq {
                    ce: r.usize()?,
                    slot: r.usize()?,
                    epoch: r.u64()?,
                    chunk: r.u32()?,
                    limit: r.u64()?,
                })
            })?
            .into_iter()
            .collect();
        let key =
            |r: &mut crate::snapshot::SnapReader| -> crate::snapshot::SnapResult<(usize, u64)> {
                Ok((r.usize()?, r.u64()?))
            };
        self.values = r.seq(|r| Ok((key(r)?, r.u64()?)))?.into_iter().collect();
        let ces = self.grants.len();
        r.seq_exact(ces, |r, i| {
            self.grants[i] = r.opt(|r| r.u64())?;
            Ok(())
        })?;
        self.barriers = r
            .seq(|r| {
                let k = key(r)?;
                let arrived = r.u32()?;
                let waiting = r.seq(|r| Ok((r.usize()?, r.cycle()?)))?;
                Ok((k, BarrierWait { arrived, waiting }))
            })?
            .into_iter()
            .collect();
        self.sdoall = r
            .seq(|r| {
                let k = key(r)?;
                let values = r.seq(|r| r.u64())?;
                let cursor = r.seq(|r| r.usize())?;
                let fetch_in_flight = r.bool()?;
                Ok((
                    k,
                    SdoallState {
                        values,
                        cursor,
                        fetch_in_flight,
                    },
                ))
            })?
            .into_iter()
            .collect();
        r.seq_exact(ces, |r, i| {
            self.releases[i] = r.opt(|r| r.cycle())?;
            Ok(())
        })?;
        self.n_counters = r.usize()?;
        self.stats = CcBusStats {
            dispatches: r.u64()?,
            counter_requests: r.u64()?,
            barrier_releases: r.u64()?,
            barrier_arrivals: r.u64()?,
            barrier_wait_cycles: r.u64()?,
            sdoall_posts: r.u64()?,
        };
        Ok(())
    }

    /// Reset all counter/barrier state (between independent runs).
    pub fn reset(&mut self) {
        self.pending.clear();
        self.values.clear();
        self.barriers.clear();
        self.sdoall.clear();
        self.grants.iter_mut().for_each(|g| *g = None);
        self.releases.iter_mut().for_each(|r| *r = None);
        self.next_free = Cycle::ZERO;
    }

    /// Statistics so far.
    pub fn stats(&self) -> CcBusStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> CcBus {
        CcBus::new(&CcBusConfig::cedar(), 8)
    }

    #[test]
    fn counter_grants_are_serialized_by_dispatch_time() {
        let mut b = bus();
        let slot = b.alloc_counter();
        for ce in 0..4 {
            b.request_counter(ce, slot, 0, 1, 100);
        }
        // dispatch_cycles = 2: grants land at t=0,2,4,6.
        b.tick(Cycle(0));
        assert_eq!(b.take_grant(0), Some(0));
        assert_eq!(b.take_grant(1), None);
        b.tick(Cycle(1)); // bus busy
        assert_eq!(b.take_grant(1), None);
        b.tick(Cycle(2));
        assert_eq!(b.take_grant(1), Some(1));
        b.tick(Cycle(4));
        b.tick(Cycle(6));
        assert_eq!(b.take_grant(2), Some(2));
        assert_eq!(b.take_grant(3), Some(3));
        assert_eq!(b.stats().dispatches, 4);
    }

    #[test]
    fn counter_respects_limit() {
        let mut b = bus();
        let slot = b.alloc_counter();
        let mut t = 0;
        let mut got = Vec::new();
        for ce in 0..5 {
            b.request_counter(ce, slot, 0, 2, 5);
        }
        for _ in 0..5 {
            b.tick(Cycle(t));
            t += 2;
        }
        for ce in 0..5 {
            got.push(b.take_grant(ce).unwrap());
        }
        // Chunks of 2 toward limit 5: 0, 2, 4, then saturate.
        assert_eq!(got[..3], [0, 2, 4]);
        assert!(got[3] >= 5 && got[4] >= 5);
    }

    #[test]
    fn epochs_are_independent() {
        let mut b = bus();
        let slot = b.alloc_counter();
        b.request_counter(0, slot, 0, 1, 10);
        b.tick(Cycle(0));
        assert_eq!(b.take_grant(0), Some(0));
        b.request_counter(0, slot, 1, 1, 10);
        b.tick(Cycle(10));
        // Fresh epoch starts at zero again.
        assert_eq!(b.take_grant(0), Some(0));
    }

    #[test]
    fn barrier_releases_all_on_last_arrival() {
        let mut b = bus();
        b.arrive_barrier(Cycle(5), 0, 0, 0, 3);
        b.arrive_barrier(Cycle(6), 1, 0, 0, 3);
        assert_eq!(b.take_release(0), None);
        b.arrive_barrier(Cycle(9), 2, 0, 0, 3);
        // join_cycles = 4.
        assert_eq!(b.take_release(0), Some(Cycle(13)));
        assert_eq!(b.take_release(1), Some(Cycle(13)));
        assert_eq!(b.take_release(2), Some(Cycle(13)));
        assert_eq!(b.stats().barrier_releases, 1);
    }

    #[test]
    fn barrier_epochs_do_not_collide() {
        let mut b = bus();
        b.arrive_barrier(Cycle(0), 0, 0, 0, 2);
        b.arrive_barrier(Cycle(0), 1, 0, 1, 2); // different epoch
        assert_eq!(b.take_release(0), None);
        assert_eq!(b.take_release(1), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = bus();
        let slot = b.alloc_counter();
        b.request_counter(0, slot, 0, 1, 10);
        b.tick(Cycle(0));
        b.reset();
        assert_eq!(b.take_grant(0), None);
        b.request_counter(0, slot, 0, 1, 10);
        b.tick(Cycle(0));
        assert_eq!(b.take_grant(0), Some(0));
    }
}

//! Memory-based synchronization.
//!
//! Cedar implements a set of indivisible synchronization instructions in
//! each global-memory module, executed by a special processor at the
//! module (§2 "Memory-based Synchronization"). The instructions follow the
//! Zhu–Yew scheme \[ZhYe87\]: *Test-And-Operate*, where Test is any
//! relational operation on 32-bit data and Operate is a Read, Write, Add,
//! Subtract or Logical operation, applied only when the test passes.

/// Relational test applied to the current 32-bit value at the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Rel {
    /// Evaluate `value REL operand`.
    pub fn eval(self, value: i32, operand: i32) -> bool {
        match self {
            Rel::Eq => value == operand,
            Rel::Ne => value != operand,
            Rel::Lt => value < operand,
            Rel::Le => value <= operand,
            Rel::Gt => value > operand,
            Rel::Ge => value >= operand,
        }
    }
}

/// The Operate half of Test-And-Operate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOpKind {
    /// Return the value, leave memory unchanged.
    Read,
    /// Store the operand.
    Write(i32),
    /// Add the operand (wrapping, as 32-bit hardware would).
    Add(i32),
    /// Subtract the operand (wrapping).
    Sub(i32),
    /// Bitwise AND with the operand.
    And(i32),
    /// Bitwise OR with the operand.
    Or(i32),
}

/// A complete Cedar synchronization instruction.
///
/// With `test: None` the operation is unconditional (a plain atomic).
/// The classic Test-And-Set is [`SyncInstr::test_and_set`].
///
/// # Examples
///
/// ```
/// use cedar_machine::memory::sync::{SyncInstr, SyncOutcome};
/// let mut v = 0i32;
/// // fetch-and-add 1 (loop self-scheduling): returns old value.
/// let out = SyncInstr::fetch_add(1).apply(&mut v);
/// assert_eq!(out, SyncOutcome { old: 0, passed: true });
/// assert_eq!(v, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncInstr {
    /// Optional relational test `value REL operand`.
    pub test: Option<(Rel, i32)>,
    /// Operation performed when the test passes (or unconditionally).
    pub op: SyncOpKind,
}

/// Result of executing a [`SyncInstr`]: the value observed before the
/// operation, and whether the test passed (always true when no test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    pub old: i32,
    pub passed: bool,
}

impl SyncOutcome {
    /// Pack into the 64-bit reply-value field: bit 32 = passed, low 32 bits
    /// = old value.
    pub fn encode(self) -> i64 {
        ((self.passed as i64) << 32) | (self.old as u32 as i64)
    }

    /// Unpack from a reply-value field.
    pub fn decode(v: i64) -> SyncOutcome {
        SyncOutcome {
            old: v as u32 as i32,
            passed: (v >> 32) & 1 == 1,
        }
    }
}

impl SyncInstr {
    /// Atomic read.
    pub fn read() -> SyncInstr {
        SyncInstr {
            test: None,
            op: SyncOpKind::Read,
        }
    }

    /// Atomic write.
    pub fn write(v: i32) -> SyncInstr {
        SyncInstr {
            test: None,
            op: SyncOpKind::Write(v),
        }
    }

    /// Fetch-and-add: returns the old value, adds `delta`.
    pub fn fetch_add(delta: i32) -> SyncInstr {
        SyncInstr {
            test: None,
            op: SyncOpKind::Add(delta),
        }
    }

    /// Test-And-Set: sets the word to 1, returns the old value; "acquired"
    /// iff the old value was 0.
    pub fn test_and_set() -> SyncInstr {
        SyncInstr {
            test: None,
            op: SyncOpKind::Write(1),
        }
    }

    /// Test `value >= threshold` And Read — the barrier-poll instruction.
    pub fn test_ge_read(threshold: i32) -> SyncInstr {
        SyncInstr {
            test: Some((Rel::Ge, threshold)),
            op: SyncOpKind::Read,
        }
    }

    /// Execute against a value in place, returning the outcome.
    pub fn apply(self, value: &mut i32) -> SyncOutcome {
        let old = *value;
        let passed = match self.test {
            None => true,
            Some((rel, operand)) => rel.eval(old, operand),
        };
        if passed {
            match self.op {
                SyncOpKind::Read => {}
                SyncOpKind::Write(v) => *value = v,
                SyncOpKind::Add(v) => *value = old.wrapping_add(v),
                SyncOpKind::Sub(v) => *value = old.wrapping_sub(v),
                SyncOpKind::And(v) => *value = old & v,
                SyncOpKind::Or(v) => *value = old | v,
            }
        }
        SyncOutcome { old, passed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_eval() {
        assert!(Rel::Eq.eval(3, 3));
        assert!(Rel::Ne.eval(3, 4));
        assert!(Rel::Lt.eval(3, 4));
        assert!(Rel::Le.eval(4, 4));
        assert!(Rel::Gt.eval(5, 4));
        assert!(Rel::Ge.eval(4, 4));
        assert!(!Rel::Ge.eval(3, 4));
    }

    #[test]
    fn test_and_set_acquires_once() {
        let mut v = 0;
        let first = SyncInstr::test_and_set().apply(&mut v);
        let second = SyncInstr::test_and_set().apply(&mut v);
        assert_eq!(first.old, 0);
        assert_eq!(second.old, 1);
        assert_eq!(v, 1);
    }

    #[test]
    fn fetch_add_sequences() {
        let mut v = 0;
        for i in 0..10 {
            assert_eq!(SyncInstr::fetch_add(1).apply(&mut v).old, i);
        }
        assert_eq!(v, 10);
    }

    #[test]
    fn failed_test_leaves_memory_unchanged() {
        let mut v = 2;
        let out = SyncInstr {
            test: Some((Rel::Ge, 5)),
            op: SyncOpKind::Add(100),
        }
        .apply(&mut v);
        assert!(!out.passed);
        assert_eq!(out.old, 2);
        assert_eq!(v, 2);
    }

    #[test]
    fn barrier_poll_passes_at_threshold() {
        let mut v = 7;
        assert!(SyncInstr::test_ge_read(7).apply(&mut v).passed);
        assert!(!SyncInstr::test_ge_read(8).apply(&mut v).passed);
        assert_eq!(v, 7);
    }

    #[test]
    fn outcome_encoding_round_trips() {
        for old in [i32::MIN, -1, 0, 1, i32::MAX] {
            for passed in [false, true] {
                let o = SyncOutcome { old, passed };
                assert_eq!(SyncOutcome::decode(o.encode()), o);
            }
        }
    }

    #[test]
    fn logical_and_arith_ops_wrap() {
        let mut v = i32::MAX;
        SyncInstr::fetch_add(1).apply(&mut v);
        assert_eq!(v, i32::MIN);
        let mut v = 0b1100;
        SyncInstr {
            test: None,
            op: SyncOpKind::And(0b1010),
        }
        .apply(&mut v);
        assert_eq!(v, 0b1000);
        SyncInstr {
            test: None,
            op: SyncOpKind::Or(0b0011),
        }
        .apply(&mut v);
        assert_eq!(v, 0b1011);
        let mut v = 5;
        SyncInstr {
            test: None,
            op: SyncOpKind::Sub(7),
        }
        .apply(&mut v);
        assert_eq!(v, -2);
    }
}

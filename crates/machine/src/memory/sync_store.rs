//! Flat storage for a module's synchronization words.
//!
//! Each memory module owns a small, hot set of 32-bit synchronization
//! words (barrier cells, self-scheduling counters). The sync processor
//! touches them on every Test-And-Operate, so the store is an
//! open-addressed hash map over one contiguous slot array — no per-entry
//! allocation, no SipHash — tuned for working sets of a few dozen words.

/// An open-addressed `u64 → i32` map with linear probing.
///
/// Insert-only between [`SyncStore::clear`] calls (synchronization words
/// are never deallocated mid-run), which keeps probing tombstone-free.
#[derive(Debug, Default)]
pub struct SyncStore {
    /// `(key, value)` slots; occupancy tracked in `used` (keys are
    /// arbitrary addresses, so no key sentinel is available).
    slots: Vec<(u64, i32)>,
    used: Vec<bool>,
    len: usize,
}

/// Fibonacci multiplicative hash; the high bits index the table.
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl SyncStore {
    /// An empty store (no allocation until the first insert).
    pub fn new() -> SyncStore {
        SyncStore::default()
    }

    /// Number of distinct words stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no word has been touched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every word (between independent runs). Keeps the allocation.
    pub fn clear(&mut self) {
        self.used.fill(false);
        self.len = 0;
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: u64) -> Option<i32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (spread(key) >> 32) as usize & mask;
        loop {
            if !self.used[i] {
                return None;
            }
            if self.slots[i].0 == key {
                return Some(self.slots[i].1);
            }
            i = (i + 1) & mask;
        }
    }

    /// Mutable access to `key`'s value, inserting 0 if absent (the
    /// hardware's synchronization words reset to zero).
    pub fn get_or_insert(&mut self, key: u64) -> &mut i32 {
        if self.slots.len() < 8 || self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (spread(key) >> 32) as usize & mask;
        loop {
            if !self.used[i] {
                self.used[i] = true;
                self.slots[i] = (key, 0);
                self.len += 1;
                return &mut self.slots[i].1;
            }
            if self.slots[i].0 == key {
                return &mut self.slots[i].1;
            }
            i = (i + 1) & mask;
        }
    }

    /// Iterate the stored `(address, value)` pairs in table order
    /// (unordered; callers needing determinism sort).
    pub fn iter(&self) -> impl Iterator<Item = (u64, i32)> + '_ {
        self.slots
            .iter()
            .zip(&self.used)
            .filter(|(_, &u)| u)
            .map(|(&(k, v), _)| (k, v))
    }

    /// Double the table (or create it) and rehash every live entry.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        debug_assert!(new_cap.is_power_of_two());
        let old_slots = std::mem::replace(&mut self.slots, vec![(0, 0); new_cap]);
        let old_used = std::mem::replace(&mut self.used, vec![false; new_cap]);
        let mask = new_cap - 1;
        for (slot, used) in old_slots.into_iter().zip(old_used) {
            if !used {
                continue;
            }
            let mut i = (spread(slot.0) >> 32) as usize & mask;
            while self.used[i] {
                i = (i + 1) & mask;
            }
            self.used[i] = true;
            self.slots[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_updates() {
        let mut s = SyncStore::new();
        assert_eq!(s.get(0), None);
        *s.get_or_insert(0) += 5;
        *s.get_or_insert(u64::MAX) = -1;
        assert_eq!(s.get(0), Some(5));
        assert_eq!(s.get(u64::MAX), Some(-1));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);
    }

    #[test]
    fn survives_growth_with_colliding_keys() {
        let mut s = SyncStore::new();
        // Strided keys (barrier epochs land like this) across several grows.
        for k in 0..500u64 {
            *s.get_or_insert(k * 33) = k as i32;
        }
        assert_eq!(s.len(), 500);
        for k in 0..500u64 {
            assert_eq!(s.get(k * 33), Some(k as i32), "key {k}");
        }
        let mut all: Vec<(u64, i32)> = s.iter().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 500);
        assert_eq!(all[0], (0, 0));
    }
}

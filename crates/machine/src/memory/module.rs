//! One global-memory module.
//!
//! Each module owns a request queue, a bank that services one 64-bit word
//! access every [`service_cycles`](crate::config::GlobalMemoryConfig), and
//! a synchronization processor that executes the indivisible
//! Test-And-Operate instructions of [`sync`](crate::memory::sync) against
//! the module's 32-bit synchronization words.

use crate::config::GlobalMemoryConfig;
use crate::ids::CeId;
use crate::memory::sync_store::SyncStore;
use crate::network::packet::{MemReply, MemRequest, Packet, RequestKind, Stream};
use crate::network::Omega;
use crate::snapshot::{get_packet, get_request, put_packet, put_request};
use crate::snapshot::{SnapReader, SnapResult, SnapWriter};
use crate::time::Cycle;
use crate::trace::{hop, TraceBuf, TraceEvent, MODULE_TRACE_CAP};

/// Statistics for one memory module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Requests fully serviced.
    pub requests: u64,
    /// Of which synchronization instructions.
    pub sync_requests: u64,
    /// Cycles the bank was busy servicing.
    pub busy_cycles: u64,
    /// Cycles a completed reply waited because the reverse network refused
    /// injection (reverse-path backpressure).
    pub reply_stall_cycles: u64,
    /// Cumulative queue occupancy, one sample per tick (divide by ticks for
    /// the mean).
    pub queue_occupancy_sum: u64,
    /// Cycles in which requests waited in the queue while the bank was
    /// busy — bank-conflict stall pressure.
    pub conflict_stall_cycles: u64,
    /// Requests refused with a NACK reply (module offline, or the request
    /// arrived corrupted): serviced at normal cost but with no side
    /// effect.
    pub nacks: u64,
}

/// A fixed-capacity FIFO of queued requests (capacity = the configured
/// request queue depth). Like the network's `Ring`: one contiguous
/// allocation at construction, no growth or shuffling on the tick path.
#[derive(Debug)]
struct ReqRing {
    buf: Box<[MemRequest]>,
    head: usize,
    len: usize,
}

impl ReqRing {
    fn new(cap: usize) -> ReqRing {
        let filler = MemRequest {
            ce: CeId(0),
            kind: RequestKind::Read,
            addr: 0,
            stream: Stream::Scalar,
            issued: Cycle::ZERO,
            seq: 0,
            nacked: false,
            trace: 0,
        };
        ReqRing {
            buf: vec![filler; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    #[inline]
    fn push_back(&mut self, req: MemRequest) {
        assert!(
            !self.is_full(),
            "module queue overflow: flow control violated"
        );
        let mut tail = self.head + self.len;
        if tail >= self.buf.len() {
            tail -= self.buf.len();
        }
        self.buf[tail] = req;
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) -> Option<MemRequest> {
        if self.len == 0 {
            return None;
        }
        let req = self.buf[self.head];
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
        }
        self.len -= 1;
        Some(req)
    }
}

/// A single interleaved global-memory module.
#[derive(Debug)]
pub struct Module {
    /// This module's index (also its network port on both networks).
    port: usize,
    service_cycles: u32,
    sync_extra_cycles: u32,
    queue: ReqRing,
    /// Request in service and the cycle it finishes.
    current: Option<(MemRequest, Cycle)>,
    /// Completed reply waiting for reverse-network injection.
    pending_reply: Option<Packet>,
    /// 32-bit synchronization words owned by this module.
    sync_vars: SyncStore,
    /// Scheduled outage: while set, every serviced request is NACKed.
    offline: bool,
    /// Retry dedup for indivisible sync instructions: per CE, the last
    /// applied `(seq, encoded outcome)`. If a resend of an already-applied
    /// sync arrives (its reply was dropped on the reverse network), the
    /// recorded outcome is returned instead of applying the operation
    /// twice. One slot per CE suffices: the wormhole networks keep
    /// per-(CE, module) traffic FIFO and a CE has at most one outstanding
    /// sync. Excluded from [`Module::digest`] — it is protocol state, not
    /// memory contents.
    sync_dedup: std::collections::HashMap<usize, (u64, i64)>,
    stats: ModuleStats,
    /// Causal-tracing stamps (service start/end of traced requests). The
    /// module needs no tracing configuration: an untraced machine only
    /// ever delivers requests with `trace == 0`, so the buffer stays
    /// empty and unallocated.
    trace: TraceBuf,
}

impl Module {
    /// Create a module at network port `port`.
    pub fn new(port: usize, cfg: &GlobalMemoryConfig) -> Module {
        Module {
            port,
            service_cycles: cfg.service_cycles,
            sync_extra_cycles: cfg.sync_extra_cycles,
            queue: ReqRing::new(cfg.request_queue),
            current: None,
            pending_reply: None,
            sync_vars: SyncStore::new(),
            offline: false,
            sync_dedup: std::collections::HashMap::new(),
            stats: ModuleStats::default(),
            trace: TraceBuf::with_capacity(MODULE_TRACE_CAP),
        }
    }

    /// Drain the module's stamped trace events (and overflow count).
    pub(crate) fn drain_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        let events = std::mem::take(&mut self.trace.events);
        let dropped = std::mem::replace(&mut self.trace.dropped, 0);
        (events, dropped)
    }

    /// Take the module offline (every serviced request is NACKed with no
    /// side effect) or bring it back. Queued and in-service requests are
    /// kept — an outage refuses work, it does not lose it.
    pub fn set_offline(&mut self, offline: bool) {
        self.offline = offline;
    }

    /// Requests currently waiting in the input queue (excludes the one in
    /// service) — used by the deadlock hang report.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when a new request packet can begin arriving (used as the
    /// forward network's sink acceptance test).
    pub fn can_accept(&self) -> bool {
        !self.queue.is_full()
    }

    /// Enqueue a fully received request.
    ///
    /// # Panics
    ///
    /// Panics if called when [`Module::can_accept`] is false — the network
    /// must not deliver into a full queue.
    pub fn enqueue(&mut self, req: MemRequest) {
        self.queue.push_back(req);
    }

    /// True when the module holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.current.is_none() && self.pending_reply.is_none()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ModuleStats {
        self.stats
    }

    /// Peek a synchronization word (testing / debugging aid).
    pub fn sync_value(&self, addr: u64) -> i32 {
        self.sync_vars.get(addr).unwrap_or(0)
    }

    /// Clear all synchronization words (between independent runs).
    pub fn clear_sync(&mut self) {
        self.sync_vars.clear();
        self.sync_dedup.clear();
    }

    /// Fold this module's persistent memory state (the synchronization
    /// words, in address order) into `h`.
    pub(crate) fn digest(&self, h: &mut impl std::hash::Hasher) {
        let mut words: Vec<(u64, i32)> = self.sync_vars.iter().collect();
        words.sort_unstable();
        h.write_usize(self.port);
        h.write_usize(words.len());
        for (addr, value) in words {
            h.write_u64(addr);
            h.write_i32(value);
        }
    }

    /// The earliest future cycle at which this module can change
    /// externally visible state, or `None` when fully idle. A pending
    /// reply or a non-empty queue needs attention next cycle; a request in
    /// service matters no sooner than its completion cycle.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let soon = now + 1;
        if self.pending_reply.is_some() {
            return Some(soon);
        }
        if let Some((_, done_at)) = self.current {
            return Some(done_at.max(soon));
        }
        if !self.queue.is_empty() {
            return Some(soon);
        }
        None
    }

    /// Credit `cycles` skipped quiescent cycles with exactly the stat
    /// increments the per-cycle [`Module::tick`] would have made. During a
    /// skip the module is either fully idle (tick early-returns) or
    /// mid-service with the completion cycle still in the future, so each
    /// skipped tick samples queue occupancy, counts a conflict stall when
    /// requests are waiting, and charges a busy cycle.
    pub(crate) fn skip(&mut self, cycles: u64) {
        if self.current.is_some() {
            self.stats.busy_cycles += cycles;
            self.stats.queue_occupancy_sum += self.queue.len() as u64 * cycles;
            if !self.queue.is_empty() {
                self.stats.conflict_stall_cycles += cycles;
            }
        }
    }

    /// Advance one cycle: retire finished service into a reply, inject the
    /// pending reply into the reverse network, start the next request.
    /// Returns whether a queued request was consumed (service started) —
    /// the event that can turn a full queue back into an accepting one,
    /// which the global memory folds into its acceptance epoch.
    pub fn tick(&mut self, now: Cycle, reverse: &mut Omega) -> bool {
        if self.is_idle() {
            return false;
        }
        self.stats.queue_occupancy_sum += self.queue.len() as u64;
        if self.current.is_some() && !self.queue.is_empty() {
            self.stats.conflict_stall_cycles += 1;
        }

        // Retire a finished service into a pending reply.
        if let Some((req, done_at)) = self.current {
            if now >= done_at {
                self.current = None;
                self.stats.requests += 1;
                if req.trace != 0 {
                    self.trace
                        .stamp(req.trace, hop::SVC_END, 0, req.ce.0 as u16, now);
                }
                self.pending_reply = Some(self.make_reply(req));
            } else {
                self.stats.busy_cycles += 1;
            }
        }

        // Try to inject a waiting reply.
        if let Some(pkt) = self.pending_reply.take() {
            if !reverse.try_inject(self.port, pkt) {
                self.stats.reply_stall_cycles += 1;
                self.pending_reply = Some(pkt);
            }
        }

        // Start the next request if the bank is free. A pending reply that
        // could not inject stalls the bank (the reply latch is occupied),
        // which is how reverse-network congestion throttles memory.
        if self.current.is_none() && self.pending_reply.is_none() {
            if let Some(req) = self.queue.pop_front() {
                let mut cost = self.service_cycles;
                if let RequestKind::Sync(_) = req.kind {
                    cost += self.sync_extra_cycles;
                    self.stats.sync_requests += 1;
                }
                if req.trace != 0 {
                    self.trace
                        .stamp(req.trace, hop::SVC_START, 0, req.ce.0 as u16, now);
                }
                self.current = Some((req, now + u64::from(cost)));
                self.stats.busy_cycles += 1;
                return true;
            }
        }
        false
    }

    /// Serialize mutable state. The queue is written front-to-back and
    /// replayed through `push_back` on restore, so the ring's internal
    /// `head` need not match — only the FIFO contents do. The sync words
    /// and dedup slots are written in sorted key order because their maps
    /// iterate in hash order.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.tag(b"MODL");
        w.usize(self.port);
        let mut queued: Vec<&MemRequest> = Vec::with_capacity(self.queue.len());
        {
            let mut idx = self.queue.head;
            for _ in 0..self.queue.len {
                queued.push(&self.queue.buf[idx]);
                idx += 1;
                if idx == self.queue.buf.len() {
                    idx = 0;
                }
            }
        }
        w.seq(queued.into_iter(), put_request);
        w.opt(self.current.as_ref(), |w, (req, done)| {
            put_request(w, req);
            w.cycle(*done);
        });
        w.opt(self.pending_reply.as_ref(), put_packet);
        let mut words: Vec<(u64, i32)> = self.sync_vars.iter().collect();
        words.sort_unstable();
        w.seq(words.iter(), |w, (addr, value)| {
            w.u64(*addr);
            w.i32(*value);
        });
        w.bool(self.offline);
        let mut dedup: Vec<(usize, u64, i64)> = self
            .sync_dedup
            .iter()
            .map(|(&ce, &(seq, value))| (ce, seq, value))
            .collect();
        dedup.sort_unstable();
        w.seq(dedup.iter(), |w, (ce, seq, value)| {
            w.usize(*ce);
            w.u64(*seq);
            w.i64(*value);
        });
        let s = &self.stats;
        for v in [
            s.requests,
            s.sync_requests,
            s.busy_cycles,
            s.reply_stall_cycles,
            s.queue_occupancy_sum,
            s.conflict_stall_cycles,
            s.nacks,
        ] {
            w.u64(v);
        }
        self.trace.save_state(w);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        r.tag(b"MODL")?;
        let port = r.usize()?;
        if port != self.port {
            return Err(r.err_mismatch(&format!(
                "module port {} in snapshot, machine has module {}",
                port, self.port
            )));
        }
        let queued = r.seq(get_request)?;
        if queued.len() > self.queue.buf.len() {
            return Err(r.err_mismatch(&format!(
                "module {} queue holds {} requests, capacity is {}",
                port,
                queued.len(),
                self.queue.buf.len()
            )));
        }
        self.queue.head = 0;
        self.queue.len = 0;
        for req in queued {
            self.queue.push_back(req);
        }
        self.current = r.opt(|r| {
            let req = get_request(r)?;
            let done = r.cycle()?;
            Ok((req, done))
        })?;
        self.pending_reply = r.opt(get_packet)?;
        self.sync_vars.clear();
        for (addr, value) in r.seq(|r| Ok((r.u64()?, r.i32()?)))? {
            *self.sync_vars.get_or_insert(addr) = value;
        }
        self.offline = r.bool()?;
        self.sync_dedup = r
            .seq(|r| Ok((r.usize()?, (r.u64()?, r.i64()?))))?
            .into_iter()
            .collect();
        self.stats = ModuleStats {
            requests: r.u64()?,
            sync_requests: r.u64()?,
            busy_cycles: r.u64()?,
            reply_stall_cycles: r.u64()?,
            queue_occupancy_sum: r.u64()?,
            conflict_stall_cycles: r.u64()?,
            nacks: r.u64()?,
        };
        self.trace.load_state(r)
    }

    fn make_reply(&mut self, req: MemRequest) -> Packet {
        if self.offline || req.nacked {
            // Refuse with no side effect. The reply keeps the shape (word
            // count, stream) of the real answer so the reverse network is
            // loaded identically; `nack` tells the CE's retry controller
            // to resend.
            self.stats.nacks += 1;
            let reply = MemReply {
                ce: req.ce,
                stream: match req.kind {
                    RequestKind::Write => Stream::WriteAck,
                    _ => req.stream,
                },
                addr: req.addr,
                value: 0,
                req_issued: req.issued,
                seq: req.seq,
                nack: true,
                trace: req.trace,
            };
            return match req.kind {
                RequestKind::Write => Packet::write_ack(req.ce.0, reply),
                _ => Packet::reply(req.ce.0, reply),
            };
        }
        match req.kind {
            RequestKind::Read => Packet::reply(
                req.ce.0,
                MemReply {
                    ce: req.ce,
                    stream: req.stream,
                    addr: req.addr,
                    value: 0,
                    req_issued: req.issued,
                    seq: req.seq,
                    nack: false,
                    trace: req.trace,
                },
            ),
            RequestKind::Write => Packet::write_ack(
                req.ce.0,
                MemReply {
                    ce: req.ce,
                    stream: crate::network::packet::Stream::WriteAck,
                    addr: req.addr,
                    value: 0,
                    req_issued: req.issued,
                    seq: req.seq,
                    nack: false,
                    trace: req.trace,
                },
            ),
            RequestKind::Sync(instr) => {
                let value = match self.sync_dedup.get(&req.ce.0) {
                    // A resend of the sync we already applied: return the
                    // recorded outcome, do not apply twice.
                    Some(&(seq, value)) if req.seq != 0 && seq == req.seq => value,
                    _ => {
                        let v = self.sync_vars.get_or_insert(req.addr);
                        let value = instr.apply(v).encode();
                        if req.seq != 0 {
                            self.sync_dedup.insert(req.ce.0, (req.seq, value));
                        }
                        value
                    }
                };
                Packet::reply(
                    req.ce.0,
                    MemReply {
                        ce: req.ce,
                        stream: req.stream,
                        addr: req.addr,
                        value,
                        req_issued: req.issued,
                        seq: req.seq,
                        nack: false,
                        trace: req.trace,
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::ids::CeId;
    use crate::memory::sync::{SyncInstr, SyncOutcome};
    use crate::network::packet::{Payload, Stream};
    use crate::network::NetSink;

    fn cfg() -> GlobalMemoryConfig {
        GlobalMemoryConfig::cedar()
    }

    fn req(kind: RequestKind, addr: u64) -> MemRequest {
        MemRequest {
            ce: CeId(3),
            kind,
            addr,
            stream: Stream::Scalar,
            issued: Cycle(0),
            seq: 0,
            nacked: false,
            trace: 0,
        }
    }

    #[derive(Default)]
    struct Collect {
        got: Vec<(usize, Packet)>,
    }
    impl NetSink for Collect {
        fn try_begin(&mut self, _p: usize) -> bool {
            true
        }
        fn deliver(&mut self, p: usize, pkt: Packet) {
            self.got.push((p, pkt));
        }
    }

    fn drain(m: &mut Module, net: &mut Omega, sink: &mut Collect, cycles: u64) {
        for c in 0..cycles {
            m.tick(Cycle(c), net);
            net.tick(sink);
        }
    }

    #[test]
    fn read_produces_reply_to_requesting_ce() {
        let mut m = Module::new(5, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        m.enqueue(req(RequestKind::Read, 37));
        drain(&mut m, &mut net, &mut sink, 20);
        assert_eq!(sink.got.len(), 1);
        assert_eq!(sink.got[0].0, 3); // CE 3's port
        match sink.got[0].1.payload {
            Payload::Reply(r) => {
                assert_eq!(r.ce, CeId(3));
                assert_eq!(r.addr, 37);
            }
            _ => panic!("expected reply"),
        }
        assert!(m.is_idle());
        assert_eq!(m.stats().requests, 1);
    }

    #[test]
    fn service_time_is_charged() {
        let mut m = Module::new(0, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        m.enqueue(req(RequestKind::Read, 0));
        // service_cycles = 2: started at t=0, done at t=2, injected at t=2.
        m.tick(Cycle(0), &mut net); // starts service
        assert!(!m.is_idle());
        m.tick(Cycle(1), &mut net);
        assert!(net.is_idle(), "no reply before service completes");
        m.tick(Cycle(2), &mut net);
        assert!(!net.is_idle(), "reply injected when service completes");
        drain(&mut m, &mut net, &mut sink, 10);
        assert_eq!(sink.got.len(), 1);
    }

    #[test]
    fn sync_instructions_are_atomic_and_sequenced() {
        let mut m = Module::new(0, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        for _ in 0..3 {
            m.enqueue(req(RequestKind::Sync(SyncInstr::fetch_add(1)), 100));
        }
        drain(&mut m, &mut net, &mut sink, 60);
        assert_eq!(sink.got.len(), 3);
        let mut olds: Vec<i32> = sink
            .got
            .iter()
            .map(|(_, p)| match p.payload {
                Payload::Reply(r) => SyncOutcome::decode(r.value).old,
                _ => panic!("reply expected"),
            })
            .collect();
        olds.sort_unstable();
        assert_eq!(olds, vec![0, 1, 2]);
        assert_eq!(m.sync_value(100), 3);
        assert_eq!(m.stats().sync_requests, 3);
    }

    #[test]
    fn write_produces_ack() {
        let mut m = Module::new(0, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        m.enqueue(req(RequestKind::Write, 8));
        drain(&mut m, &mut net, &mut sink, 20);
        assert_eq!(sink.got.len(), 1);
        match sink.got[0].1.payload {
            Payload::Reply(r) => assert_eq!(r.stream, Stream::WriteAck),
            _ => panic!("expected ack"),
        }
        assert_eq!(sink.got[0].1.words, 1);
    }

    #[test]
    fn backpressure_counts_queue_refusal() {
        let mut m = Module::new(0, &cfg());
        for _ in 0..cfg().request_queue {
            assert!(m.can_accept());
            m.enqueue(req(RequestKind::Read, 0));
        }
        assert!(!m.can_accept());
    }

    #[test]
    #[should_panic(expected = "flow control violated")]
    fn enqueue_over_capacity_panics() {
        let mut m = Module::new(0, &cfg());
        for _ in 0..=cfg().request_queue {
            m.enqueue(req(RequestKind::Read, 0));
        }
    }

    #[test]
    fn offline_module_nacks_at_normal_cost() {
        let mut m = Module::new(0, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        m.set_offline(true);
        let mut r = req(RequestKind::Sync(SyncInstr::fetch_add(1)), 100);
        r.seq = 7;
        m.enqueue(r);
        drain(&mut m, &mut net, &mut sink, 30);
        assert_eq!(sink.got.len(), 1);
        match sink.got[0].1.payload {
            Payload::Reply(rep) => {
                assert!(rep.nack);
                assert_eq!(rep.seq, 7);
            }
            _ => panic!("expected reply"),
        }
        // No side effect on the sync word, but the NACK was counted.
        assert_eq!(m.sync_value(100), 0);
        assert_eq!(m.stats().nacks, 1);
        // Back online, the resend succeeds.
        m.set_offline(false);
        m.enqueue(r);
        drain(&mut m, &mut net, &mut sink, 30);
        assert_eq!(m.sync_value(100), 1);
    }

    #[test]
    fn corrupted_request_is_nacked() {
        let mut m = Module::new(0, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        let mut r = req(RequestKind::Write, 8);
        r.nacked = true;
        m.enqueue(r);
        drain(&mut m, &mut net, &mut sink, 20);
        assert_eq!(sink.got.len(), 1);
        match sink.got[0].1.payload {
            Payload::Reply(rep) => {
                assert!(rep.nack);
                assert_eq!(rep.stream, Stream::WriteAck);
            }
            _ => panic!("expected ack"),
        }
        // NACK keeps the real ack's 1-word shape.
        assert_eq!(sink.got[0].1.words, 1);
    }

    #[test]
    fn sync_resend_is_deduplicated() {
        // The same sequenced sync arriving twice (reply lost in flight)
        // must apply once and return the identical outcome both times.
        let mut m = Module::new(0, &cfg());
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        let mut r = req(RequestKind::Sync(SyncInstr::fetch_add(1)), 100);
        r.seq = 9;
        m.enqueue(r);
        m.enqueue(r);
        drain(&mut m, &mut net, &mut sink, 60);
        assert_eq!(sink.got.len(), 2);
        let olds: Vec<i32> = sink
            .got
            .iter()
            .map(|(_, p)| match p.payload {
                Payload::Reply(rep) => SyncOutcome::decode(rep.value).old,
                _ => panic!("reply expected"),
            })
            .collect();
        assert_eq!(olds, vec![0, 0], "resend echoes the first outcome");
        assert_eq!(m.sync_value(100), 1, "applied exactly once");
        // A *new* sequence number applies normally again.
        r.seq = 10;
        m.enqueue(r);
        drain(&mut m, &mut net, &mut sink, 30);
        assert_eq!(m.sync_value(100), 2);
        // clear_sync forgets the dedup slot with the sync words.
        m.clear_sync();
        assert_eq!(m.sync_value(100), 0);
    }
}

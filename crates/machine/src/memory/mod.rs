//! The Cedar memory hierarchy: global shared memory (interleaved modules
//! with synchronization processors) and per-cluster local memories.
//!
//! Cluster memories form a distributed memory system in addition to the
//! global shared memory; data moves between them only via explicit,
//! software-controlled copies (§2 "Memory Hierarchy").

pub mod address;
pub mod cluster_mem;
pub mod global;
pub mod module;
pub mod sync;
pub mod sync_store;

pub use address::{crosses_page, module_of, page_of, MemSpace};
pub use cluster_mem::{ClusterMemStats, ClusterMemory};
pub use global::GlobalMemory;
pub use module::{Module, ModuleStats};
pub use sync::{Rel, SyncInstr, SyncOpKind, SyncOutcome};
pub use sync_store::SyncStore;

//! Cluster-local memory.
//!
//! Each Alliant FX/8 cluster has 32 MB of interleaved local memory behind
//! the shared cache. Its bandwidth is half the cache's: 192 MB/s per
//! cluster, about four 64-bit words per 170 ns cycle. The simulator models
//! it as a bandwidth-serialized line-transfer engine: the cache schedules
//! line fills and write-backs against it.

use crate::config::ClusterMemoryConfig;
use crate::time::Cycle;

/// Statistics for one cluster memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMemStats {
    /// Line fills serviced.
    pub fills: u64,
    /// Write-backs serviced.
    pub writebacks: u64,
    /// Total words transferred.
    pub words: u64,
}

/// One cluster's interleaved local memory.
#[derive(Debug)]
pub struct ClusterMemory {
    words_per_cycle: u32,
    latency: u32,
    /// First cycle at which the memory bus is free.
    next_free: Cycle,
    stats: ClusterMemStats,
}

impl ClusterMemory {
    /// Build from configuration.
    pub fn new(cfg: &ClusterMemoryConfig) -> ClusterMemory {
        ClusterMemory {
            words_per_cycle: cfg.words_per_cycle.max(1),
            latency: cfg.latency,
            next_free: Cycle::ZERO,
            stats: ClusterMemStats::default(),
        }
    }

    /// Schedule a line fill of `words` starting no earlier than `now`;
    /// returns the cycle at which the data is available in the cache.
    pub fn fill(&mut self, now: Cycle, words: u32) -> Cycle {
        let done = self.occupy(now, words);
        self.stats.fills += 1;
        done + u64::from(self.latency)
    }

    /// Schedule a write-back of `words`; consumes bandwidth but nobody
    /// waits for it.
    pub fn writeback(&mut self, now: Cycle, words: u32) {
        self.occupy(now, words);
        self.stats.writebacks += 1;
    }

    /// True when no transfer is in flight at `now`.
    pub fn is_idle(&self, now: Cycle) -> bool {
        now >= self.next_free
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClusterMemStats {
        self.stats
    }

    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.cycle(self.next_free);
        w.u64(self.stats.fills);
        w.u64(self.stats.writebacks);
        w.u64(self.stats.words);
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        self.next_free = r.cycle()?;
        self.stats = ClusterMemStats {
            fills: r.u64()?,
            writebacks: r.u64()?,
            words: r.u64()?,
        };
        Ok(())
    }

    fn occupy(&mut self, now: Cycle, words: u32) -> Cycle {
        let start = if now > self.next_free {
            now
        } else {
            self.next_free
        };
        let busy = words.div_ceil(self.words_per_cycle);
        self.next_free = start + u64::from(busy.max(1));
        self.stats.words += u64::from(words);
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> ClusterMemory {
        ClusterMemory::new(&ClusterMemoryConfig::cedar())
    }

    #[test]
    fn fill_latency_applies() {
        let mut m = mem();
        // 4 words at 4 words/cycle = 1 busy cycle, + 8 latency.
        assert_eq!(m.fill(Cycle(0), 4), Cycle(9));
    }

    #[test]
    fn bandwidth_serializes_transfers() {
        let mut m = mem();
        let a = m.fill(Cycle(0), 4);
        let b = m.fill(Cycle(0), 4);
        assert_eq!(b - a, 1, "second fill starts a bus-cycle later");
        assert!(!m.is_idle(Cycle(0)));
        assert!(m.is_idle(Cycle(100)));
    }

    #[test]
    fn writeback_consumes_bandwidth_without_latency_penalty_to_caller() {
        let mut m = mem();
        m.writeback(Cycle(0), 4);
        // A fill scheduled right after waits for the bus.
        let done = m.fill(Cycle(0), 4);
        assert_eq!(done, Cycle(10)); // 1 (wb) + 1 (fill) + 8 latency
        let s = m.stats();
        assert_eq!(s.fills, 1);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.words, 8);
    }

    #[test]
    fn sustained_rate_matches_192mb_per_sec() {
        let mut m = mem();
        // 1000 line fills of 4 words back to back: 1000 bus cycles.
        let mut last = Cycle::ZERO;
        for _ in 0..1000 {
            last = m.fill(Cycle(0), 4);
        }
        // 4000 words / (~1000 cycles + latency tail) ≈ 4 words/cycle.
        let cycles = (last - Cycle::ZERO) as f64;
        let rate = 4000.0 / cycles;
        assert!(rate > 3.5 && rate <= 4.1, "rate={rate}");
    }
}

//! The Cedar physical address map.
//!
//! The physical address space is divided into two halves: cluster memory
//! in the lower half, globally shared memory in the upper half (§2
//! "Memory Hierarchy"). The simulator addresses memory in 64-bit words and
//! keeps the space explicit with [`MemSpace`] rather than encoding it in a
//! high address bit; global memory is double-word (8-byte) interleaved and
//! aligned, so word `w` lives in module `w mod modules`.

use crate::ids::{ModuleId, PageId};

/// Which half of the physical address space an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Cluster-local memory, accessible only to CEs of that cluster and
    /// cached by the cluster's shared cache.
    Cluster,
    /// Global shared memory, reached through the omega networks; never
    /// cached (coherence for global data is maintained in software).
    Global,
}

/// The global-memory module holding word `addr` under `modules`-way
/// double-word interleaving.
///
/// # Examples
///
/// ```
/// use cedar_machine::memory::address::module_of;
/// use cedar_machine::ids::ModuleId;
/// assert_eq!(module_of(0, 32), ModuleId(0));
/// assert_eq!(module_of(33, 32), ModuleId(1));
/// ```
pub fn module_of(addr: u64, modules: usize) -> ModuleId {
    ModuleId((addr % modules as u64) as usize)
}

/// The 4 KB page containing word `addr` (`page_words` = words per page).
pub fn page_of(addr: u64, page_words: u64) -> PageId {
    PageId(addr / page_words)
}

/// True when `a` and `b` lie on different pages — the PFU suspends at
/// page crossings because it only holds physical addresses.
pub fn crosses_page(a: u64, b: u64, page_words: u64) -> bool {
    page_of(a, page_words) != page_of(b, page_words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_spreads_consecutive_words() {
        let hits: Vec<usize> = (0..64).map(|w| module_of(w, 32).0).collect();
        // Words 0..32 hit each module exactly once, then wrap.
        assert_eq!(&hits[..32], &(0..32).collect::<Vec<_>>()[..]);
        assert_eq!(hits[32], 0);
    }

    #[test]
    fn pages_are_512_words() {
        assert_eq!(page_of(0, 512), PageId(0));
        assert_eq!(page_of(511, 512), PageId(0));
        assert_eq!(page_of(512, 512), PageId(1));
        assert!(crosses_page(511, 512, 512));
        assert!(!crosses_page(0, 511, 512));
    }
}

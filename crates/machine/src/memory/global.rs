//! The interleaved global shared memory.
//!
//! 64 MB of double-word-interleaved memory spread across one module per
//! network port (32 on Cedar), giving the paper's 768 MB/s aggregate /
//! 24 MB/s-per-processor peak. The array implements the forward network's
//! [`NetSink`] so delivered request packets land directly in module queues.

use crate::config::GlobalMemoryConfig;
use crate::ids::ModuleId;
use crate::memory::address::module_of;
use crate::memory::module::{Module, ModuleStats};
use crate::network::packet::{Packet, Payload};
use crate::network::{NetSink, Omega};
use crate::time::Cycle;

/// The global-memory module array.
#[derive(Debug)]
pub struct GlobalMemory {
    modules: Vec<Module>,
    /// Chunked bitmask of possibly-non-idle modules: a bit is set when a
    /// request is delivered and cleared when the module's tick leaves it
    /// idle. A module with a clear bit ticks as a guaranteed no-op, so
    /// the per-cycle loop visits set bits only (in ascending module
    /// order, like the dense loop it replaces).
    active: Vec<u64>,
    /// Bumped whenever any module consumed a queue entry — the moments a
    /// [`NetSink::try_begin`] answer can turn from full to accepting.
    /// The forward network's flow path uses this as its sink-acceptance
    /// epoch (see `Omega::tick_epoch`).
    accept_epoch: u64,
    dropped_replies: u64,
}

impl GlobalMemory {
    /// Build the module array.
    pub fn new(cfg: &GlobalMemoryConfig) -> GlobalMemory {
        GlobalMemory {
            modules: (0..cfg.modules).map(|p| Module::new(p, cfg)).collect(),
            active: vec![0; cfg.modules.div_ceil(64)],
            accept_epoch: 0,
            dropped_replies: 0,
        }
    }

    /// Number of modules.
    pub fn modules(&self) -> usize {
        self.modules.len()
    }

    /// The module servicing global word `addr`.
    pub fn module_of(&self, addr: u64) -> ModuleId {
        module_of(addr, self.modules.len())
    }

    /// Take one module offline (it NACKs every request it services) or
    /// bring it back — driven by the machine's fault schedule.
    pub fn set_module_offline(&mut self, module: usize, offline: bool) {
        self.modules[module].set_offline(offline);
    }

    /// Queue depth of every module with waiting requests, `(module,
    /// depth)` — the deadlock hang report's module census.
    pub fn queue_depths(&self) -> Vec<(usize, usize)> {
        self.modules
            .iter()
            .enumerate()
            .filter(|(_, m)| m.queue_len() > 0)
            .map(|(i, m)| (i, m.queue_len()))
            .collect()
    }

    /// Advance every non-idle module one cycle, injecting replies into
    /// `reverse`. Idle modules tick as guaranteed no-ops, so only the
    /// active mask's set bits are visited (ascending module order).
    pub fn tick(&mut self, now: Cycle, reverse: &mut Omega) {
        let mut popped = false;
        for c in 0..self.active.len() {
            let mut bits = self.active[c];
            while bits != 0 {
                let i = c * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let m = &mut self.modules[i];
                popped |= m.tick(now, reverse);
                if m.is_idle() {
                    self.active[c] &= !(1 << (i % 64));
                }
            }
        }
        if popped {
            self.accept_epoch += 1;
        }
    }

    /// Sink-acceptance epoch for the forward network: changes exactly
    /// when some module's queue made room (the only event that can turn a
    /// refusing [`NetSink::try_begin`] into an accepting one between
    /// forward-network ticks — queue growth happens inside those ticks).
    pub(crate) fn accept_epoch(&self) -> u64 {
        self.accept_epoch
    }

    /// True when every module is idle.
    pub fn is_idle(&self) -> bool {
        self.modules.iter().all(Module::is_idle)
    }

    /// The earliest future cycle at which any module can change externally
    /// visible state (`None` when the whole array is idle). Bails out as
    /// soon as a module reports the very next cycle — no later module can
    /// report anything earlier.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let soon = now + 1;
        let mut best: Option<Cycle> = None;
        for m in &self.modules {
            match m.next_event(now) {
                Some(t) if t <= soon => return Some(soon),
                Some(t) => best = Some(best.map_or(t, |b: Cycle| b.min(t))),
                None => {}
            }
        }
        best
    }

    /// Credit `cycles` skipped quiescent cycles into every module's
    /// counters (see [`Module::skip`]).
    pub(crate) fn skip(&mut self, cycles: u64) {
        for m in &mut self.modules {
            m.skip(cycles);
        }
    }

    /// Statistics of one module.
    pub fn module_stats(&self, m: ModuleId) -> ModuleStats {
        self.modules[m.0].stats()
    }

    /// Statistics of every module, in bank order.
    pub fn per_module_stats(&self) -> impl Iterator<Item = ModuleStats> + '_ {
        self.modules.iter().map(Module::stats)
    }

    /// Aggregate statistics over all modules.
    pub fn total_stats(&self) -> ModuleStats {
        let mut t = ModuleStats::default();
        for m in &self.modules {
            let s = m.stats();
            t.requests += s.requests;
            t.sync_requests += s.sync_requests;
            t.busy_cycles += s.busy_cycles;
            t.reply_stall_cycles += s.reply_stall_cycles;
            t.queue_occupancy_sum += s.queue_occupancy_sum;
            t.conflict_stall_cycles += s.conflict_stall_cycles;
            t.nacks += s.nacks;
        }
        t
    }

    /// Current value of the synchronization word at global address `addr`
    /// (testing / debugging aid).
    pub fn sync_value(&self, addr: u64) -> i32 {
        self.modules[self.module_of(addr).0].sync_value(addr)
    }

    /// Clear all synchronization words (between independent runs).
    pub fn clear_sync(&mut self) {
        for m in &mut self.modules {
            m.clear_sync();
        }
    }

    /// Fold every module's persistent memory state into `h`, in bank
    /// order (see `Machine::memory_digest`).
    pub(crate) fn digest(&self, h: &mut impl std::hash::Hasher) {
        for m in &self.modules {
            m.digest(h);
        }
    }

    /// Serialize the array: the active mask, acceptance epoch, and every
    /// module in bank order. The stored module count is checked against
    /// the configuration on restore.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"GMEM");
        w.seq(self.active.iter(), |w, bits| w.u64(*bits));
        w.u64(self.accept_epoch);
        w.u64(self.dropped_replies);
        w.seq(self.modules.iter(), |w, m| m.save_state(w));
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        r.tag(b"GMEM")?;
        let active = r.seq(|r| r.u64())?;
        if active.len() != self.active.len() {
            return Err(r.err_mismatch(&format!(
                "active mask holds {} words, machine needs {}",
                active.len(),
                self.active.len()
            )));
        }
        self.active = active;
        self.accept_epoch = r.u64()?;
        self.dropped_replies = r.u64()?;
        let n = self.modules.len();
        r.seq_exact(n, |r, i| self.modules[i].load_state(r))?;
        Ok(())
    }

    /// Drain every module's trace stamps into `events`, in bank order,
    /// accumulating overflow drops. Bank order is deterministic, and each
    /// module's internal stamp order is its own service order.
    pub(crate) fn drain_trace(&mut self, events: &mut Vec<crate::trace::TraceEvent>) -> u64 {
        let mut dropped = 0;
        for m in &mut self.modules {
            let (mut ev, d) = m.drain_trace();
            events.append(&mut ev);
            dropped += d;
        }
        dropped
    }
}

impl NetSink for GlobalMemory {
    fn try_begin(&mut self, port: usize) -> bool {
        port < self.modules.len() && self.modules[port].can_accept()
    }

    fn deliver(&mut self, port: usize, packet: Packet) {
        match packet.payload {
            Payload::Request(req) => {
                self.modules[port].enqueue(req);
                self.active[port / 64] |= 1 << (port % 64);
            }
            Payload::Reply(_) => {
                // A reply on the forward network is a routing bug upstream;
                // count it rather than corrupting module state.
                self.dropped_replies += 1;
                debug_assert!(false, "reply packet delivered to global memory");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::ids::CeId;
    use crate::network::packet::{MemRequest, RequestKind, Stream};

    #[derive(Default)]
    struct Collect {
        got: Vec<(usize, Packet)>,
    }
    impl NetSink for Collect {
        fn try_begin(&mut self, _p: usize) -> bool {
            true
        }
        fn deliver(&mut self, p: usize, pkt: Packet) {
            self.got.push((p, pkt));
        }
    }

    #[test]
    fn requests_route_to_interleaved_modules_and_return() {
        let gcfg = GlobalMemoryConfig::cedar();
        let ncfg = NetworkConfig::cedar();
        let mut gm = GlobalMemory::new(&gcfg);
        let mut fwd = Omega::new(32, &ncfg);
        let mut rev = Omega::new(32, &ncfg);
        let mut ce_side = Collect::default();

        // CE 0 reads words 0..8: one per module 0..8.
        for w in 0..8u64 {
            let dst = gm.module_of(w).0;
            assert_eq!(dst, w as usize);
            // Injection may be refused once the port queue fills; the
            // refused words are simply not part of this test.
            let _ = fwd.try_inject(
                0,
                Packet::read_request(
                    dst,
                    MemRequest {
                        ce: CeId(0),
                        kind: RequestKind::Read,
                        addr: w,
                        stream: Stream::Direct { elem: w as u32 },
                        issued: Cycle(0),
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    },
                ),
            );
        }
        for c in 0..200u64 {
            let now = Cycle(c);
            gm.tick(now, &mut rev);
            rev.tick(&mut ce_side);
            fwd.tick(&mut gm);
        }
        // Injector capacity is 2 packets, so not all 8 were accepted above;
        // at least the accepted ones complete.
        assert!(!ce_side.got.is_empty());
        for (port, _) in &ce_side.got {
            assert_eq!(*port, 0, "replies return to the requesting CE's port");
        }
        assert!(gm.is_idle());
        assert!(fwd.is_idle() && rev.is_idle());
    }

    #[test]
    fn total_stats_aggregate() {
        let gcfg = GlobalMemoryConfig::cedar();
        let gm = GlobalMemory::new(&gcfg);
        assert_eq!(gm.total_stats().requests, 0);
        assert_eq!(gm.modules(), 32);
    }
}

//! Causal request tracing and latency attribution.
//!
//! The paper's core analysis decomposes a global-memory access into its
//! pipeline components: CE issue, omega network transit (stage by stage),
//! module queueing and service, and the return trip. This module follows
//! *individual* accesses — "journeys" — through that pipeline, stamping
//! the cycle at which each hop is entered, so the decomposition can be
//! reproduced from live traces instead of aggregate counters.
//!
//! # Determinism
//!
//! Journeys are sampled with the same counter-based discipline as
//! [`fault`](crate::fault): `mix(seed, site, seq) % 1M < sample_ppm`,
//! where `site` encodes the sampling point (a CE, a prefetch unit, a
//! barrier) and `seq` is a monotone per-site candidate counter. Both are
//! engine-invariant — the parallel engine runs every CE bit-identically
//! to the serial one, and fast-forward only skips cycles in which no hop
//! can occur — so the set of sampled journeys, every stamped cycle, and
//! every derived report are bit-identical across `CEDAR_NUM_THREADS` and
//! fast-forward on/off. With tracing off (`sample_ppm == 0`) no trace id
//! is ever assigned, no event is ever stamped, and no `trace.*` stats
//! key is emitted, so all registries and goldens match the untraced
//! simulator byte for byte.

use crate::fault::mix;
use crate::snapshot::{SnapReader, SnapResult, SnapWriter};
use crate::time::Cycle;

/// Sampling site salt for per-CE memory-op journeys (XORed with the CE
/// id). Disjoint from the fault layer's `SALT_FORWARD`/`SALT_REVERSE`
/// (`0xF0`/`0x0F00` XOR a port number) by construction: all trace salts
/// live above bit 24.
pub(crate) const SALT_TRACE: u64 = 0x1CE_0000;
/// Sampling site salt for prefetch-burst journeys (XORed with the CE id).
pub(crate) const SALT_TRACE_PFU: u64 = 0x2CE_0000;
/// Sampling site salt for barrier episodes (XORed with the barrier's
/// registry index; the sequence number is the per-CE use count, which is
/// identical across all participating CEs).
pub(crate) const SALT_TRACE_BAR: u64 = 0x3CE_0000;

/// Deterministic journey-sampling plan. Installed with
/// [`MachineConfig::with_trace`](crate::config::MachineConfig::with_trace)
/// or the `CEDAR_TRACE_SEED` / `CEDAR_TRACE_SAMPLE_PPM` environment knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePlan {
    /// Seed for the counter-based sampling RNG.
    pub seed: u64,
    /// Journeys sampled per million candidates (0 disables tracing,
    /// 1_000_000 traces everything).
    pub sample_ppm: u32,
}

impl TracePlan {
    /// A disabled plan carrying only a seed.
    pub fn none(seed: u64) -> TracePlan {
        TracePlan {
            seed,
            sample_ppm: 0,
        }
    }

    /// Whether any journey can ever be sampled.
    pub fn enabled(&self) -> bool {
        self.sample_ppm > 0
    }

    /// Validate rate bounds (per-million rates cannot exceed a million).
    pub fn validate(&self) -> Result<(), String> {
        if self.sample_ppm > 1_000_000 {
            return Err(format!(
                "trace sample rate {} ppm exceeds 1000000",
                self.sample_ppm
            ));
        }
        Ok(())
    }
}

/// Hop kinds, packed into the high byte of [`TraceEvent::hop`]. The low
/// byte carries a per-kind argument (op class, network stage, hit/fill).
pub mod hop {
    /// CE issued the request into its network port queue (arg = op class).
    pub const ISSUE: u8 = 0;
    /// Forward network accepted the packet at the CE's injector.
    pub const FWD_INJECT: u8 = 1;
    /// Head word entered forward-network stage `arg`.
    pub const FWD_STAGE: u8 = 2;
    /// Tail word left the forward network at the module port.
    pub const FWD_DELIVER: u8 = 3;
    /// Module bank began servicing the request.
    pub const SVC_START: u8 = 4;
    /// Module bank finished servicing; the reply is ready.
    pub const SVC_END: u8 = 5;
    /// Reverse network accepted the reply at the module's injector.
    pub const REV_INJECT: u8 = 6;
    /// Head word entered reverse-network stage `arg`.
    pub const REV_STAGE: u8 = 7;
    /// Tail word left the reverse network at the CE port.
    pub const REV_DELIVER: u8 = 8;
    /// CE consumed the reply.
    pub const RETIRE: u8 = 9;
    /// Cluster-cache access completed (arg: 0 = hit, 1 = miss/fill).
    pub const CACHE_DONE: u8 = 10;
    /// Prefetch unit fired a burst.
    pub const PF_FIRE: u8 = 11;
    /// Last word of a prefetch burst arrived.
    pub const PF_DONE: u8 = 12;
    /// CE arrived at a barrier.
    pub const BAR_ARRIVE: u8 = 13;
    /// CE observed the barrier release.
    pub const BAR_RELEASE: u8 = 14;

    /// Human-readable hop-kind name.
    pub fn name(kind: u8) -> &'static str {
        match kind {
            ISSUE => "issue",
            FWD_INJECT => "fwd_inject",
            FWD_STAGE => "fwd_stage",
            FWD_DELIVER => "fwd_deliver",
            SVC_START => "svc_start",
            SVC_END => "svc_end",
            REV_INJECT => "rev_inject",
            REV_STAGE => "rev_stage",
            REV_DELIVER => "rev_deliver",
            RETIRE => "retire",
            CACHE_DONE => "cache_done",
            PF_FIRE => "pf_fire",
            PF_DONE => "pf_done",
            BAR_ARRIVE => "bar_arrive",
            BAR_RELEASE => "bar_release",
            _ => "unknown",
        }
    }
}

/// Op classes carried in the [`hop::ISSUE`] argument.
pub mod class {
    /// Scalar global read.
    pub const SCALAR: u8 = 0;
    /// Global write (scalar or vector element).
    pub const WRITE: u8 = 1;
    /// Synchronization (Test-And-Operate) instruction.
    pub const SYNC: u8 = 2;
    /// Direct (non-prefetched) vector element read.
    pub const DIRECT: u8 = 3;
    /// Prefetch-unit burst.
    pub const PREFETCH: u8 = 4;
    /// Cluster-cache access.
    pub const CACHE: u8 = 5;
    /// Barrier episode.
    pub const BARRIER: u8 = 6;

    /// Human-readable class name.
    pub fn name(c: u8) -> &'static str {
        match c {
            SCALAR => "scalar",
            WRITE => "write",
            SYNC => "sync",
            DIRECT => "direct",
            PREFETCH => "prefetch",
            CACHE => "cache",
            BARRIER => "barrier",
            _ => "?",
        }
    }
}

/// Journey-id space tag for prefetch bursts (bit 62).
pub(crate) const ID_PREFETCH: u64 = 1 << 62;
/// Journey-id space tag for barrier episodes (bit 63).
pub(crate) const ID_BARRIER: u64 = 1 << 63;

/// One stamped hop of a sampled journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Journey id (nonzero). Memory ops use `(ce+1) << 32 | candidate`;
    /// prefetch bursts set bit 62; barrier episodes set bit 63 and are
    /// shared by every participating CE.
    pub id: u64,
    /// `kind << 8 | arg` (see [`hop`]).
    pub hop: u16,
    /// CE the hop belongs to (the issuing CE for network/module hops).
    pub ce: u16,
    /// Cycle the hop was entered.
    pub at: Cycle,
}

impl TraceEvent {
    /// Pack a hop code.
    #[inline]
    pub fn hop_code(kind: u8, arg: u8) -> u16 {
        (u16::from(kind) << 8) | u16::from(arg)
    }

    /// Hop kind (high byte).
    #[inline]
    pub fn kind(&self) -> u8 {
        (self.hop >> 8) as u8
    }

    /// Hop argument (low byte).
    #[inline]
    pub fn arg(&self) -> u8 {
        (self.hop & 0xFF) as u8
    }
}

/// A bounded event buffer: every stamping site owns one, so a runaway
/// sampling rate degrades into counted drops instead of unbounded memory.
#[derive(Debug, Default)]
pub(crate) struct TraceBuf {
    cap: usize,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) dropped: u64,
}

impl TraceBuf {
    pub(crate) fn with_capacity(cap: usize) -> TraceBuf {
        TraceBuf {
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    #[inline]
    pub(crate) fn stamp(&mut self, id: u64, kind: u8, arg: u8, ce: u16, at: Cycle) {
        if self.events.len() < self.cap {
            self.events.push(TraceEvent {
                id,
                hop: TraceEvent::hop_code(kind, arg),
                ce,
                at,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Serialize the stamped events and drop count (capacity is a
    /// construction-time constant).
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.events.iter(), put_trace_event);
        w.u64(self.dropped);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.events = r.seq(get_trace_event)?;
        self.dropped = r.u64()?;
        Ok(())
    }
}

pub(crate) fn put_trace_event(w: &mut SnapWriter, e: &TraceEvent) {
    w.u64(e.id);
    w.u16(e.hop);
    w.u16(e.ce);
    w.cycle(e.at);
}

pub(crate) fn get_trace_event(r: &mut SnapReader) -> SnapResult<TraceEvent> {
    Ok(TraceEvent {
        id: r.u64()?,
        hop: r.u16()?,
        ce: r.u16()?,
        at: r.cycle()?,
    })
}

/// Per-CE tracing controller: owns the sampling counter for the CE's
/// memory ops and the CE-side stamps (issue, retire, cache, barriers).
/// Present on an engine only when tracing is enabled, mirroring the
/// fault layer's `CeFaultCtl`.
#[derive(Debug)]
pub(crate) struct CeTraceCtl {
    seed: u64,
    ppm: u64,
    ce: u16,
    /// Monotone candidate counter over the CE's network requests and
    /// accepted cache accesses — the sampling sequence number.
    candidates: u64,
    /// Barrier episode the CE is currently inside, if sampled.
    pub(crate) episode: Option<u64>,
    pub(crate) buf: TraceBuf,
}

/// Per-CE event-buffer capacity.
const CE_TRACE_CAP: usize = 1 << 16;
/// Per-network event-buffer capacity.
const NET_TRACE_CAP: usize = 1 << 18;
/// Per-memory-module event-buffer capacity.
pub(crate) const MODULE_TRACE_CAP: usize = 1 << 14;
/// Per-prefetch-unit event-buffer capacity.
const PFU_TRACE_CAP: usize = 1 << 12;

impl CeTraceCtl {
    pub(crate) fn new(seed: u64, sample_ppm: u32, ce: u16) -> CeTraceCtl {
        CeTraceCtl {
            seed,
            ppm: u64::from(sample_ppm),
            ce,
            candidates: 0,
            episode: None,
            buf: TraceBuf::with_capacity(CE_TRACE_CAP),
        }
    }

    /// Consider the next memory-op candidate; returns its journey id when
    /// sampled, else 0. Call exactly once per request issue — the counter
    /// is the deterministic sampling sequence.
    #[inline]
    pub(crate) fn sample_mem(&mut self) -> u64 {
        let n = self.candidates;
        self.candidates += 1;
        if mix(self.seed, SALT_TRACE ^ u64::from(self.ce), n) % 1_000_000 < self.ppm {
            (u64::from(self.ce) + 1) << 32 | n
        } else {
            0
        }
    }

    /// Consider a barrier episode (`site` = barrier registry index,
    /// `epoch` = the CE's per-barrier use count, identical across all
    /// participants). Returns the machine-wide episode id when sampled.
    #[inline]
    pub(crate) fn sample_barrier(&mut self, barrier: usize, epoch: u64) -> Option<u64> {
        if mix(self.seed, SALT_TRACE_BAR ^ barrier as u64, epoch) % 1_000_000 < self.ppm {
            Some(ID_BARRIER | (barrier as u64) << 32 | epoch)
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn stamp(&mut self, id: u64, kind: u8, arg: u8, at: Cycle) {
        let ce = self.ce;
        self.buf.stamp(id, kind, arg, ce, at);
    }

    /// Serialize the sampling cursor (the RNG counter), the in-progress
    /// barrier episode, and the stamp buffer. Seed/rate/CE id are
    /// configuration, reconstructed on restore.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.candidates);
        w.opt(self.episode.as_ref(), |w, id| w.u64(*id));
        self.buf.save_state(w);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.candidates = r.u64()?;
        self.episode = r.opt(|r| r.u64())?;
        self.buf.load_state(r)
    }
}

/// Whether a prefetch fire is sampled, and its journey id. Free function
/// so the prefetch unit needs no controller object — just the plan.
#[inline]
pub(crate) fn sample_prefetch(seed: u64, ppm: u32, ce: u16, fire_seq: u64) -> Option<u64> {
    if mix(seed, SALT_TRACE_PFU ^ u64::from(ce), fire_seq) % 1_000_000 < u64::from(ppm) {
        Some(ID_PREFETCH | u64::from(ce) << 32 | fire_seq)
    } else {
        None
    }
}

/// Network-side tracing state for one omega instance: the cycle stamp
/// (the network itself has no notion of absolute time — the machine sets
/// it before any network activity each ticked cycle) and the stamp
/// buffer. `fwd` selects the forward or reverse hop kinds.
#[derive(Debug)]
pub(crate) struct NetTrace {
    pub(crate) now: Cycle,
    pub(crate) fwd: bool,
    pub(crate) buf: TraceBuf,
}

impl NetTrace {
    pub(crate) fn new(fwd: bool) -> NetTrace {
        NetTrace {
            now: Cycle::ZERO,
            fwd,
            buf: TraceBuf::with_capacity(NET_TRACE_CAP),
        }
    }

    /// Stamp an injection-accepted hop.
    #[inline]
    pub(crate) fn stamp_inject(&mut self, id: u64, ce: u16) {
        let kind = if self.fwd {
            hop::FWD_INJECT
        } else {
            hop::REV_INJECT
        };
        let at = self.now;
        self.buf.stamp(id, kind, 0, ce, at);
    }

    /// Stamp a head word entering switch stage `stage`.
    #[inline]
    pub(crate) fn stamp_stage(&mut self, id: u64, ce: u16, stage: u8) {
        let kind = if self.fwd {
            hop::FWD_STAGE
        } else {
            hop::REV_STAGE
        };
        let at = self.now;
        self.buf.stamp(id, kind, stage, ce, at);
    }

    /// Stamp a tail word leaving the network.
    #[inline]
    pub(crate) fn stamp_deliver(&mut self, id: u64, ce: u16) {
        let kind = if self.fwd {
            hop::FWD_DELIVER
        } else {
            hop::REV_DELIVER
        };
        let at = self.now;
        self.buf.stamp(id, kind, 0, ce, at);
    }

    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.cycle(self.now);
        self.buf.save_state(w);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.now = r.cycle()?;
        self.buf.load_state(r)
    }
}

/// Prefetch-unit tracing state: the plan plus the currently traced fire.
#[derive(Debug)]
pub(crate) struct PfuTrace {
    pub(crate) seed: u64,
    pub(crate) ppm: u32,
    /// `(journey id, fire_seq)` of the fire being traced, if any.
    pub(crate) cur: Option<(u64, u64)>,
    pub(crate) buf: TraceBuf,
}

impl PfuTrace {
    pub(crate) fn new(seed: u64, ppm: u32) -> PfuTrace {
        PfuTrace {
            seed,
            ppm,
            cur: None,
            buf: TraceBuf::with_capacity(PFU_TRACE_CAP),
        }
    }

    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.opt(self.cur.as_ref(), |w, (id, seq)| {
            w.u64(*id);
            w.u64(*seq);
        });
        self.buf.save_state(w);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.cur = r.opt(|r| Ok((r.u64()?, r.u64()?)))?;
        self.buf.load_state(r)
    }
}

/// The machine-wide span store: every subsystem's buffer drained (in a
/// fixed deterministic order) at end of run.
#[derive(Debug, Default)]
pub(crate) struct TraceStore {
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) dropped: u64,
}

impl TraceStore {
    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.tag(b"TRCS");
        w.seq(self.events.iter(), put_trace_event);
        w.u64(self.dropped);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        r.tag(b"TRCS")?;
        self.events = r.seq(get_trace_event)?;
        self.dropped = r.u64()?;
        Ok(())
    }
}

/// One assembled journey: the stamped hops of a single sampled access (or
/// of one CE's participation in a barrier episode), sorted by cycle.
#[derive(Debug, Clone)]
pub struct Journey {
    /// Journey id (see [`TraceEvent::id`]).
    pub id: u64,
    /// Op class (see [`class`]).
    pub class: u8,
    /// Owning CE.
    pub ce: u16,
    /// `(hop code, cycle)` in ascending cycle order.
    pub hops: Vec<(u16, Cycle)>,
}

impl Journey {
    /// First stamp of hop `kind`, if present.
    pub fn at(&self, kind: u8) -> Option<Cycle> {
        self.hops
            .iter()
            .find(|(h, _)| (h >> 8) as u8 == kind)
            .map(|&(_, c)| c)
    }

    /// Cycle of the journey's first hop.
    pub fn start(&self) -> Cycle {
        self.hops.first().map_or(Cycle::ZERO, |&(_, c)| c)
    }

    /// Cycle of the journey's last hop.
    pub fn end(&self) -> Cycle {
        self.hops.last().map_or(Cycle::ZERO, |&(_, c)| c)
    }
}

/// Assemble journeys from a raw event soup. Events are grouped by
/// `(id, ce)` — barrier episodes share an id across CEs, so each CE's
/// participation becomes its own journey — and sorted deterministically.
/// Retried accesses (fault layer resends under the same id) keep the
/// earliest stamp per hop code.
pub fn assemble(events: &[TraceEvent]) -> Vec<Journey> {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.id, e.ce, e.at, e.hop));
    let mut out: Vec<Journey> = Vec::new();
    for e in sorted {
        let fresh = match out.last() {
            Some(j) => j.id != e.id || j.ce != e.ce,
            None => true,
        };
        if fresh {
            out.push(Journey {
                id: e.id,
                class: journey_class(e.id),
                ce: e.ce,
                hops: Vec::new(),
            });
        }
        let j = out.last_mut().expect("journey pushed above");
        if j.class == u8::MAX && e.kind() == hop::ISSUE {
            j.class = e.arg();
        }
        // Keep the earliest stamp per hop code (a NACKed access is
        // resent under the same id; the first traversal is the one the
        // decomposition wants, later ones remain visible as duplicates
        // of network hops at later cycles).
        if !j.hops.iter().any(|&(h, _)| h == e.hop) {
            j.hops.push((e.hop, e.at));
        }
    }
    for j in &mut out {
        if j.class == u8::MAX {
            // A journey with no issue stamp (e.g. pure network hops of a
            // dropped packet): classify from the hop mix.
            j.class = class::SCALAR;
        }
        j.hops.sort_by_key(|&(h, c)| (c, h));
    }
    out
}

/// Class implied by the id space alone, or `u8::MAX` when the issue
/// stamp must decide.
fn journey_class(id: u64) -> u8 {
    if id & ID_BARRIER != 0 {
        class::BARRIER
    } else if id & ID_PREFETCH != 0 {
        class::PREFETCH
    } else {
        u8::MAX
    }
}

/// Latency segments of the pipeline decomposition.
pub const SEGMENTS: &[(&str, u8, u8)] = &[
    // (name, from-hop, to-hop)
    ("inject_wait", hop::ISSUE, hop::FWD_INJECT),
    ("fwd_net", hop::FWD_INJECT, hop::FWD_DELIVER),
    ("module_queue", hop::FWD_DELIVER, hop::SVC_START),
    ("service", hop::SVC_START, hop::SVC_END),
    ("rev_wait", hop::SVC_END, hop::REV_INJECT),
    ("rev_net", hop::REV_INJECT, hop::REV_DELIVER),
    ("retire", hop::REV_DELIVER, hop::RETIRE),
    ("cache", hop::ISSUE, hop::CACHE_DONE),
];

/// One row of the latency-breakdown report.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Op class (see [`class`]).
    pub class: u8,
    /// Segment name (from [`SEGMENTS`], or `"total"`).
    pub segment: &'static str,
    /// Journeys contributing to this row.
    pub count: u64,
    /// Mean segment latency in cycles.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// Maximum observed.
    pub max: u64,
}

/// The per-hop, per-class latency decomposition — the paper's Table-style
/// breakdown reproduced from sampled journeys.
#[derive(Debug, Clone, Default)]
pub struct LatencyBreakdown {
    /// Rows, ordered by (class, segment position).
    pub rows: Vec<BreakdownRow>,
}

impl LatencyBreakdown {
    /// Compute the decomposition over assembled journeys.
    pub fn from_journeys(journeys: &[Journey]) -> LatencyBreakdown {
        let mut rows = Vec::new();
        for cls in 0..=class::BARRIER {
            let of_class: Vec<&Journey> = journeys.iter().filter(|j| j.class == cls).collect();
            if of_class.is_empty() {
                continue;
            }
            for &(name, from, to) in SEGMENTS {
                let samples: Vec<u64> = of_class
                    .iter()
                    .filter_map(|j| {
                        let (a, b) = (j.at(from)?, j.at(to)?);
                        Some(b.saturating_since(a))
                    })
                    .collect();
                if let Some(row) = Self::row(cls, name, samples) {
                    rows.push(row);
                }
            }
            let totals: Vec<u64> = of_class
                .iter()
                .filter(|j| j.hops.len() > 1)
                .map(|j| j.end().saturating_since(j.start()))
                .collect();
            if let Some(row) = Self::row(cls, "total", totals) {
                rows.push(row);
            }
        }
        LatencyBreakdown { rows }
    }

    fn row(cls: u8, segment: &'static str, mut samples: Vec<u64>) -> Option<BreakdownRow> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        let pct = |p: f64| {
            let rank = ((p * count as f64).ceil() as usize).max(1);
            samples[rank - 1]
        };
        Some(BreakdownRow {
            class: cls,
            segment,
            count,
            mean: sum as f64 / count as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            max: *samples.last().expect("non-empty"),
        })
    }

    /// Mean latency of one (class, segment) cell, if present.
    pub fn mean(&self, cls: u8, segment: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.class == cls && r.segment == segment)
            .map(|r| r.mean)
    }

    /// Render as an aligned text table.
    pub fn text_table(&self) -> String {
        let mut out =
            String::from("class     segment       count    mean     p50     p95     max\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<9} {:<13} {:>5} {:>7.1} {:>7} {:>7} {:>7}\n",
                class::name(r.class),
                r.segment,
                r.count,
                r.mean,
                r.p50,
                r.p95,
                r.max,
            ));
        }
        out
    }
}

/// One sampled barrier episode with critical-path attribution: which CE
/// arrived last (making the barrier late), and when the release was
/// observed.
#[derive(Debug, Clone)]
pub struct BarrierEpisode {
    /// Episode id (bit 63 set; shared by all participants).
    pub id: u64,
    /// Barrier registry index.
    pub barrier: u32,
    /// Use count (epoch) of the barrier.
    pub epoch: u32,
    /// `(ce, arrival cycle)` per participant, ascending by CE.
    pub arrivals: Vec<(u16, Cycle)>,
    /// `(ce, release-observed cycle)` per participant, ascending by CE.
    pub releases: Vec<(u16, Cycle)>,
    /// The critical-path CE: last to arrive.
    pub last_ce: u16,
    /// Its arrival cycle.
    pub last_at: Cycle,
}

impl BarrierEpisode {
    /// Cycles the earliest arriver waited for the critical-path CE.
    pub fn skew(&self) -> u64 {
        match self.arrivals.iter().map(|&(_, c)| c).min() {
            Some(first) => self.last_at.saturating_since(first),
            None => 0,
        }
    }
}

/// Assemble barrier episodes (journeys sharing a bit-63 id) with
/// critical-path attribution.
pub fn episodes(journeys: &[Journey]) -> Vec<BarrierEpisode> {
    let mut out: Vec<BarrierEpisode> = Vec::new();
    for j in journeys.iter().filter(|j| j.id & ID_BARRIER != 0) {
        let (arrive, release) = (j.at(hop::BAR_ARRIVE), j.at(hop::BAR_RELEASE));
        let ep = match out.iter_mut().find(|e| e.id == j.id) {
            Some(ep) => ep,
            None => {
                out.push(BarrierEpisode {
                    id: j.id,
                    barrier: ((j.id >> 32) & 0x3FFF_FFFF) as u32,
                    epoch: (j.id & 0xFFFF_FFFF) as u32,
                    arrivals: Vec::new(),
                    releases: Vec::new(),
                    last_ce: j.ce,
                    last_at: Cycle::ZERO,
                });
                out.last_mut().expect("pushed above")
            }
        };
        if let Some(a) = arrive {
            ep.arrivals.push((j.ce, a));
            if a > ep.last_at || ep.arrivals.len() == 1 {
                ep.last_at = a;
                ep.last_ce = j.ce;
            }
        }
        if let Some(r) = release {
            ep.releases.push((j.ce, r));
        }
    }
    for ep in &mut out {
        ep.arrivals.sort_unstable_by_key(|&(ce, _)| ce);
        ep.releases.sort_unstable_by_key(|&(ce, _)| ce);
    }
    out.sort_by_key(|e| e.id);
    out
}

/// Host-side self-profiling of simulator phases: wall-clock per subsystem
/// per tick region, accumulated cheaply (two `Instant::now()` calls per
/// region) and emitted as a JSONL metrics stream. Guides the
/// fast-path/JIT work by showing where host time actually goes.
#[derive(Debug)]
pub struct HostProfiler {
    regions: Vec<(&'static str, u64, u64)>, // (phase, calls, total_ns)
    /// Dynamically named rows (one per parallel worker plus run-level
    /// counters), accumulated by name across runs like the fixed regions.
    extras: Vec<(String, u64, u64)>, // (phase, calls, total_ns)
}

impl Default for HostProfiler {
    fn default() -> HostProfiler {
        HostProfiler::new()
    }
}

/// Tick-region ids for [`HostProfiler::add`].
pub mod region {
    /// Fault-schedule application.
    pub const FAULTS: usize = 0;
    /// Global-memory module ticks.
    pub const GMEM: usize = 1;
    /// Reverse-network tick (including CE-side delivery).
    pub const REVERSE: usize = 2;
    /// Forward-network tick (including module-side delivery).
    pub const FORWARD: usize = 3;
    /// Cluster phase: CC buses + CE engines (per shard in parallel runs).
    pub const CLUSTER: usize = 4;
    /// Parallel exchange phase: staged-injection replay + tracer merge.
    pub const EXCHANGE: usize = 5;
    /// Timeline sampling.
    pub const TIMELINE: usize = 6;
    /// Event-horizon fast-forward.
    pub const FASTFWD: usize = 7;
    /// Number of regions.
    pub const COUNT: usize = 8;

    pub(crate) const NAMES: [&str; COUNT] = [
        "faults", "gmem", "reverse", "forward", "cluster", "exchange", "timeline", "fastfwd",
    ];
}

impl HostProfiler {
    /// A profiler with all regions zeroed.
    pub fn new() -> HostProfiler {
        HostProfiler {
            regions: region::NAMES.iter().map(|&n| (n, 0, 0)).collect(),
            extras: Vec::new(),
        }
    }

    /// Charge `elapsed` host time to `region`.
    #[inline]
    pub fn add(&mut self, region: usize, elapsed: std::time::Duration) {
        let r = &mut self.regions[region];
        r.1 += 1;
        r.2 += elapsed.as_nanos() as u64;
    }

    /// Charge `calls`/`total_ns` to a dynamically named row, creating it
    /// on first use. The parallel engine reports per-worker barrier waits
    /// (`sync_wait_w0`, `sync_wait_w1`, …) and its exchange count
    /// (`exchanges`, wall-time-free) through this; repeated runs on one
    /// machine accumulate, matching the fixed regions.
    pub fn add_named(&mut self, phase: &str, calls: u64, total_ns: u64) {
        match self.extras.iter_mut().find(|(n, _, _)| n == phase) {
            Some(r) => {
                r.1 += calls;
                r.2 += total_ns;
            }
            None => self.extras.push((phase.to_string(), calls, total_ns)),
        }
    }

    /// `(phase, calls, total_ns)` rows in region order.
    pub fn rows(&self) -> &[(&'static str, u64, u64)] {
        &self.regions
    }

    /// Dynamically named `(phase, calls, total_ns)` rows, in first-use
    /// order (workers first, then run counters, as the engine adds them).
    pub fn extra_rows(&self) -> &[(String, u64, u64)] {
        &self.extras
    }

    /// Render the metrics stream: one JSON object per line per phase,
    /// fixed regions first, then the dynamically named rows.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        let named = self.extras.iter().map(|(n, c, t)| (n.as_str(), *c, *t));
        for (phase, calls, total_ns) in self.regions.iter().map(|&(n, c, t)| (n, c, t)).chain(named)
        {
            let mean = if calls == 0 {
                0.0
            } else {
                total_ns as f64 / calls as f64
            };
            out.push_str(&format!(
                "{{\"phase\":\"{phase}\",\"calls\":{calls},\"total_ns\":{total_ns},\"mean_ns\":{mean:.1}}}\n",
            ));
        }
        out
    }
}

/// Run `f`, charging its wall time to `region` when a profiler is
/// installed. The disabled path costs one `Option` branch.
#[inline]
pub(crate) fn profiled<R>(
    prof: &mut Option<Box<HostProfiler>>,
    region: usize,
    f: impl FnOnce() -> R,
) -> R {
    match prof {
        Some(p) => {
            let t0 = std::time::Instant::now();
            let r = f();
            p.add(region, t0.elapsed());
            r
        }
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, kind: u8, arg: u8, ce: u16, at: u64) -> TraceEvent {
        TraceEvent {
            id,
            hop: TraceEvent::hop_code(kind, arg),
            ce,
            at: Cycle(at),
        }
    }

    #[test]
    fn sampling_is_seeded_and_rate_bounded() {
        let mut ctl = CeTraceCtl::new(7, 250_000, 3);
        let ids: Vec<u64> = (0..4000).map(|_| ctl.sample_mem()).collect();
        let sampled = ids.iter().filter(|&&i| i != 0).count();
        // ~25% of 4000 candidates; allow generous slack.
        assert!((700..1300).contains(&sampled), "sampled {sampled}");
        // Bit-identical replay from the same seed.
        let mut ctl2 = CeTraceCtl::new(7, 250_000, 3);
        let ids2: Vec<u64> = (0..4000).map(|_| ctl2.sample_mem()).collect();
        assert_eq!(ids, ids2);
        // A different seed draws a different set.
        let mut ctl3 = CeTraceCtl::new(8, 250_000, 3);
        let ids3: Vec<u64> = (0..4000).map(|_| ctl3.sample_mem()).collect();
        assert_ne!(ids, ids3);
        // Zero rate never samples; full rate always does.
        let mut off = CeTraceCtl::new(7, 0, 3);
        assert!((0..1000).all(|_| off.sample_mem() == 0));
        let mut all = CeTraceCtl::new(7, 1_000_000, 3);
        assert!((0..1000).all(|_| all.sample_mem() != 0));
    }

    #[test]
    fn id_spaces_are_disjoint() {
        let mut ctl = CeTraceCtl::new(7, 1_000_000, 3);
        let mem = ctl.sample_mem();
        let bar = ctl.sample_barrier(2, 5).expect("full rate samples");
        let pf = sample_prefetch(7, 1_000_000, 3, 9).expect("full rate samples");
        assert_eq!(mem & (ID_BARRIER | ID_PREFETCH), 0);
        assert_ne!(bar & ID_BARRIER, 0);
        assert_ne!(pf & ID_PREFETCH, 0);
        assert_eq!(pf & ID_BARRIER, 0);
    }

    #[test]
    fn buffers_cap_and_count_drops() {
        let mut b = TraceBuf::with_capacity(2);
        for i in 0..5 {
            b.stamp(1, hop::ISSUE, 0, 0, Cycle(i));
        }
        assert_eq!(b.events.len(), 2);
        assert_eq!(b.dropped, 3);
    }

    #[test]
    fn assemble_groups_sorts_and_dedups() {
        let id = (1u64 + 1) << 32 | 7;
        let events = vec![
            ev(id, hop::RETIRE, 0, 1, 30),
            ev(id, hop::ISSUE, class::SCALAR, 1, 10),
            ev(id, hop::FWD_INJECT, 0, 1, 11),
            // A resend's duplicate inject at a later cycle is dropped.
            ev(id, hop::FWD_INJECT, 0, 1, 20),
            ev(9 << 32 | 1, hop::ISSUE, class::WRITE, 8, 5),
        ];
        let js = assemble(&events);
        assert_eq!(js.len(), 2);
        let j = js.iter().find(|j| j.id == id).expect("journey present");
        assert_eq!(j.class, class::SCALAR);
        assert_eq!(j.hops.len(), 3);
        assert_eq!(j.at(hop::FWD_INJECT), Some(Cycle(11)));
        assert_eq!(j.start(), Cycle(10));
        assert_eq!(j.end(), Cycle(30));
    }

    #[test]
    fn breakdown_decomposes_segments() {
        let id = 1u64 << 32 | 1;
        let events = vec![
            ev(id, hop::ISSUE, class::SCALAR, 0, 100),
            ev(id, hop::FWD_INJECT, 0, 0, 101),
            ev(id, hop::FWD_DELIVER, 0, 0, 104),
            ev(id, hop::SVC_START, 0, 0, 105),
            ev(id, hop::SVC_END, 0, 0, 107),
            ev(id, hop::REV_INJECT, 0, 0, 107),
            ev(id, hop::REV_DELIVER, 0, 0, 110),
            ev(id, hop::RETIRE, 0, 0, 111),
        ];
        let bd = LatencyBreakdown::from_journeys(&assemble(&events));
        assert_eq!(bd.mean(class::SCALAR, "service"), Some(2.0));
        assert_eq!(bd.mean(class::SCALAR, "fwd_net"), Some(3.0));
        assert_eq!(bd.mean(class::SCALAR, "total"), Some(11.0));
        let table = bd.text_table();
        assert!(table.contains("scalar"));
        assert!(table.contains("service"));
    }

    #[test]
    fn episodes_attribute_the_critical_path() {
        let id = ID_BARRIER | 3u64 << 32 | 2;
        let events = vec![
            ev(id, hop::BAR_ARRIVE, 0, 0, 50),
            ev(id, hop::BAR_ARRIVE, 0, 5, 90),
            ev(id, hop::BAR_ARRIVE, 0, 2, 60),
            ev(id, hop::BAR_RELEASE, 0, 0, 95),
            ev(id, hop::BAR_RELEASE, 0, 2, 96),
            ev(id, hop::BAR_RELEASE, 0, 5, 95),
        ];
        let eps = episodes(&assemble(&events));
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert_eq!(ep.barrier, 3);
        assert_eq!(ep.epoch, 2);
        assert_eq!(ep.last_ce, 5, "CE 5 made the barrier late");
        assert_eq!(ep.last_at, Cycle(90));
        assert_eq!(ep.skew(), 40);
        assert_eq!(ep.arrivals.len(), 3);
        assert_eq!(ep.releases.len(), 3);
    }

    #[test]
    fn trace_plan_validates_rate() {
        assert!(TracePlan {
            seed: 1,
            sample_ppm: 1_000_000
        }
        .validate()
        .is_ok());
        assert!(TracePlan {
            seed: 1,
            sample_ppm: 1_000_001
        }
        .validate()
        .is_err());
        assert!(!TracePlan::none(5).enabled());
        assert!(TracePlan {
            seed: 5,
            sample_ppm: 1
        }
        .enabled());
    }

    #[test]
    fn host_profiler_emits_jsonl_rows() {
        let mut p = HostProfiler::new();
        p.add(region::GMEM, std::time::Duration::from_nanos(500));
        p.add(region::GMEM, std::time::Duration::from_nanos(700));
        let out = p.jsonl();
        assert_eq!(out.lines().count(), region::COUNT);
        let gmem = out
            .lines()
            .find(|l| l.contains("\"gmem\""))
            .expect("gmem row");
        assert!(gmem.contains("\"calls\":2"));
        assert!(gmem.contains("\"total_ns\":1200"));
        assert!(gmem.contains("\"mean_ns\":600.0"));

        // Named rows accumulate by name and append after the regions.
        p.add_named("sync_wait_w0", 3, 900);
        p.add_named("sync_wait_w0", 1, 100);
        p.add_named("exchanges", 42, 0);
        let out = p.jsonl();
        assert_eq!(out.lines().count(), region::COUNT + 2);
        let w0 = out
            .lines()
            .find(|l| l.contains("\"sync_wait_w0\""))
            .expect("worker row");
        assert!(w0.contains("\"calls\":4"));
        assert!(w0.contains("\"total_ns\":1000"));
        assert!(w0.contains("\"mean_ns\":250.0"));
        assert_eq!(p.extra_rows().len(), 2);
    }
}

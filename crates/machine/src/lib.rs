//! # cedar-machine
//!
//! A deterministic, cycle-level simulator of the **Cedar** multiprocessor
//! ("The Cedar System and an Initial Performance Study", ISCA 1993): four
//! Alliant FX/8 clusters of eight vector CEs, per-cluster shared caches
//! and memories, two unidirectional shuffle-exchange networks of 8×8
//! crossbars, 64 MB of interleaved global memory with per-module
//! synchronization processors, per-CE data-prefetch units, and
//! concurrency control buses.
//!
//! The simulator is a *timing* model: it tracks cache tags, queue
//! occupancies, bank conflicts and synchronization values, but not
//! floating-point data. Numeric correctness of the workloads lives in the
//! companion `cedar-kernels` crate, which provides both pure-Rust kernels
//! and the staged instruction streams executed here.
//!
//! ## Quickstart
//!
//! ```
//! use cedar_machine::config::MachineConfig;
//! use cedar_machine::ids::CeId;
//! use cedar_machine::machine::Machine;
//! use cedar_machine::program::{MemOperand, ProgramBuilder, VectorOp};
//!
//! # fn main() -> Result<(), cedar_machine::error::MachineError> {
//! let mut machine = Machine::new(MachineConfig::cedar())?;
//! let mut b = ProgramBuilder::new();
//! b.vector(VectorOp {
//!     length: 32,
//!     flops_per_element: 2,
//!     operand: MemOperand::None,
//! });
//! let report = machine.run(vec![(CeId(0), b.build())], 10_000)?;
//! assert_eq!(report.flops, 64);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod ccbus;
pub mod ce;
pub mod config;
pub mod env;
pub mod error;
pub mod fault;
pub mod ids;
pub mod lower;
pub mod machine;
pub mod memory;
pub mod monitor;
pub mod network;
mod parallel;
pub mod prefetch;
pub mod program;
pub mod sched;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod trace;
pub mod vm;

pub use config::MachineConfig;
pub use error::{ChunkedContext, HangReport, MachineError, Result};
pub use fault::{FaultPlan, LinkOutage, ModuleOutage};
pub use ids::{CeId, ClusterId, CounterId, ModuleId, PageId, PortId};
pub use machine::{CounterScope, Machine, RunReport};
pub use program::{AddressExpr, BarrierId, MemOperand, Op, Program, ProgramBuilder, VectorOp};
pub use sched::BarrierScope;
pub use stats::{MachineStats, UtilSample, UtilizationTimeline};
pub use time::Cycle;
pub use trace::{BarrierEpisode, HostProfiler, Journey, LatencyBreakdown, TraceEvent, TracePlan};

//! Simulated time.
//!
//! The simulator's clock is the CE instruction cycle: 170 ns on the real
//! Cedar. All component timings are expressed in integer cycles; wall-clock
//! quantities (seconds, MFLOPS) are derived at the edges.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// The CE instruction cycle time of the real Cedar, in nanoseconds.
pub const CEDAR_CYCLE_NS: f64 = 170.0;

/// A point in simulated time, measured in CE cycles since reset.
///
/// # Examples
///
/// ```
/// use cedar_machine::time::Cycle;
/// let t = Cycle(100) + 13;
/// assert_eq!(t, Cycle(113));
/// assert_eq!(t - Cycle(100), 13);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Convert a cycle count to seconds using the given cycle time.
    pub fn to_seconds(self, cycle_ns: f64) -> f64 {
        self.0 as f64 * cycle_ns * 1e-9
    }

    /// Convert a cycle count to microseconds using the given cycle time.
    pub fn to_micros(self, cycle_ns: f64) -> f64 {
        self.0 as f64 * cycle_ns * 1e-3
    }

    /// Number of whole cycles in `micros` microseconds at `cycle_ns` per cycle,
    /// rounded up so that delays never come out shorter than requested.
    pub fn from_micros(micros: f64, cycle_ns: f64) -> Cycle {
        Cycle(((micros * 1000.0) / cycle_ns).ceil() as u64)
    }

    /// Saturating difference in cycles (`self - earlier`, or 0 if earlier is later).
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("cycle subtraction underflow: rhs is later than self")
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// Compute a sustained rate in MFLOPS from a flop count and elapsed cycles.
///
/// Returns 0.0 when no time has elapsed.
pub fn mflops(flops: u64, elapsed: u64, cycle_ns: f64) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    let seconds = elapsed as f64 * cycle_ns * 1e-9;
    flops as f64 / seconds / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle(5);
        assert_eq!(t + 7, Cycle(12));
        let mut u = t;
        u += 3;
        assert_eq!(u, Cycle(8));
        assert_eq!(u - t, 3);
        assert_eq!(Cycle(3).saturating_since(Cycle(10)), 0);
        assert_eq!(Cycle(10).saturating_since(Cycle(3)), 7);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycle_subtraction_underflow_panics() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn seconds_conversion_uses_cycle_time() {
        // 1e9 cycles at 170ns = 170 seconds.
        assert!((Cycle(1_000_000_000).to_seconds(CEDAR_CYCLE_NS) - 170.0).abs() < 1e-9);
        assert!((Cycle(1000).to_micros(CEDAR_CYCLE_NS) - 170.0).abs() < 1e-9);
    }

    #[test]
    fn from_micros_rounds_up() {
        // 90us at 170ns/cycle = 529.4 cycles -> 530.
        assert_eq!(Cycle::from_micros(90.0, CEDAR_CYCLE_NS), Cycle(530));
    }

    #[test]
    fn mflops_of_peak_vector_rate() {
        // 2 flops/cycle at 170ns => 11.76 MFLOPS: the CE peak quoted in the paper.
        let rate = mflops(2_000_000, 1_000_000, CEDAR_CYCLE_NS);
        assert!((rate - 11.76).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn mflops_zero_elapsed_is_zero() {
        assert_eq!(mflops(100, 0, CEDAR_CYCLE_NS), 0.0);
    }
}

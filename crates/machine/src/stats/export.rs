//! Exporters for the instrumentation registry: a flat-text counter tree
//! and a Chrome-trace (`chrome://tracing` / Perfetto) JSON timeline.
//!
//! Both are hand-rolled over `std` only — the crate has zero dependencies
//! and the build environment is offline, so no `serde`.

use crate::stats::{MachineStats, UtilizationTimeline};
use crate::trace::{class, hop, Journey};

/// Render the full counter tree as aligned `name value` lines, followed
/// by one summary line per histogram (total/mean/p50/p95/p99).
pub fn flat_text(stats: &MachineStats) -> String {
    let width = stats
        .counters()
        .map(|(k, _)| k.len())
        .chain(stats.histograms().map(|(k, _)| k.len()))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (name, value) in stats.counters() {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    for (name, h) in stats.histograms() {
        let pct = |p| {
            h.percentile(p)
                .map_or_else(|| "-".into(), |v: usize| v.to_string())
        };
        out.push_str(&format!(
            "{name:<width$}  total={} mean={:.1} p50={} p95={} p99={}\n",
            h.total(),
            h.mean(),
            pct(0.50),
            pct(0.95),
            pct(0.99),
        ));
    }
    out
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the run as Chrome-trace JSON (the `chrome://tracing` /
/// [Perfetto](https://ui.perfetto.dev) event format): one track ("thread")
/// per CE carrying a complete ("X") event per timeline bucket named after
/// the bucket's dominant state, plus counter totals attached as the args
/// of a final instant event. Timestamps are microseconds of simulated
/// time at `cycle_ns` nanoseconds per cycle.
pub fn chrome_trace(timeline: &UtilizationTimeline, stats: &MachineStats, cycle_ns: f64) -> String {
    chrome_trace_with_journeys(timeline, stats, cycle_ns, &[])
}

/// [`chrome_trace`] plus one async span ("b"/"e" pair) per traced journey,
/// nested under the owning CE's track and annotated with an instant ("i")
/// event per intermediate hop. Journeys whose id encodes a prefetch or
/// barrier episode keep their class name; span ids reuse the journey id so
/// Perfetto correlates the pair. Passing an empty slice reproduces
/// [`chrome_trace`] byte for byte.
pub fn chrome_trace_with_journeys(
    timeline: &UtilizationTimeline,
    stats: &MachineStats,
    cycle_ns: f64,
    journeys: &[Journey],
) -> String {
    let us_per_cycle = cycle_ns / 1000.0;
    let mut events: Vec<String> = Vec::new();
    events.push(
        r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"cedar"}}"#.to_string(),
    );
    for ce in 0..timeline.ces() {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"CE {}"}}}}"#,
            ce, ce
        ));
    }
    let start = timeline.start().0;
    let run_cycles = timeline.end().saturating_since(timeline.start());
    for (b, bucket) in timeline.buckets().iter().enumerate() {
        let t0 = b as u64 * timeline.bucket_cycles();
        // The last bucket may be partial: clip to the end of the run.
        let t1 = (t0 + timeline.bucket_cycles()).min(run_cycles.max(t0 + 1));
        for (ce, sample) in bucket.iter().enumerate() {
            let Some(state) = sample.dominant() else {
                continue; // CE ran nothing in this bucket
            };
            events.push(format!(
                concat!(
                    r#"{{"name":"{}","cat":"ce","ph":"X","pid":1,"tid":{},"#,
                    r#""ts":{:.3},"dur":{:.3},"#,
                    r#""args":{{"busy":{},"stall_mem":{},"stall_sync":{},"idle":{}}}}}"#
                ),
                state,
                ce,
                (start + t0) as f64 * us_per_cycle,
                (t1 - t0) as f64 * us_per_cycle,
                sample.busy,
                sample.stall_mem,
                sample.stall_sync,
                sample.idle,
            ));
        }
    }
    // Each journey becomes one async span pair on its CE's track, with an
    // instant event per hop in between. Async ("b"/"e") events need a
    // per-pair id; the journey id is unique per (id, ce) grouping, so mix
    // the CE in to keep barrier episodes (shared id, many CEs) distinct.
    for j in journeys {
        let name = class::name(j.class);
        let span_id = j.id ^ (u64::from(j.ce) << 16);
        let (b, e) = (j.start().0, j.end().0);
        events.push(format!(
            r#"{{"name":"{}","cat":"journey","ph":"b","id":{},"pid":1,"tid":{},"ts":{:.3},"args":{{"journey":{}}}}}"#,
            name,
            span_id,
            j.ce,
            b as f64 * us_per_cycle,
            j.id,
        ));
        for &(code, at) in &j.hops {
            let (kind, arg) = ((code >> 8) as u8, (code & 0xff) as u8);
            if kind == hop::ISSUE {
                continue; // coincides with the span open
            }
            events.push(format!(
                r#"{{"name":"{}","cat":"journey","ph":"i","s":"t","pid":1,"tid":{},"ts":{:.3},"args":{{"journey":{},"arg":{}}}}}"#,
                hop::name(kind),
                j.ce,
                at.0 as f64 * us_per_cycle,
                j.id,
                arg,
            ));
        }
        events.push(format!(
            r#"{{"name":"{}","cat":"journey","ph":"e","id":{},"pid":1,"tid":{},"ts":{:.3}}}"#,
            name,
            span_id,
            j.ce,
            e as f64 * us_per_cycle,
        ));
    }
    // Counter totals ride along as one instant event's args.
    let mut args: Vec<String> = stats
        .counters()
        .map(|(k, v)| format!(r#""{}":{}"#, json_escape(k), v))
        .collect();
    if args.is_empty() {
        args.push(r#""machine.cycles":0"#.to_string());
    }
    events.push(format!(
        r#"{{"name":"counters","ph":"i","s":"g","pid":1,"tid":0,"ts":{:.3},"args":{{{}}}}}"#,
        (start + run_cycles) as f64 * us_per_cycle,
        args.join(",")
    ));
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Histogrammer;
    use crate::stats::UtilSample;
    use crate::time::Cycle;

    fn sample_stats() -> MachineStats {
        let mut s = MachineStats::new();
        s.set("machine.cycles", 2048);
        s.set("cache.hits", 100);
        let mut h = Histogrammer::with_bins(16);
        h.record(3);
        h.record(5);
        s.set_histogram("prefetch.latency", h);
        s
    }

    fn sample_timeline() -> UtilizationTimeline {
        let mut tl = UtilizationTimeline::new(2);
        tl.reset(Cycle(0), 2);
        let cum = [
            UtilSample {
                busy: 900,
                stall_mem: 124,
                ..Default::default()
            },
            UtilSample::default(),
        ];
        tl.record(&cum);
        tl.finish(Cycle(2048), &cum);
        tl
    }

    #[test]
    fn flat_text_lists_counters_and_histograms() {
        let text = flat_text(&sample_stats());
        assert!(text.contains("machine.cycles"));
        assert!(text.contains("cache.hits"));
        assert!(text.contains("prefetch.latency"));
        assert!(text.contains("p95="));
    }

    #[test]
    fn chrome_trace_is_minimally_valid_json() {
        let json = chrome_trace(&sample_timeline(), &sample_stats(), 170.0);
        // Structural sanity a JSON parser would need.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // One track per CE plus process metadata.
        assert!(json.contains(r#""name":"CE 0""#));
        assert!(json.contains(r#""name":"CE 1""#));
        // CE 0's bucket is dominated by busy; CE 1 ran nothing.
        assert!(json.contains(r#""name":"busy""#));
        // Counters ride along.
        assert!(json.contains(r#""cache.hits":100"#));
    }

    fn sample_journeys() -> Vec<Journey> {
        vec![
            Journey {
                id: (3 << 32) | 7,
                class: class::SCALAR,
                ce: 0,
                hops: vec![
                    ((u16::from(hop::ISSUE)) << 8, Cycle(10)),
                    (u16::from(hop::FWD_INJECT) << 8, Cycle(11)),
                    (u16::from(hop::SVC_START) << 8, Cycle(15)),
                    (u16::from(hop::RETIRE) << 8, Cycle(24)),
                ],
            },
            Journey {
                id: crate::trace::ID_BARRIER | (2 << 32),
                class: class::BARRIER,
                ce: 1,
                hops: vec![
                    (u16::from(hop::BAR_ARRIVE) << 8, Cycle(30)),
                    (u16::from(hop::BAR_RELEASE) << 8, Cycle(48)),
                ],
            },
        ]
    }

    #[test]
    fn chrome_trace_delegates_to_journey_variant() {
        let (tl, st) = (sample_timeline(), sample_stats());
        assert_eq!(
            chrome_trace(&tl, &st, 170.0),
            chrome_trace_with_journeys(&tl, &st, 170.0, &[])
        );
    }

    #[test]
    fn journey_spans_are_balanced_and_tagged() {
        let json = chrome_trace_with_journeys(
            &sample_timeline(),
            &sample_stats(),
            170.0,
            &sample_journeys(),
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Every span open has a matching close.
        assert_eq!(
            json.matches(r#""ph":"b""#).count(),
            json.matches(r#""ph":"e""#).count()
        );
        assert_eq!(json.matches(r#""ph":"b""#).count(), 2);
        // Spans land on the owning CE's track and carry the class name.
        assert!(json.contains(r#""name":"scalar","cat":"journey","ph":"b""#));
        assert!(json.contains(r#""name":"barrier","cat":"journey","ph":"b""#));
        // Intermediate hops show up as instants with the hop-kind name.
        assert!(json.contains(r#""name":"svc_start","cat":"journey","ph":"i""#));
        assert!(json.contains(r#""name":"bar_release","cat":"journey","ph":"i""#));
        // Timestamps are scaled: issue at cycle 10 × 170 ns = 1.7 us.
        assert!(json.contains(r#""ts":1.700"#));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}

//! The machine-wide instrumentation registry.
//!
//! Cedar's performance numbers all come from external monitoring hardware
//! probing subsystem signals (§2 "Performance monitoring"). This module is
//! the simulator's equivalent: a [`MachineStats`] registry of named
//! monotonic counters and histograms snapshotted from every subsystem —
//! cluster caches, both omega networks, the global-memory banks, the
//! concurrency control buses, the prefetch units and the CEs themselves —
//! plus a [`UtilizationTimeline`] of per-CE busy/stall/idle cycle
//! accounting, the data behind Fig. 3-style utilization plots.
//!
//! ## Counter namespace
//!
//! Dotted, with bracketed indices for per-instance counters:
//!
//! | prefix | counters |
//! |---|---|
//! | `machine.` | `cycles` |
//! | `cache.` / `cache[c].` | `accesses`, `hits`, `misses`, `evictions`, `writebacks`, `bank_stalls`, `mshr_stalls` |
//! | `net.fwd.` / `net.rev.` | `packets_injected`, `packets_delivered`, `words_moved`, `blocked_moves`, `conflicts`, `stage[s].conflicts`, `stage[s].blocked` |
//! | `gmem.` / `gmem.bank[i].` | `accesses`, `sync_ops`, `busy_cycles`, `conflict_stalls`, `reply_stalls` |
//! | `ccbus.` / `ccbus[c].` | `dispatches`, `counter_requests`, `barrier_arrivals`, `barrier_releases`, `barrier_wait_cycles`, `sdoall_posts` |
//! | `prefetch.` | `fires`, `requests`, `words_returned`, `stale_words`, `page_suspend_cycles`, `inject_stall_cycles` |
//! | `ce.` / `ce[i].` | `busy`, `idle`, `stall_mem`, `stall_sync`, `flops`, `vector_elements`, `tlb_misses`, `page_faults`, `vm_cycles` |
//! | `tracer.` | `events`, `dropped` |
//!
//! With fault injection enabled (a [`FaultPlan`] that can fire — these
//! keys are *absent* from fault-free registries, keeping them
//! byte-identical to older snapshots):
//!
//! | prefix | counters |
//! |---|---|
//! | `net.fwd.` / `net.rev.` | `drops`, `nacks`, `link_blocked` |
//! | `gmem.` | `nacks` |
//! | `fault.` | `retries`, `nacks`, `timeouts` |
//! | `prefetch.` | `retries` |
//!
//! With journey tracing enabled (a [`TracePlan`] with a nonzero sampling
//! rate — likewise *absent* from untraced registries):
//!
//! | prefix | counters |
//! |---|---|
//! | `trace.` | `events`, `dropped`, `journeys`, `episodes` |
//!
//! Histograms: `prefetch.latency` (first-word round-trip cycles),
//! `net.fwd.queue_depth` and `net.rev.queue_depth` (stage-queue words),
//! and — faults only — `fault.retry_latency` (issue-to-resolution cycles
//! of operations that needed at least one retry).
//!
//! [`FaultPlan`]: crate::fault::FaultPlan
//! [`TracePlan`]: crate::trace::TracePlan
//!
//! ## Snapshot/delta
//!
//! [`Machine::stats`](crate::machine::Machine::stats) returns a snapshot;
//! [`MachineStats::delta`] subtracts an earlier snapshot to bracket a
//! region. Cache, network, memory and bus counters are cumulative over
//! the machine's life; `ce.*` and `prefetch.*` reset at each
//! [`run`](crate::machine::Machine::run) (the engines are rebuilt), so
//! deltas across run boundaries saturate at zero for those.

pub mod export;

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::monitor::Histogrammer;
use crate::snapshot::{SnapReader, SnapResult, SnapWriter};
use crate::time::Cycle;

/// A registry of named monotonic counters and histograms.
///
/// Histograms are held behind [`Arc`] so a snapshot shares bins with its
/// source instead of cloning them (the prefetch-latency histogram alone is
/// 512 bins, snapshotted before and after every run); the machine mutates
/// its live histogram copy-on-write, so shared snapshots stay frozen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Arc<Histogrammer>>,
}

impl MachineStats {
    /// An empty registry.
    pub fn new() -> MachineStats {
        MachineStats::default()
    }

    /// Set counter `name` to `value` (registering it if new).
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Add `value` to counter `name` (registering it at zero if new).
    pub fn add(&mut self, name: &str, value: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += value;
        } else {
            self.counters.insert(name.to_string(), value);
        }
    }

    /// The value of counter `name`, or 0 when unregistered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Counters under a dotted `prefix` (e.g. `"cache"` matches
    /// `cache.hits` and `cache[0].hits` but not `cachex.y`).
    pub fn counters_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters().filter(move |(k, _)| {
            k.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('.') || rest.starts_with('['))
        })
    }

    /// Install (or replace) histogram `name`. Accepts an owned
    /// [`Histogrammer`] or an `Arc<Histogrammer>` (shared, no bin copy).
    pub fn set_histogram(&mut self, name: impl Into<String>, h: impl Into<Arc<Histogrammer>>) {
        self.histograms.insert(name.into(), h.into());
    }

    /// Histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogrammer> {
        self.histograms.get(name).map(|h| h.as_ref())
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogrammer)> {
        self.histograms
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_ref()))
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The change since an `earlier` snapshot: counter-wise and bin-wise
    /// subtraction, saturating at zero. Counters present only in `self`
    /// pass through; counters present only in `earlier` are dropped.
    pub fn delta(&self, earlier: &MachineStats) -> MachineStats {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(old) => Arc::new(h.delta_since(old)),
                    None => Arc::clone(h),
                };
                (k.clone(), d)
            })
            .collect();
        MachineStats {
            counters,
            histograms,
        }
    }

    /// BTreeMaps iterate in key order, so the snapshot bytes are already
    /// deterministic without an explicit sort.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.counters.iter(), |w, (k, &v)| {
            w.str(k);
            w.u64(v);
        });
        w.seq(self.histograms.iter(), |w, (k, h)| {
            w.str(k);
            h.save_state(w);
        });
    }

    pub(crate) fn decode(r: &mut SnapReader) -> SnapResult<MachineStats> {
        let counters = r.seq(|r| Ok((r.str()?, r.u64()?)))?.into_iter().collect();
        let histograms = r
            .seq(|r| Ok((r.str()?, Arc::new(Histogrammer::decode(r)?))))?
            .into_iter()
            .collect();
        Ok(MachineStats {
            counters,
            histograms,
        })
    }
}

/// One CE's cycle budget over an interval: every cycle is exactly one of
/// busy, memory stall, synchronization stall, or idle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilSample {
    pub busy: u64,
    pub stall_mem: u64,
    pub stall_sync: u64,
    pub idle: u64,
}

impl UtilSample {
    /// Total cycles covered by the sample.
    pub fn total(&self) -> u64 {
        self.busy + self.stall_mem + self.stall_sync + self.idle
    }

    /// Component-wise difference, saturating at zero.
    pub fn minus(&self, earlier: &UtilSample) -> UtilSample {
        UtilSample {
            busy: self.busy.saturating_sub(earlier.busy),
            stall_mem: self.stall_mem.saturating_sub(earlier.stall_mem),
            stall_sync: self.stall_sync.saturating_sub(earlier.stall_sync),
            idle: self.idle.saturating_sub(earlier.idle),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &UtilSample) -> UtilSample {
        UtilSample {
            busy: self.busy + other.busy,
            stall_mem: self.stall_mem + other.stall_mem,
            stall_sync: self.stall_sync + other.stall_sync,
            idle: self.idle + other.idle,
        }
    }

    /// The state the CE spent the plurality of the interval in, or `None`
    /// for an empty sample (a CE that ran no program).
    pub fn dominant(&self) -> Option<&'static str> {
        let states = [
            (self.busy, "busy"),
            (self.stall_mem, "stall_mem"),
            (self.stall_sync, "stall_sync"),
            (self.idle, "idle"),
        ];
        states
            .iter()
            .filter(|(n, _)| *n > 0)
            .max_by_key(|(n, _)| *n)
            .map(|&(_, name)| name)
    }
}

/// Initial timeline bucket width in cycles.
const DEFAULT_BUCKET_CYCLES: u64 = 1024;

/// Bucket count at which adjacent buckets merge and the width doubles,
/// bounding memory for arbitrarily long runs.
const MAX_BUCKETS: usize = 512;

/// Per-CE utilization over time, in fixed-width buckets that adaptively
/// coarsen: when a run outgrows [`MAX_BUCKETS`] buckets, adjacent pairs
/// merge and the bucket width doubles, so a run of any length is described
/// by a bounded, evenly spaced timeline.
#[derive(Debug, Clone)]
pub struct UtilizationTimeline {
    ces: usize,
    start: Cycle,
    end: Cycle,
    bucket_cycles: u64,
    next_boundary: Cycle,
    /// `buckets[b][ce]`: CE's cycle budget within bucket `b`.
    buckets: Vec<Vec<UtilSample>>,
    /// Cumulative per-CE samples at the last recorded boundary.
    last: Vec<UtilSample>,
}

impl UtilizationTimeline {
    /// An empty timeline for `ces` processors starting at cycle 0.
    pub fn new(ces: usize) -> UtilizationTimeline {
        UtilizationTimeline {
            ces,
            start: Cycle::ZERO,
            end: Cycle::ZERO,
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            next_boundary: Cycle(DEFAULT_BUCKET_CYCLES),
            buckets: Vec::new(),
            last: vec![UtilSample::default(); ces],
        }
    }

    /// Restart recording at `now` (a new run).
    pub fn reset(&mut self, now: Cycle, ces: usize) {
        self.ces = ces;
        self.start = now;
        self.end = now;
        self.bucket_cycles = DEFAULT_BUCKET_CYCLES;
        self.next_boundary = now + DEFAULT_BUCKET_CYCLES;
        self.buckets.clear();
        self.last = vec![UtilSample::default(); ces];
    }

    /// True when `now` has reached the next bucket boundary (the machine
    /// then collects cumulative samples and calls [`record`](Self::record)).
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_boundary
    }

    /// The next bucket boundary. The fast-forward path chunks its jumps at
    /// boundaries so skipped stretches land in the same buckets the
    /// per-cycle loop would fill.
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Close the current bucket given `cumulative` per-CE samples.
    pub fn record(&mut self, cumulative: &[UtilSample]) {
        debug_assert_eq!(cumulative.len(), self.ces);
        let bucket: Vec<UtilSample> = cumulative
            .iter()
            .zip(&self.last)
            .map(|(c, l)| c.minus(l))
            .collect();
        self.last.copy_from_slice(cumulative);
        self.buckets.push(bucket);
        self.next_boundary += self.bucket_cycles;
        if self.buckets.len() >= MAX_BUCKETS {
            self.coalesce();
        }
    }

    /// Flush the final (possibly partial) bucket at the end of a run.
    pub fn finish(&mut self, now: Cycle, cumulative: &[UtilSample]) {
        self.end = now;
        if cumulative.iter().zip(&self.last).any(|(c, l)| c != l) {
            let bucket: Vec<UtilSample> = cumulative
                .iter()
                .zip(&self.last)
                .map(|(c, l)| c.minus(l))
                .collect();
            self.last.copy_from_slice(cumulative);
            self.buckets.push(bucket);
        }
    }

    fn coalesce(&mut self) {
        let mut merged = Vec::with_capacity(self.buckets.len() / 2 + 1);
        for pair in self.buckets.chunks(2) {
            if pair.len() == 2 {
                merged.push(
                    pair[0]
                        .iter()
                        .zip(&pair[1])
                        .map(|(a, b)| a.plus(b))
                        .collect(),
                );
            } else {
                merged.push(pair[0].clone());
            }
        }
        self.buckets = merged;
        self.bucket_cycles *= 2;
        self.next_boundary = self.start + self.buckets.len() as u64 * self.bucket_cycles;
    }

    /// Number of processors covered.
    pub fn ces(&self) -> usize {
        self.ces
    }

    /// Cycle the timeline started recording at.
    pub fn start(&self) -> Cycle {
        self.start
    }

    /// Cycle recording finished at (set by [`finish`](Self::finish)).
    pub fn end(&self) -> Cycle {
        self.end
    }

    /// Width of each bucket in cycles (the final bucket may be shorter).
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// The recorded buckets: `buckets()[b][ce]`.
    pub fn buckets(&self) -> &[Vec<UtilSample>] {
        &self.buckets
    }

    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        fn put_sample(w: &mut SnapWriter, s: &UtilSample) {
            w.u64(s.busy);
            w.u64(s.stall_mem);
            w.u64(s.stall_sync);
            w.u64(s.idle);
        }
        w.usize(self.ces);
        w.cycle(self.start);
        w.cycle(self.end);
        w.u64(self.bucket_cycles);
        w.cycle(self.next_boundary);
        w.seq(self.buckets.iter(), |w, bucket| {
            w.seq(bucket.iter(), put_sample);
        });
        w.seq(self.last.iter(), put_sample);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        fn get_sample(r: &mut SnapReader) -> SnapResult<UtilSample> {
            Ok(UtilSample {
                busy: r.u64()?,
                stall_mem: r.u64()?,
                stall_sync: r.u64()?,
                idle: r.u64()?,
            })
        }
        self.ces = r.usize()?;
        self.start = r.cycle()?;
        self.end = r.cycle()?;
        self.bucket_cycles = r.u64()?;
        self.next_boundary = r.cycle()?;
        self.buckets = r.seq(|r| r.seq(get_sample))?;
        self.last = r.seq(get_sample)?;
        Ok(())
    }

    /// Whole-run utilization per CE: each CE's summed sample.
    pub fn per_ce_totals(&self) -> Vec<UtilSample> {
        let mut totals = vec![UtilSample::default(); self.ces];
        for bucket in &self.buckets {
            for (t, s) in totals.iter_mut().zip(bucket) {
                *t = t.plus(s);
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_read_and_delta() {
        let mut a = MachineStats::new();
        a.set("cache.hits", 10);
        a.set("cache.misses", 4);
        a.add("cache.hits", 5);
        assert_eq!(a.counter("cache.hits"), 15);
        assert_eq!(a.counter("unknown"), 0);

        let mut b = a.clone();
        b.set("cache.hits", 40);
        b.set("net.fwd.packets_injected", 7);
        let d = b.delta(&a);
        assert_eq!(d.counter("cache.hits"), 25);
        assert_eq!(d.counter("cache.misses"), 0);
        assert_eq!(d.counter("net.fwd.packets_injected"), 7);
    }

    #[test]
    fn prefix_filter_respects_separators() {
        let mut s = MachineStats::new();
        s.set("cache.hits", 1);
        s.set("cache[0].hits", 2);
        s.set("cachex.hits", 3);
        let keys: Vec<&str> = s.counters_under("cache").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["cache.hits", "cache[0].hits"]);
    }

    #[test]
    fn histogram_delta_is_binwise() {
        let mut early = Histogrammer::with_bins(8);
        early.record(1);
        let mut late = early.clone();
        late.record(1);
        late.record(3);

        let mut a = MachineStats::new();
        a.set_histogram("h", early);
        let mut b = MachineStats::new();
        b.set_histogram("h", late);
        let d = b.delta(&a);
        let h = d.histogram("h").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn util_sample_dominant_and_math() {
        let s = UtilSample {
            busy: 5,
            stall_mem: 3,
            stall_sync: 0,
            idle: 2,
        };
        assert_eq!(s.total(), 10);
        assert_eq!(s.dominant(), Some("busy"));
        assert_eq!(UtilSample::default().dominant(), None);
        let t = s.minus(&UtilSample {
            busy: 1,
            ..Default::default()
        });
        assert_eq!(t.busy, 4);
    }

    #[test]
    fn timeline_buckets_and_finish() {
        let mut tl = UtilizationTimeline::new(2);
        tl.reset(Cycle(0), 2);
        let c1 = [
            UtilSample {
                busy: 1000,
                stall_mem: 24,
                ..Default::default()
            },
            UtilSample {
                busy: 512,
                idle: 512,
                ..Default::default()
            },
        ];
        assert!(tl.due(Cycle(1024)));
        assert!(!tl.due(Cycle(1023)));
        tl.record(&c1);
        // Second interval: only CE 0 advances.
        let c2 = [
            UtilSample {
                busy: 1100,
                stall_mem: 224,
                ..Default::default()
            },
            c1[1],
        ];
        tl.finish(Cycle(1324), &c2);
        assert_eq!(tl.buckets().len(), 2);
        assert_eq!(tl.buckets()[0][0].busy, 1000);
        assert_eq!(tl.buckets()[1][0].busy, 100);
        assert_eq!(tl.buckets()[1][0].stall_mem, 200);
        assert_eq!(tl.buckets()[1][1], UtilSample::default());
        let totals = tl.per_ce_totals();
        assert_eq!(totals[0].busy, 1100);
        assert_eq!(totals[1].idle, 512);
    }

    #[test]
    fn timeline_coalesces_when_full() {
        let mut tl = UtilizationTimeline::new(1);
        tl.reset(Cycle(0), 1);
        let mut cum = UtilSample::default();
        for _ in 0..MAX_BUCKETS {
            cum.busy += 7;
            let snapshot = [cum];
            tl.record(&snapshot);
        }
        assert!(tl.buckets().len() <= MAX_BUCKETS / 2 + 1);
        assert_eq!(tl.bucket_cycles(), 2 * DEFAULT_BUCKET_CYCLES);
        let total: u64 = tl.per_ce_totals()[0].busy;
        assert_eq!(total, 7 * MAX_BUCKETS as u64);
    }
}

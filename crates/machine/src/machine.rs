//! The complete Cedar machine: clusters, networks, global memory.
//!
//! [`Machine`] owns four (configurable) Alliant clusters — each a shared
//! cache, cluster memory, concurrency control bus and TLB — two omega
//! networks, and the interleaved global memory with its synchronization
//! processors. Programs are loaded one per CE and the machine ticks all
//! components in a fixed, deterministic order until every program
//! completes.

use std::sync::Arc;

use crate::cache::{CacheStats, ClusterCache};
use crate::ccbus::{CcBus, CcBusStats};
use crate::ce::{min_event, CeContext, CeEngine, CeStats};
use crate::config::MachineConfig;
use crate::error::{HangReport, MachineError, Result};
use crate::fault::{FaultCtlStats, FaultSchedule, RETRY_LATENCY_BINS, SALT_FORWARD, SALT_REVERSE};
use crate::ids::{CeId, ClusterId, CounterId};
use crate::memory::cluster_mem::ClusterMemory;
use crate::memory::global::GlobalMemory;
use crate::memory::module::ModuleStats;
use crate::monitor::{EventTracer, Histogrammer};
use crate::network::packet::{Packet, Payload};
use crate::network::{NetSink, NetStats, Omega};
use crate::prefetch::PrefetchStats;
use crate::program::{BarrierId, Op, Program};
use crate::sched::{BarrierDef, BarrierScope, CounterDef, EPOCH_SPACING};
use crate::stats::{MachineStats, UtilSample, UtilizationTimeline};
use crate::time::{mflops, Cycle};
use crate::trace::{
    self, profiled, region, BarrierEpisode, HostProfiler, Journey, LatencyBreakdown, TraceEvent,
    TraceStore,
};
use crate::vm::{PageTable, Tlb, TlbStats};

/// Base of the address region the machine hands out for synchronization
/// words (counters, barriers). Kept far above any data address a workload
/// uses; the interleaving still spreads it across modules.
const SYNC_REGION_BASE: u64 = 1 << 40;

/// Cycles between forward-progress watchdog inspections. Large enough
/// that a legitimate synchronization wait (barrier poll periods are tens
/// of cycles) can never span one interval, small enough that a deadlocked
/// run aborts long before a typical cycle budget.
const STUCK_CHECK_INTERVAL: u64 = 4096;

/// Consecutive inspections with every unfinished CE in a synchronization
/// wait before the watchdog declares a deadlock.
pub(crate) const STUCK_SYNC_CHECKS: u32 = 6;

/// Forward-progress watchdog state: when to look next, and how many
/// consecutive looks found every live CE stuck in a synchronization wait.
#[derive(Debug)]
pub(crate) struct Watchdog {
    next_check: Cycle,
    pub(crate) sync_stuck: u32,
}

impl Watchdog {
    pub(crate) fn new(start: Cycle) -> Watchdog {
        Watchdog {
            next_check: start + STUCK_CHECK_INTERVAL,
            sync_stuck: 0,
        }
    }

    /// Rebuild a watchdog from snapshot state, so a resumed run inspects
    /// on exactly the cycles the uninterrupted run would.
    pub(crate) fn from_state(next_check: Cycle, sync_stuck: u32) -> Watchdog {
        Watchdog {
            next_check,
            sync_stuck,
        }
    }

    /// True when an inspection is due at `now`.
    pub(crate) fn due(&self, now: Cycle) -> bool {
        now >= self.next_check
    }

    /// The cycle of the next scheduled inspection. The partitioned engine
    /// clamps its chunks here so inspections land on exactly the cycles
    /// the per-cycle loop would inspect.
    pub(crate) fn next_check(&self) -> Cycle {
        self.next_check
    }

    pub(crate) fn arm_next(&mut self, now: Cycle) {
        self.next_check = now + STUCK_CHECK_INTERVAL;
    }
}

/// Outcome of one watchdog inspection.
#[derive(Debug)]
pub(crate) enum ProgressVerdict {
    /// The machine can still make progress.
    Live,
    /// A retry controller exhausted its budget.
    Faulted { ce: CeId, reason: String },
    /// The machine can never finish; the string names the trigger.
    Deadlock(&'static str),
}

/// Where a loop-scheduling counter should live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterScope {
    /// On one cluster's concurrency control bus (CDOALL-style).
    Cluster(ClusterId),
    /// In global memory (XDOALL-style).
    Global,
    /// In global memory at cluster granularity (self-scheduled
    /// SDOALL-style): values are fetched once per cluster and broadcast
    /// over the concurrency bus.
    SdoallGlobal,
}

/// One cluster: shared cache (owning the cluster memory), concurrency
/// control bus, and TLB.
#[derive(Debug)]
pub struct Cluster {
    pub(crate) cache: ClusterCache,
    pub(crate) ccbus: CcBus,
    pub(crate) tlb: Tlb,
}

/// Results of one [`Machine::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Cycles from run start to the last CE finishing (networks drained).
    pub cycles: u64,
    /// Wall-clock seconds at the configured cycle time.
    pub seconds: f64,
    /// Total floating-point operations performed by all CEs.
    pub flops: u64,
    /// Sustained MFLOPS over the run.
    pub mflops: f64,
    /// Per-CE execution statistics for the CEs that ran programs.
    pub ce_stats: Vec<(CeId, CeStats)>,
    /// Aggregate prefetch statistics over all CEs in this run.
    pub prefetch: PrefetchStats,
    /// Per-CE prefetch statistics.
    pub prefetch_per_ce: Vec<(CeId, PrefetchStats)>,
    /// Forward network statistics (cumulative over the machine's life).
    pub net_forward: NetStats,
    /// Reverse network statistics (cumulative).
    pub net_reverse: NetStats,
    /// Per-cluster cache statistics (cumulative).
    pub cache: Vec<CacheStats>,
    /// Aggregate global-memory statistics (cumulative).
    pub memory: ModuleStats,
    /// Per-cluster TLB statistics (cumulative; all zero unless VM enabled).
    pub tlb: Vec<TlbStats>,
    /// Per-cluster concurrency-bus statistics (cumulative).
    pub ccbus: Vec<CcBusStats>,
    /// Full instrumentation-registry delta over this run: every counter
    /// and histogram of [`Machine::stats`], bracketed between run start
    /// and run end.
    pub stats: MachineStats,
    /// Provenance: the snapshot file this run was resumed from, stamped
    /// by [`Machine::resume_from_file`]. `None` for uninterrupted runs
    /// (and for [`Machine::resume`] from an in-memory image, which has
    /// no file to name). Everything else in the report is bit-identical
    /// either way — this field exists so rendered reports can say a run
    /// was recovered.
    pub resumed_from: Option<std::path::PathBuf>,
}

/// The simulated Cedar machine.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    /// The CE configuration, shared by every engine (one allocation
    /// instead of a per-CE clone).
    ce_cfg: Arc<crate::config::CeConfig>,
    pub(crate) now: Cycle,
    pub(crate) forward: Omega,
    pub(crate) reverse: Omega,
    pub(crate) gmem: GlobalMemory,
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) counters: Vec<CounterDef>,
    pub(crate) barriers: Vec<BarrierDef>,
    pub(crate) next_sync_slot: u64,
    pub(crate) next_bus_barrier_slot: usize,
    pub(crate) engines: Vec<Option<CeEngine>>,
    pub(crate) page_table: PageTable,
    pub(crate) tracer: EventTracer,
    /// Behind `Arc` so [`Machine::stats`] can snapshot it by reference;
    /// the delivery path mutates it copy-on-write.
    pub(crate) latency_histogram: Arc<Histogrammer>,
    pub(crate) timeline: UtilizationTimeline,
    /// Preformatted per-index counter names, so [`Machine::stats`] clones
    /// strings instead of running `format!` for every key.
    stat_keys: StatKeys,
    /// Reusable per-CE sample buffer for the timeline (the hot loop
    /// records a sample every bucket boundary; no per-record allocation).
    pub(crate) util_scratch: Vec<UtilSample>,
    /// Cycles the fast-forward path jumped over instead of ticking.
    pub(crate) fastfwd_skipped: u64,
    /// Scheduled link/module outage transitions; `None` on the fault-free
    /// machine (a disabled [`crate::fault::FaultPlan`] allocates nothing).
    pub(crate) fault_sched: Option<FaultSchedule>,
    /// Journey spans drained from every subsystem at the end of each run
    /// (empty when tracing is disabled — no subsystem ever stamps).
    pub(crate) trace_store: TraceStore,
    /// Host-side wall-clock self-profiler for the simulator's own tick
    /// phases; `None` (zero overhead beyond one branch) unless enabled.
    pub(crate) profiler: Option<Box<HostProfiler>>,
    /// Whether CEs execute lowered micro-op streams this machine
    /// ([`MachineConfig::lowered`] gated by the `CEDAR_NO_LOWER` hatch
    /// and forced off under the VM model). Resolved once at
    /// construction, like the network flow path.
    pub(crate) lowered: bool,
    /// Static shape of the programs loaded by the most recent
    /// [`Machine::run`], summed over CEs (`None` before the first run).
    /// Computed by the lowering pass in both modes, so the `program.*`
    /// registry keys are identical with lowering on or off.
    pub(crate) program_meta: Option<crate::lower::LowerMeta>,
}

/// Preformatted counter-key strings for every indexed stat family.
/// Deliberately *not* part of any snapshot — pure formatting cache.
#[derive(Debug)]
struct StatKeys {
    /// Per cluster: accesses, hits, misses, evictions, writebacks,
    /// bank_stalls, mshr_stalls.
    cache: Vec<[String; 7]>,
    /// Per cluster: fills, writebacks, words.
    cmem: Vec<[String; 3]>,
    /// Forward and reverse network key sets.
    net: [NetKeys; 2],
    /// Per bank: accesses, sync_ops, conflict_stalls.
    gmem_bank: Vec<[String; 3]>,
    /// Per cluster: dispatches, counter_requests, barrier_arrivals,
    /// barrier_releases, barrier_wait_cycles, sdoall_posts.
    ccbus: Vec<[String; 6]>,
    /// Per CE: busy, idle, stall_mem, stall_sync, flops, vector_elements,
    /// tlb_misses, page_faults, vm_cycles.
    ce: Vec<[String; 9]>,
}

#[derive(Debug)]
struct NetKeys {
    packets_injected: String,
    packets_delivered: String,
    words_moved: String,
    blocked_moves: String,
    conflicts: String,
    stage_conflicts: Vec<String>,
    stage_blocked: Vec<String>,
    queue_depth: String,
    /// Fault-injection counters; only emitted when faults are enabled, so
    /// the fault-free registry stays byte-identical to older snapshots.
    drops: String,
    nacks: String,
    link_blocked: String,
}

impl NetKeys {
    fn new(prefix: &str, stages: usize) -> NetKeys {
        NetKeys {
            packets_injected: format!("{prefix}.packets_injected"),
            packets_delivered: format!("{prefix}.packets_delivered"),
            words_moved: format!("{prefix}.words_moved"),
            blocked_moves: format!("{prefix}.blocked_moves"),
            conflicts: format!("{prefix}.conflicts"),
            stage_conflicts: (0..stages)
                .map(|s| format!("{prefix}.stage[{s}].conflicts"))
                .collect(),
            stage_blocked: (0..stages)
                .map(|s| format!("{prefix}.stage[{s}].blocked"))
                .collect(),
            queue_depth: format!("{prefix}.queue_depth"),
            drops: format!("{prefix}.drops"),
            nacks: format!("{prefix}.nacks"),
            link_blocked: format!("{prefix}.link_blocked"),
        }
    }
}

impl StatKeys {
    fn new(cfg: &MachineConfig, stages: usize) -> StatKeys {
        StatKeys {
            cache: (0..cfg.clusters)
                .map(|c| {
                    [
                        format!("cache[{c}].accesses"),
                        format!("cache[{c}].hits"),
                        format!("cache[{c}].misses"),
                        format!("cache[{c}].evictions"),
                        format!("cache[{c}].writebacks"),
                        format!("cache[{c}].bank_stalls"),
                        format!("cache[{c}].mshr_stalls"),
                    ]
                })
                .collect(),
            cmem: (0..cfg.clusters)
                .map(|c| {
                    [
                        format!("cmem[{c}].fills"),
                        format!("cmem[{c}].writebacks"),
                        format!("cmem[{c}].words"),
                    ]
                })
                .collect(),
            net: [
                NetKeys::new("net.fwd", stages),
                NetKeys::new("net.rev", stages),
            ],
            gmem_bank: (0..cfg.global_memory.modules)
                .map(|b| {
                    [
                        format!("gmem.bank[{b}].accesses"),
                        format!("gmem.bank[{b}].sync_ops"),
                        format!("gmem.bank[{b}].conflict_stalls"),
                    ]
                })
                .collect(),
            ccbus: (0..cfg.clusters)
                .map(|c| {
                    [
                        format!("ccbus[{c}].dispatches"),
                        format!("ccbus[{c}].counter_requests"),
                        format!("ccbus[{c}].barrier_arrivals"),
                        format!("ccbus[{c}].barrier_releases"),
                        format!("ccbus[{c}].barrier_wait_cycles"),
                        format!("ccbus[{c}].sdoall_posts"),
                    ]
                })
                .collect(),
            ce: (0..cfg.total_ces())
                .map(|i| {
                    [
                        format!("ce[{i}].busy"),
                        format!("ce[{i}].idle"),
                        format!("ce[{i}].stall_mem"),
                        format!("ce[{i}].stall_sync"),
                        format!("ce[{i}].flops"),
                        format!("ce[{i}].vector_elements"),
                        format!("ce[{i}].tlb_misses"),
                        format!("ce[{i}].page_faults"),
                        format!("ce[{i}].vm_cycles"),
                    ]
                })
                .collect(),
        }
    }
}

impl Machine {
    /// Build a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(cfg: MachineConfig) -> Result<Machine> {
        cfg.validate().map_err(MachineError::InvalidConfig)?;
        let ports = cfg.network_ports();
        let clusters = (0..cfg.clusters)
            .map(|_| Cluster {
                cache: ClusterCache::new(
                    &cfg.cache,
                    cfg.ces_per_cluster,
                    ClusterMemory::new(&cfg.cluster_memory),
                ),
                ccbus: CcBus::new(&cfg.ccbus, cfg.ces_per_cluster),
                tlb: Tlb::new(cfg.vm.tlb_entries),
            })
            .collect();
        let mut forward = Omega::new(ports, &cfg.network);
        let mut reverse = Omega::new(ports, &cfg.network);
        // The flow path is a pure wall-clock optimization (bit-for-bit
        // identical to the oracle sweep); the env hatch mirrors
        // CEDAR_NO_FASTFWD so an equivalence matrix can force either side.
        let flow_path = cfg.flow_path && !crate::config::flowpath_disabled_from_env();
        forward.set_flow_path(flow_path);
        reverse.set_flow_path(flow_path);
        let fault_sched = cfg.faults.as_ref().filter(|p| p.enabled()).map(|plan| {
            let drop = u64::from(plan.drop_per_million);
            forward.enable_faults(plan.seed, SALT_FORWARD, drop, plan.nack_per_million.into());
            // Replies cannot be NACKed, only lost.
            reverse.enable_faults(plan.seed, SALT_REVERSE, drop, 0);
            FaultSchedule::new(plan)
        });
        if cfg.trace.as_ref().is_some_and(|p| p.enabled()) {
            forward.enable_trace(true);
            reverse.enable_trace(false);
        }
        let stat_keys = StatKeys::new(&cfg, forward.stage_conflicts().len());
        Ok(Machine {
            forward,
            reverse,
            gmem: GlobalMemory::new(&cfg.global_memory),
            clusters,
            counters: Vec::new(),
            barriers: Vec::new(),
            next_sync_slot: 0,
            next_bus_barrier_slot: 0,
            engines: Vec::new(),
            page_table: PageTable::new(),
            tracer: EventTracer::new(),
            latency_histogram: Arc::new(Histogrammer::with_bins(512)),
            timeline: UtilizationTimeline::new(cfg.total_ces()),
            stat_keys,
            util_scratch: Vec::with_capacity(cfg.total_ces()),
            fastfwd_skipped: 0,
            fault_sched,
            trace_store: TraceStore::default(),
            profiler: None,
            now: Cycle::ZERO,
            ce_cfg: Arc::new(cfg.ce.clone()),
            // Lowered execution is a pure wall-clock optimization
            // (bit-for-bit identical to the interpreter); the env hatch
            // mirrors CEDAR_NO_FLOWPATH. The VM model forces the
            // interpreter: page faults interleave with dispatch in ways
            // the fused timed runs deliberately do not model.
            lowered: cfg.lowered && !crate::config::lowered_disabled_from_env() && !cfg.vm.enabled,
            program_meta: None,
            cfg,
        })
    }

    /// A full 32-CE Cedar.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the canonical configuration is valid).
    pub fn cedar() -> Result<Machine> {
        Machine::new(MachineConfig::cedar())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The machine-wide page table (virtual-memory studies).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The external event tracer (records software-posted events).
    pub fn tracer(&self) -> &EventTracer {
        &self.tracer
    }

    /// The prefetch first-word round-trip latency histogram collected by
    /// the monitoring hardware on the reverse network (cycles, capped at
    /// the last bin). Also exposed through [`Machine::stats`] as the
    /// `prefetch.latency` histogram.
    pub fn latency_histogram(&self) -> &Histogrammer {
        &self.latency_histogram
    }

    /// Per-CE utilization timeline of the current (or most recent) run.
    pub fn timeline(&self) -> &UtilizationTimeline {
        &self.timeline
    }

    /// Cycles the event-horizon fast-forward jumped over (instead of
    /// ticking one by one) during the most recent [`run`](Machine::run).
    ///
    /// Deliberately *not* part of [`Machine::stats`]: the registry
    /// snapshot must stay bit-for-bit identical whether fast-forward is
    /// on or off, so the one counter that distinguishes the two lives
    /// here instead.
    pub fn fastforward_skipped_cycles(&self) -> u64 {
        self.fastfwd_skipped
    }

    /// Whether the flow-level network fast path is active in this machine
    /// ([`MachineConfig::flow_path`] gated by the `CEDAR_NO_FLOWPATH`
    /// escape hatch). Like the skip counter above, deliberately not part
    /// of the stats registry: the snapshot must be identical either way.
    pub fn flow_path_enabled(&self) -> bool {
        self.forward.flow_path()
    }

    /// Whether CEs execute compiled micro-op streams in this machine
    /// ([`MachineConfig::lowered`] gated by the `CEDAR_NO_LOWER` escape
    /// hatch, and forced off when VM modelling is enabled). Like the
    /// flow-path flag above, deliberately not part of the stats
    /// registry: the snapshot must be identical either way.
    pub fn lowered_enabled(&self) -> bool {
        self.lowered
    }

    /// Static shape of the programs loaded by the most recent
    /// [`run`](Machine::run) (op/micro-op/fusion counts summed over CEs,
    /// max loop depth), computed by the lowering pass whether or not the
    /// lowered path executes. `None` before the first run. Also exported
    /// through the `program.*` stats keys.
    pub fn program_meta(&self) -> Option<crate::lower::LowerMeta> {
        self.program_meta
    }

    /// Fully-stalled network ticks the flow path settled by replaying its
    /// cached stall charge instead of re-walking every queue, summed over
    /// both directions. Zero when the flow path is off; the equivalence
    /// tests use it to prove the fast path actually ran.
    pub fn flow_stall_replays(&self) -> u64 {
        self.forward.stall_replays() + self.reverse.stall_replays()
    }

    /// Raw journey trace events drained at the end of the most recent
    /// [`run`](Machine::run). Empty unless the machine was built with a
    /// [`crate::trace::TracePlan`].
    pub fn trace_events(&self) -> &[TraceEvent] {
        &self.trace_store.events
    }

    /// Trace stamps lost to per-subsystem buffer caps during the most
    /// recent run.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_store.dropped
    }

    /// Assemble the most recent run's trace events into journeys (one per
    /// sampled access, one per CE-participation in a barrier episode).
    pub fn trace_journeys(&self) -> Vec<Journey> {
        trace::assemble(&self.trace_store.events)
    }

    /// Per-hop, per-class latency decomposition over the most recent
    /// run's journeys.
    pub fn latency_breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown::from_journeys(&self.trace_journeys())
    }

    /// Sampled barrier episodes of the most recent run, with critical-path
    /// (last-arriver) attribution.
    pub fn barrier_episodes(&self) -> Vec<BarrierEpisode> {
        trace::episodes(&self.trace_journeys())
    }

    /// Turn on host-side self-profiling: wall-clock per simulator tick
    /// phase, read back with [`Machine::host_profile`] /
    /// [`Machine::host_profile_jsonl`]. Measures the host, never the
    /// simulated machine — results are unaffected.
    pub fn enable_host_profiling(&mut self) {
        self.profiler = Some(Box::new(HostProfiler::new()));
    }

    /// Host-profile rows `(phase, calls, total_ns)`, when profiling is on.
    pub fn host_profile(&self) -> Option<&HostProfiler> {
        self.profiler.as_deref()
    }

    /// The host profile as a JSONL metrics stream (empty when off).
    pub fn host_profile_jsonl(&self) -> String {
        self.profiler
            .as_deref()
            .map(HostProfiler::jsonl)
            .unwrap_or_default()
    }

    /// Snapshot the full instrumentation registry: named counters and
    /// histograms from every subsystem (see [`crate::stats`] for the
    /// namespace). Cache, network, memory and bus counters are cumulative
    /// over the machine's life; `ce.*` and `prefetch.*` counters reset at
    /// each [`run`](Machine::run). Bracket a region with
    /// [`MachineStats::delta`].
    pub fn stats(&self) -> MachineStats {
        let faults_on = self.cfg.faults.as_ref().is_some_and(|p| p.enabled());
        let mut s = MachineStats::new();
        s.set("machine.cycles", self.now.0);

        // Cluster caches and their memories.
        let mut agg = CacheStats::default();
        for (c, cl) in self.clusters.iter().enumerate() {
            let cs = cl.cache.stats();
            let accesses = cs.hits + cs.misses;
            let [k_acc, k_hit, k_miss, k_evict, k_wb, k_bank, k_mshr] = &self.stat_keys.cache[c];
            s.set(k_acc.clone(), accesses);
            s.set(k_hit.clone(), cs.hits);
            s.set(k_miss.clone(), cs.misses);
            s.set(k_evict.clone(), cs.evictions);
            s.set(k_wb.clone(), cs.writebacks);
            s.set(k_bank.clone(), cs.bank_stalls);
            s.set(k_mshr.clone(), cs.mshr_stalls);
            let ms = cl.cache.mem_stats();
            let [k_fills, k_mwb, k_words] = &self.stat_keys.cmem[c];
            s.set(k_fills.clone(), ms.fills);
            s.set(k_mwb.clone(), ms.writebacks);
            s.set(k_words.clone(), ms.words);
            agg.hits += cs.hits;
            agg.misses += cs.misses;
            agg.evictions += cs.evictions;
            agg.writebacks += cs.writebacks;
            agg.bank_stalls += cs.bank_stalls;
            agg.mshr_stalls += cs.mshr_stalls;
        }
        s.set("cache.accesses", agg.hits + agg.misses);
        s.set("cache.hits", agg.hits);
        s.set("cache.misses", agg.misses);
        s.set("cache.evictions", agg.evictions);
        s.set("cache.writebacks", agg.writebacks);
        s.set("cache.bank_stalls", agg.bank_stalls);
        s.set("cache.mshr_stalls", agg.mshr_stalls);

        // Both omega networks.
        for (keys, net) in self
            .stat_keys
            .net
            .iter()
            .zip([&self.forward, &self.reverse])
        {
            let ns = net.stats();
            s.set(keys.packets_injected.clone(), ns.packets_injected);
            s.set(keys.packets_delivered.clone(), ns.packets_delivered);
            s.set(keys.words_moved.clone(), ns.words_moved);
            s.set(keys.blocked_moves.clone(), ns.blocked_moves);
            s.set(keys.conflicts.clone(), ns.arbitration_losses);
            for (stage, &n) in net.stage_conflicts().iter().enumerate() {
                s.set(keys.stage_conflicts[stage].clone(), n);
            }
            for (stage, &n) in net.stage_blocked().iter().enumerate() {
                s.set(keys.stage_blocked[stage].clone(), n);
            }
            s.set_histogram(
                keys.queue_depth.clone(),
                net.queue_depth_histogram().clone(),
            );
            if faults_on {
                s.set(keys.drops.clone(), ns.drops);
                s.set(keys.nacks.clone(), ns.nacks);
                s.set(keys.link_blocked.clone(), ns.link_blocked);
            }
        }

        // Global-memory banks and their Test-And-Operate sync processors.
        let gs = self.gmem.total_stats();
        s.set("gmem.accesses", gs.requests);
        s.set("gmem.sync_ops", gs.sync_requests);
        s.set("gmem.busy_cycles", gs.busy_cycles);
        s.set("gmem.conflict_stalls", gs.conflict_stall_cycles);
        s.set("gmem.reply_stalls", gs.reply_stall_cycles);
        if faults_on {
            s.set("gmem.nacks", gs.nacks);
        }
        for (bank, ms) in self.gmem.per_module_stats().enumerate() {
            let [k_acc, k_sync, k_conf] = &self.stat_keys.gmem_bank[bank];
            s.set(k_acc.clone(), ms.requests);
            s.set(k_sync.clone(), ms.sync_requests);
            s.set(k_conf.clone(), ms.conflict_stall_cycles);
        }

        // Concurrency control buses.
        let mut bus_agg = CcBusStats::default();
        for (c, cl) in self.clusters.iter().enumerate() {
            let bs = cl.ccbus.stats();
            let [k_disp, k_creq, k_arr, k_rel, k_wait, k_sdo] = &self.stat_keys.ccbus[c];
            s.set(k_disp.clone(), bs.dispatches);
            s.set(k_creq.clone(), bs.counter_requests);
            s.set(k_arr.clone(), bs.barrier_arrivals);
            s.set(k_rel.clone(), bs.barrier_releases);
            s.set(k_wait.clone(), bs.barrier_wait_cycles);
            s.set(k_sdo.clone(), bs.sdoall_posts);
            bus_agg.dispatches += bs.dispatches;
            bus_agg.counter_requests += bs.counter_requests;
            bus_agg.barrier_arrivals += bs.barrier_arrivals;
            bus_agg.barrier_releases += bs.barrier_releases;
            bus_agg.barrier_wait_cycles += bs.barrier_wait_cycles;
            bus_agg.sdoall_posts += bs.sdoall_posts;
        }
        s.set("ccbus.dispatches", bus_agg.dispatches);
        s.set("ccbus.counter_requests", bus_agg.counter_requests);
        s.set("ccbus.barrier_arrivals", bus_agg.barrier_arrivals);
        s.set("ccbus.barrier_releases", bus_agg.barrier_releases);
        s.set("ccbus.barrier_wait_cycles", bus_agg.barrier_wait_cycles);
        s.set("ccbus.sdoall_posts", bus_agg.sdoall_posts);

        // TLBs and paging.
        let mut tlb = TlbStats::default();
        for cl in &self.clusters {
            let ts = cl.tlb.stats();
            tlb.hits += ts.hits;
            tlb.misses += ts.misses;
        }
        s.set("tlb.hits", tlb.hits);
        s.set("tlb.misses", tlb.misses);
        s.set("vm.hard_faults", self.page_table.hard_faults());
        s.set("vm.soft_faults", self.page_table.soft_faults());

        // Prefetch units and CEs (reset per run with the engines).
        let mut pf = PrefetchStats::default();
        let mut ce_busy = 0u64;
        let mut ce_idle = 0u64;
        let mut ce_stall_mem = 0u64;
        let mut ce_stall_sync = 0u64;
        for e in self.engines.iter().flatten() {
            pf.merge(&e.prefetch_stats_raw());
            let cs = e.stats();
            let [k_busy, k_idle, k_smem, k_ssync, k_flops, k_vec, k_tlb, k_pf, k_vm] =
                &self.stat_keys.ce[e.id().0];
            s.set(k_busy.clone(), cs.busy);
            s.set(k_idle.clone(), cs.idle);
            s.set(k_smem.clone(), cs.stall_mem);
            s.set(k_ssync.clone(), cs.stall_sync);
            s.set(k_flops.clone(), cs.flops);
            s.set(k_vec.clone(), cs.vector_elements);
            s.set(k_tlb.clone(), cs.tlb_misses);
            s.set(k_pf.clone(), cs.page_faults);
            s.set(k_vm.clone(), cs.vm_cycles);
            ce_busy += cs.busy;
            ce_idle += cs.idle;
            ce_stall_mem += cs.stall_mem;
            ce_stall_sync += cs.stall_sync;
        }
        s.set("ce.busy", ce_busy);
        s.set("ce.idle", ce_idle);
        s.set("ce.stall_mem", ce_stall_mem);
        s.set("ce.stall_sync", ce_stall_sync);
        s.set("prefetch.fires", pf.fires);
        s.set("prefetch.requests", pf.requests);
        s.set("prefetch.words_returned", pf.words_returned);
        s.set("prefetch.stale_words", pf.stale_words);
        s.set("prefetch.page_suspend_cycles", pf.page_suspend_cycles);
        s.set("prefetch.inject_stall_cycles", pf.inject_stall_cycles);
        s.set_histogram("prefetch.latency", Arc::clone(&self.latency_histogram));

        // Static program shape, computed by the lowering pass whether or
        // not the lowered path executes (identical registries both ways).
        // Absent before the first run so pre-load snapshots stay
        // byte-identical to earlier releases.
        if let Some(pm) = self.program_meta {
            s.set("program.ops", pm.source_ops as u64);
            s.set("program.uops", pm.uops as u64);
            s.set("program.fused_ops", pm.fused_ops as u64);
            s.set("program.max_loop_depth", pm.max_loop_depth as u64);
        }

        // Fault-recovery counters: absent on the fault-free machine so its
        // registry snapshot is byte-identical to pre-fault-injection runs.
        if faults_on {
            let mut fc = FaultCtlStats::default();
            let mut retry_latency = Histogrammer::with_bins(RETRY_LATENCY_BINS);
            for e in self.engines.iter().flatten() {
                fc.merge(&e.fault_stats());
                if let Some(h) = e.fault_retry_latency() {
                    retry_latency.merge(h);
                }
            }
            s.set("fault.retries", fc.retries);
            s.set("fault.nacks", fc.nacks);
            s.set("fault.timeouts", fc.timeouts);
            s.set("prefetch.retries", pf.retries);
            s.set_histogram("fault.retry_latency", retry_latency);
        }

        // The monitoring hardware itself.
        s.set("tracer.events", self.tracer.events().len() as u64);
        s.set("tracer.dropped", self.tracer.dropped());

        // Journey tracing: absent when disabled, so the registry snapshot
        // stays byte-identical to untraced runs.
        if self.cfg.trace.as_ref().is_some_and(|p| p.enabled()) {
            let journeys = trace::assemble(&self.trace_store.events);
            s.set("trace.events", self.trace_store.events.len() as u64);
            s.set("trace.dropped", self.trace_store.dropped);
            s.set("trace.journeys", journeys.len() as u64);
            s.set("trace.episodes", trace::episodes(&journeys).len() as u64);
        }
        s
    }

    /// Allocate a self-scheduling counter.
    pub fn alloc_counter(&mut self, scope: CounterScope) -> CounterId {
        let def = match scope {
            CounterScope::Cluster(cluster) => {
                let slot = self.clusters[cluster.0].ccbus.alloc_counter();
                CounterDef::Cluster { cluster, slot }
            }
            CounterScope::Global => {
                let base = self.alloc_sync_base();
                CounterDef::Global { base_addr: base }
            }
            CounterScope::SdoallGlobal => {
                let base = self.alloc_sync_base();
                CounterDef::GlobalShared { base_addr: base }
            }
        };
        self.counters.push(def);
        CounterId(self.counters.len() - 1)
    }

    /// Allocate a barrier for `expected` participants.
    pub fn alloc_barrier(&mut self, scope: BarrierScope, expected: u32) -> BarrierId {
        let base_addr = match scope {
            BarrierScope::Cluster(_) => {
                let slot = self.next_bus_barrier_slot;
                self.next_bus_barrier_slot += 1;
                slot as u64
            }
            BarrierScope::Global => self.alloc_sync_base(),
        };
        self.barriers.push(BarrierDef {
            scope,
            expected,
            base_addr,
        });
        BarrierId(self.barriers.len() - 1)
    }

    fn alloc_sync_base(&mut self) -> u64 {
        let slot = self.next_sync_slot;
        self.next_sync_slot += 1;
        // The +1 keeps successive slots (and successive epochs) on
        // different memory modules.
        SYNC_REGION_BASE + slot * (EPOCH_SPACING + 1)
    }

    /// Run `programs` (one per CE) to completion.
    ///
    /// # Errors
    ///
    /// * [`MachineError::NoSuchCe`] if a program targets a CE outside the
    ///   configured machine.
    /// * [`MachineError::BadProgram`] if a program references an
    ///   unallocated counter or barrier.
    /// * [`MachineError::CycleLimitExceeded`] if the run does not finish
    ///   within `limit` cycles (almost always a deadlocked barrier).
    pub fn run(&mut self, programs: Vec<(CeId, Program)>, limit: u64) -> Result<RunReport> {
        let stats_start = self.prepare_run(programs)?;
        let start = self.now;
        let watchdog = Watchdog::new(start);
        self.run_prepared(start, limit, stats_start, watchdog)
    }

    /// Everything [`Machine::run`] does before entering the run loop:
    /// reset per-run state, validate and lower the programs, build the
    /// engines, and take the registry baseline. Shared with
    /// [`Machine::resume`], which builds the identical engines and then
    /// overwrites the state from the snapshot.
    pub(crate) fn prepare_run(&mut self, programs: Vec<(CeId, Program)>) -> Result<MachineStats> {
        let total = self.cfg.total_ces();
        // Fresh engines restart their counter/barrier epochs at zero, so
        // stale synchronization words from a previous run must go.
        self.gmem.clear_sync();
        self.page_table.reset();
        for cl in &mut self.clusters {
            cl.ccbus.reset();
            cl.tlb.flush();
        }
        self.engines = (0..total).map(|_| None).collect();
        // Cleared before the baseline snapshot below and re-set after it,
        // so each run's `program.*` keys pass through the delta intact
        // instead of cancelling against the previous run's values.
        self.program_meta = None;
        // Compile each distinct program once (CEs loaded with the same
        // shared block reuse the compilation). Lowering runs in both
        // modes — the interpreter still wants the static metadata — but
        // only a lowered machine hands the engines the compiled stream.
        let mut lower_cache: Vec<(usize, Arc<crate::lower::LProgram>)> = Vec::new();
        let mut meta = crate::lower::LowerMeta::default();
        for (ce, program) in programs {
            if ce.0 >= total {
                return Err(MachineError::NoSuchCe(ce));
            }
            self.validate_program(ce, &program)?;
            let key = Arc::as_ptr(program.body()).cast::<u8>() as usize;
            let lp = match lower_cache.iter().find(|(k, _)| *k == key) {
                Some((_, lp)) => Arc::clone(lp),
                None => {
                    let lp = crate::lower::lower(&program, self.cfg.ce.vector_startup);
                    lower_cache.push((key, Arc::clone(&lp)));
                    lp
                }
            };
            let lm = lp.meta();
            meta.source_ops += lm.source_ops;
            meta.uops += lm.uops;
            meta.fused_ops += lm.fused_ops;
            meta.max_loop_depth = meta.max_loop_depth.max(lm.max_loop_depth);
            self.engines[ce.0] = Some(CeEngine::new(
                ce,
                &self.cfg,
                Arc::clone(&self.ce_cfg),
                program,
                self.lowered.then_some(lp),
            ));
        }

        let start = self.now;
        self.timeline.reset(start, total);
        self.fastfwd_skipped = 0;
        // Journey spans reset with the engines: the store (and the
        // `trace.*` registry keys) covers exactly the upcoming run.
        self.trace_store.clear();
        let stats_start = self.stats();
        // After the snapshot: the delta keeps counters absent from the
        // baseline, so the report carries this run's absolute values.
        self.program_meta = Some(meta);
        Ok(stats_start)
    }

    /// The run loop and report of [`Machine::run`], entered with a
    /// prepared machine. [`Machine::resume`] supplies the interrupted
    /// run's start, budget, baseline and watchdog instead of fresh ones.
    pub(crate) fn run_prepared(
        &mut self,
        start: Cycle,
        limit: u64,
        stats_start: MachineStats,
        mut watchdog: Watchdog,
    ) -> Result<RunReport> {
        let fastfwd = self.cfg.fast_forward && !crate::config::fastfwd_disabled_from_env();
        let mut ckpt = match (self.cfg.checkpoint_every, &self.cfg.checkpoint_path) {
            (every, Some(path)) if every > 0 => Some(crate::snapshot::CkptCtl {
                every,
                path: path.clone(),
                next: self.now + every,
                start,
                limit,
                stats_start: &stats_start,
            }),
            _ => None,
        };
        let run = if self.effective_threads() > 1 {
            self.run_loop_parallel(start, limit, fastfwd, &mut watchdog, &mut ckpt)
        } else {
            self.run_loop_serial(start, limit, fastfwd, &mut watchdog, &mut ckpt)
        };
        run?;
        fill_util_samples(&self.engines, &mut self.util_scratch);
        self.timeline.finish(self.now, &self.util_scratch);
        Ok(self.report(start, &stats_start))
    }

    fn run_loop_serial(
        &mut self,
        start: Cycle,
        limit: u64,
        fastfwd: bool,
        watchdog: &mut Watchdog,
        ckpt: &mut Option<crate::snapshot::CkptCtl<'_>>,
    ) -> Result<()> {
        while !self.all_done() {
            // Watchdog before the budget check: a true deadlock should
            // surface as `Deadlock` (with its hang report), never as a
            // generic `CycleLimitExceeded`.
            if watchdog.due(self.now) {
                self.check_progress(watchdog)?;
            }
            if self.now.saturating_since(start) > limit {
                return Err(MachineError::CycleLimitExceeded { limit });
            }
            self.tick();
            if fastfwd {
                let mut prof = self.profiler.take();
                profiled(&mut prof, region::FASTFWD, || {
                    self.try_fast_forward(start, limit);
                });
                self.profiler = prof;
            }
            // Auto-checkpoint at the loop boundary: post-tick (and
            // post-skip) state is always self-consistent here, whether
            // the run is mid-fast-forward, mid-outage or mid-journey.
            if let Some(ck) = ckpt.as_mut() {
                if self.now >= ck.next {
                    let image = self.run_image(ck, watchdog);
                    crate::snapshot::write_snapshot_file(&ck.path, &image)?;
                    ck.next = self.now + ck.every;
                }
            }
        }
        Ok(())
    }

    /// One forward-progress inspection (serial engine; the parallel
    /// coordinator runs the same checks through
    /// [`Machine::progress_verdict`]).
    ///
    /// # Errors
    ///
    /// [`MachineError::Faulted`] when a retry controller exhausted its
    /// budget, [`MachineError::Deadlock`] when the machine cannot finish.
    fn check_progress(&mut self, watchdog: &mut Watchdog) -> Result<()> {
        match self.progress_verdict(watchdog) {
            ProgressVerdict::Live => Ok(()),
            ProgressVerdict::Faulted { ce, reason } => Err(MachineError::Faulted { ce, reason }),
            ProgressVerdict::Deadlock(kind) => Err(MachineError::Deadlock {
                report: Box::new(self.hang_report(kind)),
            }),
        }
    }

    /// The watchdog's judgement of the machine's ability to finish,
    /// shared by the serial and parallel engines.
    pub(crate) fn progress_verdict(&self, watchdog: &mut Watchdog) -> ProgressVerdict {
        watchdog.arm_next(self.now);
        // A CE whose retry controller gave up can never become done.
        for e in self.engines.iter().flatten() {
            if let Some(reason) = e.fault_exhausted() {
                return ProgressVerdict::Faulted { ce: e.id(), reason };
            }
        }
        // No subsystem will ever act again, yet work remains: nothing can
        // change, so nothing will complete.
        if !self.all_done() && self.next_machine_event().is_none() {
            return ProgressVerdict::Deadlock("event starvation");
        }
        // Every unfinished CE sat in a synchronization wait across several
        // consecutive checks: a barrier/counter that can never release
        // (legitimate waits release within one poll period, far shorter
        // than a single check interval).
        let mut unfinished = 0usize;
        let mut sync_waiting = 0usize;
        for e in self.engines.iter().flatten() {
            if !e.is_done() {
                unfinished += 1;
                if e.sync_blocked() {
                    sync_waiting += 1;
                }
            }
        }
        if unfinished > 0 && sync_waiting == unfinished {
            watchdog.sync_stuck += 1;
            if watchdog.sync_stuck >= STUCK_SYNC_CHECKS {
                return ProgressVerdict::Deadlock("synchronization stall");
            }
        } else {
            watchdog.sync_stuck = 0;
        }
        ProgressVerdict::Live
    }

    /// Capture the machine state for a [`MachineError::Deadlock`].
    pub(crate) fn hang_report(&self, kind: &str) -> HangReport {
        let mut ces = Vec::new();
        let mut barrier_waiters = 0usize;
        let mut pending_retries = 0u64;
        for e in self.engines.iter().flatten() {
            pending_retries += e.fault_pending();
            if !e.is_done() {
                if e.sync_blocked() {
                    barrier_waiters += 1;
                }
                // Cap the listing: a machine-wide hang names every CE on a
                // 32-CE Cedar, but a pathological config should not build
                // an unbounded report.
                if ces.len() < 64 {
                    ces.push((e.id().0, e.hang_state()));
                }
            }
        }
        HangReport {
            at_cycle: self.now.0,
            kind: kind.to_string(),
            ces,
            barrier_waiters,
            fwd_in_flight: self.forward.in_flight_packets(),
            rev_in_flight: self.reverse.in_flight_packets(),
            module_queues: self.gmem.queue_depths(),
            pending_retries,
            chunked: None,
        }
    }

    /// The earliest future cycle at which any subsystem can change
    /// externally visible state, given no machine activity in between.
    /// `None` means no subsystem will ever act again (every CE is done —
    /// or deadlocked waiting on synchronization that cannot arrive).
    ///
    /// Conservative by construction: any subsystem unsure of its next
    /// event answers `now + 1`, which suppresses skipping but can never
    /// change results.
    pub(crate) fn next_machine_event(&self) -> Option<Cycle> {
        let now = self.now;
        let soon = now + 1;
        let mut best = min_event(self.forward.next_event(now), self.reverse.next_event(now));
        if best == Some(soon) {
            return best;
        }
        if let Some(fs) = &self.fault_sched {
            best = min_event(best, fs.next_event(now));
            if best == Some(soon) {
                return best;
            }
        }
        best = min_event(best, self.gmem.next_event(now));
        if best == Some(soon) {
            return best;
        }
        for cl in &self.clusters {
            best = min_event(best, cl.ccbus.next_event(now));
            if best == Some(soon) {
                return best;
            }
        }
        for e in self.engines.iter().flatten() {
            let ev = e.next_event(now, &self.clusters[e.cluster().0].ccbus, &self.counters);
            best = min_event(best, ev);
            if best == Some(soon) {
                return best;
            }
        }
        best
    }

    /// Event-horizon fast-forward: if every subsystem is quiescent until
    /// some future cycle `t`, jump straight to `t - 1`, bulk-crediting the
    /// skipped cycles into exactly the counters a cycle-by-cycle run would
    /// have bumped (CE idle/stall attribution, memory-module busy/queue
    /// occupancy, prefetch page-wait) and recording utilization-timeline
    /// buckets at their usual boundaries. Every statistic, histogram and
    /// digest stays bit-for-bit identical to the unskipped run.
    fn try_fast_forward(&mut self, start: Cycle, limit: u64) {
        // Past the cycle limit plus slack, so a run with no future events
        // (a deadlocked barrier) trips CycleLimitExceeded promptly instead
        // of ticking its way there.
        let deadlock_cap = Cycle(start.0.saturating_add(limit).saturating_add(2));
        let target = match self.next_machine_event() {
            Some(t) if t > self.now + 1 => t.min(deadlock_cap),
            Some(_) => return,
            None => {
                if self.all_done() {
                    return;
                }
                deadlock_cap
            }
        };
        if target <= self.now + 1 {
            return;
        }
        let Machine {
            engines,
            gmem,
            timeline,
            now,
            util_scratch,
            fastfwd_skipped,
            ..
        } = self;
        // Skip in chunks clamped to the next timeline bucket boundary, so
        // utilization buckets are recorded from the same cumulative state a
        // ticked run would have seen at each boundary.
        while *now + 1 < target {
            let boundary = timeline.next_boundary();
            let chunk_end = boundary.min(Cycle(target.0 - 1)).max(*now + 1);
            let k = chunk_end - *now;
            gmem.skip(k);
            for e in engines.iter_mut().flatten() {
                e.skip(*now, k);
            }
            *fastfwd_skipped += k;
            *now = chunk_end;
            if timeline.due(*now) {
                fill_util_samples(engines, util_scratch);
                timeline.record(util_scratch);
            }
        }
    }

    /// Worker threads the parallel engine will actually use: the
    /// configured count, capped at one worker per cluster, forced to one
    /// when VM modelling is on (page-fault interleaving across clusters is
    /// inherently order-dependent, so only the serial engine can model
    /// it deterministically).
    pub(crate) fn effective_threads(&self) -> usize {
        if self.cfg.vm.enabled {
            1
        } else {
            self.cfg.num_threads.min(self.cfg.clusters)
        }
    }

    /// A deterministic digest of the machine's persistent memory state:
    /// every global-memory synchronization word and every cluster-cache
    /// tag array. Two runs of the same programs end with equal digests iff
    /// they performed the same memory-visible work — the determinism test
    /// suite compares this across thread counts.
    pub fn memory_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut h = DefaultHasher::new();
        self.gmem.digest(&mut h);
        for cl in &self.clusters {
            cl.cache.digest(&mut h);
        }
        h.finish()
    }

    /// Advance the machine one cycle.
    fn tick(&mut self) {
        self.now += 1;
        let now = self.now;
        // The omegas have no absolute clock of their own; give their
        // tracing layer (if any) the cycle before any network activity.
        self.forward.set_trace_now(now);
        self.reverse.set_trace_now(now);
        // The profiler moves out for the tick so the `profiled` closures
        // can borrow machine fields freely; measures host time only.
        let mut prof = self.profiler.take();
        if let Some(fs) = &mut self.fault_sched {
            profiled(&mut prof, region::FAULTS, || {
                fs.apply_due(now, &mut self.forward, &mut self.reverse, &mut self.gmem);
            });
        }
        profiled(&mut prof, region::GMEM, || {
            self.gmem.tick(now, &mut self.reverse);
        });
        profiled(&mut prof, region::REVERSE, || {
            let mut sink = CeSink {
                engines: &mut self.engines,
                histogram: &mut self.latency_histogram,
                now,
            };
            // The CE side always accepts (try_begin is constant), so the
            // reverse network runs under a constant acceptance epoch.
            self.reverse.tick_epoch(&mut sink, 0);
        });
        profiled(&mut prof, region::FORWARD, || {
            let epoch = self.gmem.accept_epoch();
            self.forward.tick_epoch(&mut self.gmem, epoch);
        });
        profiled(&mut prof, region::CLUSTER, || {
            for cl in &mut self.clusters {
                cl.ccbus.tick(now);
            }
            let Machine {
                engines,
                clusters,
                forward,
                counters,
                barriers,
                page_table,
                tracer,
                ..
            } = self;
            for e in engines.iter_mut().flatten() {
                // Lowered mode: a CE parked inside a fused timed stall
                // (or finished) needs exactly one attribution increment —
                // skip the context plumbing and the full tick.
                let cluster = &mut clusters[e.cluster().0];
                if e.try_quick_tick(now, &cluster.ccbus) {
                    continue;
                }
                let mut ctx = CeContext {
                    forward,
                    cache: &mut cluster.cache,
                    ccbus: &mut cluster.ccbus,
                    tlb: &mut cluster.tlb,
                    page_table,
                    counters,
                    barriers,
                    tracer,
                };
                e.tick(now, &mut ctx);
            }
        });
        if self.timeline.due(now) {
            profiled(&mut prof, region::TIMELINE, || {
                fill_util_samples(&self.engines, &mut self.util_scratch);
                self.timeline.record(&self.util_scratch);
            });
        }
        self.profiler = prof;
    }

    fn all_done(&self) -> bool {
        self.engines.iter().flatten().all(CeEngine::is_done)
            && self.forward.is_idle()
            && self.reverse.is_idle()
            && self.gmem.is_idle()
    }

    fn report(&mut self, start: Cycle, stats_start: &MachineStats) -> RunReport {
        let cycles = self.now.saturating_since(start);
        let mut flops = 0;
        let mut ce_stats = Vec::new();
        let mut prefetch = PrefetchStats::default();
        let mut prefetch_per_ce = Vec::new();
        for e in self.engines.iter_mut().flatten() {
            let s = e.stats();
            flops += s.flops;
            ce_stats.push((e.id(), s));
            let p = e.prefetch_stats();
            prefetch.merge(&p);
            prefetch_per_ce.push((e.id(), p));
        }
        // Drain journey stamps into the span store in a fixed order —
        // engines in CE order (controller then PFU), forward network,
        // reverse network, memory modules in bank order — so the store's
        // contents are identical across thread counts and fast-forward
        // settings. (Assembly sorts anyway; the fixed order makes the raw
        // event stream comparable too.)
        for e in self.engines.iter_mut().flatten() {
            let (mut ev, d) = e.drain_trace();
            self.trace_store.events.append(&mut ev);
            self.trace_store.dropped += d;
        }
        for net in [&mut self.forward, &mut self.reverse] {
            if let Some((mut ev, d)) = net.drain_trace() {
                self.trace_store.events.append(&mut ev);
                self.trace_store.dropped += d;
            }
        }
        self.trace_store.dropped += self.gmem.drain_trace(&mut self.trace_store.events);
        // Snapshot after the loops above: prefetch traces are flushed and
        // journey spans drained, so the registry sees final per-run values.
        let stats = self.stats().delta(stats_start);
        RunReport {
            cycles,
            seconds: Cycle(cycles).to_seconds(self.cfg.cycle_ns),
            flops,
            mflops: mflops(flops, cycles, self.cfg.cycle_ns),
            ce_stats,
            prefetch,
            prefetch_per_ce,
            net_forward: self.forward.stats(),
            net_reverse: self.reverse.stats(),
            cache: self.clusters.iter().map(|c| c.cache.stats()).collect(),
            memory: self.gmem.total_stats(),
            tlb: self.clusters.iter().map(|c| c.tlb.stats()).collect(),
            ccbus: self.clusters.iter().map(|c| c.ccbus.stats()).collect(),
            stats,
            resumed_from: None,
        }
    }

    fn validate_program(&self, ce: CeId, program: &Program) -> Result<()> {
        fn walk(ops: &[Op], counters: usize, barriers: usize, ce: CeId) -> Result<()> {
            for op in ops {
                match op {
                    Op::SelfSchedLoop { counter, body, .. } => {
                        if counter.0 >= counters {
                            return Err(MachineError::BadProgram {
                                ce,
                                reason: format!("unallocated counter {}", counter.0),
                            });
                        }
                        walk(body, counters, barriers, ce)?;
                    }
                    Op::Repeat { body, .. } => walk(body, counters, barriers, ce)?,
                    Op::Barrier { barrier } if barrier.0 >= barriers => {
                        return Err(MachineError::BadProgram {
                            ce,
                            reason: format!("unallocated barrier {}", barrier.0),
                        });
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        walk(program.body(), self.counters.len(), self.barriers.len(), ce)
    }
}

/// Fill `out` with cumulative per-CE utilization samples, one per
/// configured CE (all-zero for CEs that run no program). Reuses the
/// caller's buffer so the per-bucket timeline record allocates nothing.
pub(crate) fn fill_util_samples(engines: &[Option<CeEngine>], out: &mut Vec<UtilSample>) {
    out.clear();
    out.extend(engines.iter().map(|e| match e {
        Some(e) => {
            let s = e.stats();
            UtilSample {
                busy: s.busy,
                stall_mem: s.stall_mem,
                stall_sync: s.stall_sync,
                idle: s.idle,
            }
        }
        None => UtilSample::default(),
    }));
}

/// Routes reverse-network deliveries into CE engines, histogramming
/// prefetch round trips on the way past (the external monitor probes the
/// reverse-network signals on the real machine).
struct CeSink<'a> {
    engines: &'a mut [Option<CeEngine>],
    histogram: &'a mut Arc<Histogrammer>,
    now: Cycle,
}

impl NetSink for CeSink<'_> {
    fn try_begin(&mut self, _port: usize) -> bool {
        // The CE side always sinks replies (prefetch buffer slots and
        // reply latches are pre-reserved by the requests themselves).
        true
    }

    fn deliver(&mut self, port: usize, packet: Packet) {
        if let Payload::Reply(r) = packet.payload {
            if matches!(r.stream, crate::network::packet::Stream::Prefetch { .. }) {
                Arc::make_mut(self.histogram)
                    .record(self.now.saturating_since(r.req_issued) as usize);
            }
            if let Some(Some(e)) = self.engines.get_mut(port) {
                e.receive(self.now, r);
            }
        } else {
            debug_assert!(false, "request packet delivered to CE side");
        }
    }
}

//! The complete Cedar machine: clusters, networks, global memory.
//!
//! [`Machine`] owns four (configurable) Alliant clusters — each a shared
//! cache, cluster memory, concurrency control bus and TLB — two omega
//! networks, and the interleaved global memory with its synchronization
//! processors. Programs are loaded one per CE and the machine ticks all
//! components in a fixed, deterministic order until every program
//! completes.

use crate::cache::{CacheStats, ClusterCache};
use crate::ccbus::{CcBus, CcBusStats};
use crate::ce::{CeContext, CeEngine, CeStats};
use crate::config::MachineConfig;
use crate::error::{MachineError, Result};
use crate::ids::{CeId, ClusterId, CounterId};
use crate::memory::cluster_mem::ClusterMemory;
use crate::memory::global::GlobalMemory;
use crate::memory::module::ModuleStats;
use crate::network::packet::{Packet, Payload};
use crate::network::{NetSink, NetStats, Omega};
use crate::monitor::{EventTracer, Histogrammer};
use crate::prefetch::PrefetchStats;
use crate::program::{BarrierId, Op, Program};
use crate::sched::{BarrierDef, BarrierScope, CounterDef, EPOCH_SPACING};
use crate::time::{mflops, Cycle};
use crate::vm::{PageTable, Tlb, TlbStats};

/// Base of the address region the machine hands out for synchronization
/// words (counters, barriers). Kept far above any data address a workload
/// uses; the interleaving still spreads it across modules.
const SYNC_REGION_BASE: u64 = 1 << 40;

/// Where a loop-scheduling counter should live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterScope {
    /// On one cluster's concurrency control bus (CDOALL-style).
    Cluster(ClusterId),
    /// In global memory (XDOALL-style).
    Global,
    /// In global memory at cluster granularity (self-scheduled
    /// SDOALL-style): values are fetched once per cluster and broadcast
    /// over the concurrency bus.
    SdoallGlobal,
}

/// One cluster: shared cache (owning the cluster memory), concurrency
/// control bus, and TLB.
#[derive(Debug)]
pub struct Cluster {
    pub(crate) cache: ClusterCache,
    pub(crate) ccbus: CcBus,
    pub(crate) tlb: Tlb,
}

/// Results of one [`Machine::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Cycles from run start to the last CE finishing (networks drained).
    pub cycles: u64,
    /// Wall-clock seconds at the configured cycle time.
    pub seconds: f64,
    /// Total floating-point operations performed by all CEs.
    pub flops: u64,
    /// Sustained MFLOPS over the run.
    pub mflops: f64,
    /// Per-CE execution statistics for the CEs that ran programs.
    pub ce_stats: Vec<(CeId, CeStats)>,
    /// Aggregate prefetch statistics over all CEs in this run.
    pub prefetch: PrefetchStats,
    /// Per-CE prefetch statistics.
    pub prefetch_per_ce: Vec<(CeId, PrefetchStats)>,
    /// Forward network statistics (cumulative over the machine's life).
    pub net_forward: NetStats,
    /// Reverse network statistics (cumulative).
    pub net_reverse: NetStats,
    /// Per-cluster cache statistics (cumulative).
    pub cache: Vec<CacheStats>,
    /// Aggregate global-memory statistics (cumulative).
    pub memory: ModuleStats,
    /// Per-cluster TLB statistics (cumulative; all zero unless VM enabled).
    pub tlb: Vec<TlbStats>,
    /// Per-cluster concurrency-bus statistics (cumulative).
    pub ccbus: Vec<CcBusStats>,
}

/// The simulated Cedar machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    now: Cycle,
    forward: Omega,
    reverse: Omega,
    gmem: GlobalMemory,
    clusters: Vec<Cluster>,
    counters: Vec<CounterDef>,
    barriers: Vec<BarrierDef>,
    next_sync_slot: u64,
    next_bus_barrier_slot: usize,
    engines: Vec<Option<CeEngine>>,
    page_table: PageTable,
    tracer: EventTracer,
    latency_histogram: Histogrammer,
}

impl Machine {
    /// Build a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(cfg: MachineConfig) -> Result<Machine> {
        cfg.validate().map_err(MachineError::InvalidConfig)?;
        let ports = cfg.network_ports();
        let clusters = (0..cfg.clusters)
            .map(|_| Cluster {
                cache: ClusterCache::new(
                    &cfg.cache,
                    cfg.ces_per_cluster,
                    ClusterMemory::new(&cfg.cluster_memory),
                ),
                ccbus: CcBus::new(&cfg.ccbus, cfg.ces_per_cluster),
                tlb: Tlb::new(cfg.vm.tlb_entries),
            })
            .collect();
        Ok(Machine {
            forward: Omega::new(ports, &cfg.network),
            reverse: Omega::new(ports, &cfg.network),
            gmem: GlobalMemory::new(&cfg.global_memory),
            clusters,
            counters: Vec::new(),
            barriers: Vec::new(),
            next_sync_slot: 0,
            next_bus_barrier_slot: 0,
            engines: Vec::new(),
            page_table: PageTable::new(),
            tracer: EventTracer::new(),
            latency_histogram: Histogrammer::with_bins(512),
            now: Cycle::ZERO,
            cfg,
        })
    }

    /// A full 32-CE Cedar.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the canonical configuration is valid).
    pub fn cedar() -> Result<Machine> {
        Machine::new(MachineConfig::cedar())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The machine-wide page table (virtual-memory studies).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The external event tracer (records software-posted events).
    pub fn tracer(&self) -> &EventTracer {
        &self.tracer
    }

    /// The prefetch first-word round-trip latency histogram collected by
    /// the monitoring hardware on the reverse network (cycles, capped at
    /// the last bin).
    pub fn latency_histogram(&self) -> &Histogrammer {
        &self.latency_histogram
    }

    /// Allocate a self-scheduling counter.
    pub fn alloc_counter(&mut self, scope: CounterScope) -> CounterId {
        let def = match scope {
            CounterScope::Cluster(cluster) => {
                let slot = self.clusters[cluster.0].ccbus.alloc_counter();
                CounterDef::Cluster { cluster, slot }
            }
            CounterScope::Global => {
                let base = self.alloc_sync_base();
                CounterDef::Global { base_addr: base }
            }
            CounterScope::SdoallGlobal => {
                let base = self.alloc_sync_base();
                CounterDef::GlobalShared { base_addr: base }
            }
        };
        self.counters.push(def);
        CounterId(self.counters.len() - 1)
    }

    /// Allocate a barrier for `expected` participants.
    pub fn alloc_barrier(&mut self, scope: BarrierScope, expected: u32) -> BarrierId {
        let base_addr = match scope {
            BarrierScope::Cluster(_) => {
                let slot = self.next_bus_barrier_slot;
                self.next_bus_barrier_slot += 1;
                slot as u64
            }
            BarrierScope::Global => self.alloc_sync_base(),
        };
        self.barriers.push(BarrierDef {
            scope,
            expected,
            base_addr,
        });
        BarrierId(self.barriers.len() - 1)
    }

    fn alloc_sync_base(&mut self) -> u64 {
        let slot = self.next_sync_slot;
        self.next_sync_slot += 1;
        // The +1 keeps successive slots (and successive epochs) on
        // different memory modules.
        SYNC_REGION_BASE + slot * (EPOCH_SPACING + 1)
    }

    /// Run `programs` (one per CE) to completion.
    ///
    /// # Errors
    ///
    /// * [`MachineError::NoSuchCe`] if a program targets a CE outside the
    ///   configured machine.
    /// * [`MachineError::BadProgram`] if a program references an
    ///   unallocated counter or barrier.
    /// * [`MachineError::CycleLimitExceeded`] if the run does not finish
    ///   within `limit` cycles (almost always a deadlocked barrier).
    pub fn run(&mut self, programs: Vec<(CeId, Program)>, limit: u64) -> Result<RunReport> {
        let total = self.cfg.total_ces();
        // Fresh engines restart their counter/barrier epochs at zero, so
        // stale synchronization words from a previous run must go.
        self.gmem.clear_sync();
        self.page_table.reset();
        for cl in &mut self.clusters {
            cl.ccbus.reset();
            cl.tlb.flush();
        }
        self.engines = (0..total).map(|_| None).collect();
        for (ce, program) in programs {
            if ce.0 >= total {
                return Err(MachineError::NoSuchCe(ce));
            }
            self.validate_program(ce, &program)?;
            self.engines[ce.0] = Some(CeEngine::new(ce, &self.cfg, program));
        }

        let start = self.now;
        while !self.all_done() {
            if self.now.saturating_since(start) > limit {
                return Err(MachineError::CycleLimitExceeded { limit });
            }
            self.tick();
        }
        Ok(self.report(start))
    }

    /// Advance the machine one cycle.
    fn tick(&mut self) {
        self.now += 1;
        let now = self.now;
        self.gmem.tick(now, &mut self.reverse);
        {
            let mut sink = CeSink {
                engines: &mut self.engines,
                histogram: &mut self.latency_histogram,
                now,
            };
            self.reverse.tick(&mut sink);
        }
        self.forward.tick(&mut self.gmem);
        for cl in &mut self.clusters {
            cl.ccbus.tick(now);
        }
        let Machine {
            engines,
            clusters,
            forward,
            counters,
            barriers,
            page_table,
            tracer,
            ..
        } = self;
        for e in engines.iter_mut().flatten() {
            let cluster = &mut clusters[e.cluster().0];
            let mut ctx = CeContext {
                forward,
                cache: &mut cluster.cache,
                ccbus: &mut cluster.ccbus,
                tlb: &mut cluster.tlb,
                page_table,
                counters,
                barriers,
                tracer,
            };
            e.tick(now, &mut ctx);
        }
    }

    fn all_done(&self) -> bool {
        self.engines.iter().flatten().all(CeEngine::is_done)
            && self.forward.is_idle()
            && self.reverse.is_idle()
            && self.gmem.is_idle()
    }

    fn report(&mut self, start: Cycle) -> RunReport {
        let cycles = self.now.saturating_since(start);
        let mut flops = 0;
        let mut ce_stats = Vec::new();
        let mut prefetch = PrefetchStats::default();
        let mut prefetch_per_ce = Vec::new();
        for e in self.engines.iter_mut().flatten() {
            let s = e.stats();
            flops += s.flops;
            ce_stats.push((e.id(), s));
            let p = e.prefetch_stats();
            prefetch.merge(&p);
            prefetch_per_ce.push((e.id(), p));
        }
        RunReport {
            cycles,
            seconds: Cycle(cycles).to_seconds(self.cfg.cycle_ns),
            flops,
            mflops: mflops(flops, cycles, self.cfg.cycle_ns),
            ce_stats,
            prefetch,
            prefetch_per_ce,
            net_forward: self.forward.stats(),
            net_reverse: self.reverse.stats(),
            cache: self.clusters.iter().map(|c| c.cache.stats()).collect(),
            memory: self.gmem.total_stats(),
            tlb: self.clusters.iter().map(|c| c.tlb.stats()).collect(),
            ccbus: self.clusters.iter().map(|c| c.ccbus.stats()).collect(),
        }
    }

    fn validate_program(&self, ce: CeId, program: &Program) -> Result<()> {
        fn walk(
            ops: &[Op],
            counters: usize,
            barriers: usize,
            ce: CeId,
        ) -> Result<()> {
            for op in ops {
                match op {
                    Op::SelfSchedLoop { counter, body, .. } => {
                        if counter.0 >= counters {
                            return Err(MachineError::BadProgram {
                                ce,
                                reason: format!("unallocated counter {}", counter.0),
                            });
                        }
                        walk(body, counters, barriers, ce)?;
                    }
                    Op::Repeat { body, .. } => walk(body, counters, barriers, ce)?,
                    Op::Barrier { barrier }
                        if barrier.0 >= barriers => {
                            return Err(MachineError::BadProgram {
                                ce,
                                reason: format!("unallocated barrier {}", barrier.0),
                            });
                        }
                    _ => {}
                }
            }
            Ok(())
        }
        walk(
            program.body(),
            self.counters.len(),
            self.barriers.len(),
            ce,
        )
    }
}

/// Routes reverse-network deliveries into CE engines, histogramming
/// prefetch round trips on the way past (the external monitor probes the
/// reverse-network signals on the real machine).
struct CeSink<'a> {
    engines: &'a mut [Option<CeEngine>],
    histogram: &'a mut Histogrammer,
    now: Cycle,
}

impl NetSink for CeSink<'_> {
    fn try_begin(&mut self, _port: usize) -> bool {
        // The CE side always sinks replies (prefetch buffer slots and
        // reply latches are pre-reserved by the requests themselves).
        true
    }

    fn deliver(&mut self, port: usize, packet: Packet) {
        if let Payload::Reply(r) = packet.payload {
            if matches!(r.stream, crate::network::packet::Stream::Prefetch { .. }) {
                self.histogram
                    .record(self.now.saturating_since(r.req_issued) as usize);
            }
            if let Some(Some(e)) = self.engines.get_mut(port) {
                e.receive(self.now, r);
            }
        } else {
            debug_assert!(false, "request packet delivered to CE side");
        }
    }
}

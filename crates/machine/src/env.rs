//! Environment-variable knobs, consolidated.
//!
//! Every `CEDAR_*` runtime knob is parsed here, under one documented
//! policy with two tiers:
//!
//! * **Lenient** knobs steer pure wall-clock behaviour — thread counts,
//!   chunk lengths, the `CEDAR_NO_*` escape hatches. The simulated
//!   results are bit-for-bit identical whatever these are set to, so a
//!   malformed value is never worth aborting a run over: the parser
//!   prints a stderr warning naming the variable, the rejected value and
//!   the fallback, and the configured behaviour stands. (`CEDAR_NO_*`
//!   hatches are laxer still: anything but an affirmative value means
//!   "off", so a CI matrix can pass `0` for the default behaviour.)
//! * **Strict** knobs change *observable output* — the fault seed and the
//!   tracing plan select which experiment runs. Garbage there is a hard
//!   [`MachineError::InvalidConfig`]: silently running a different
//!   experiment than the one asked for is exactly what the deterministic
//!   seeding exists to prevent.
//!
//! `crate::config` re-exports all of these, so existing call sites keep
//! their `config::` paths.

use crate::error::MachineError;

/// The simulation thread count requested through the `CEDAR_NUM_THREADS`
/// environment variable, if set to a positive integer.
///
/// A set-but-invalid value (garbage, zero, negative) is *not* silently
/// ignored: a warning naming the variable, the rejected value and the
/// fallback is printed to stderr, and the configured thread count stands.
pub fn threads_from_env() -> Option<usize> {
    parse_env_threads("CEDAR_NUM_THREADS")
}

/// Shared lenient parser for thread-count environment knobs
/// (`CEDAR_NUM_THREADS` here, `CEDAR_SWEEP_THREADS` in the experiment
/// sweep driver): unset → `None`; a positive integer → `Some(n)`; anything
/// else → `None` *with a stderr warning* so a typo in a CI matrix is
/// visible instead of silently running the fallback configuration.
pub fn parse_env_threads(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            eprintln!(
                "warning: ignoring {var}={raw:?}: expected a positive integer; \
                 falling back to the configured thread count"
            );
            None
        }
    }
}

/// The chunk-length cap requested through the `CEDAR_CHUNK_CYCLES`
/// environment variable, if set to a non-negative integer: `0` asks for
/// the automatic lookahead bound, `1` recovers the per-cycle barrier
/// engine, and `k > 1` caps the automatic bound at `k` cycles. Unset →
/// `None` (the configured [`MachineConfig::chunk_cycles`] stands).
///
/// Lenient like the thread knobs — chunking is purely a wall-clock
/// optimization (results are bit-for-bit identical at any chunk length),
/// so garbage warns and falls back instead of failing the run.
///
/// [`MachineConfig::chunk_cycles`]: crate::config::MachineConfig::chunk_cycles
pub fn chunk_cycles_from_env() -> Option<usize> {
    let raw = std::env::var("CEDAR_CHUNK_CYCLES").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!(
                "warning: ignoring CEDAR_CHUNK_CYCLES={raw:?}: expected a non-negative \
                 integer (0 = automatic); falling back to the configured chunk length"
            );
            None
        }
    }
}

/// The fault-injection seed requested through the `CEDAR_FAULT_SEED`
/// environment variable: unset → `Ok(None)`, a u64 (decimal, or hex with a
/// `0x` prefix) → `Ok(Some(seed))`.
///
/// # Errors
///
/// Unlike the thread knobs, an invalid seed is a hard
/// [`MachineError::InvalidConfig`]: a resilience run with a silently
/// wrong seed would report results for an experiment nobody asked for.
pub fn fault_seed_from_env() -> Result<Option<u64>, MachineError> {
    let Ok(raw) = std::env::var("CEDAR_FAULT_SEED") else {
        return Ok(None);
    };
    let s = raw.trim();
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map(Some).map_err(|_| {
        MachineError::InvalidConfig(format!(
            "CEDAR_FAULT_SEED={raw:?} is not a u64 (decimal or 0x-prefixed hex)"
        ))
    })
}

/// The causal-tracing plan requested through the environment:
/// `CEDAR_TRACE_SAMPLE_PPM` (journeys sampled per million candidates) and
/// `CEDAR_TRACE_SEED` (u64, decimal or `0x`-prefixed hex; defaults to 0
/// when only the rate is set). Unset or zero rate → `Ok(None)`: the seed
/// alone never turns tracing on.
///
/// # Errors
///
/// Like [`fault_seed_from_env`] and unlike the thread knobs, garbage in
/// either variable is a hard [`MachineError::InvalidConfig`] naming the
/// variable: tracing *changes observable output* (the `trace.*` stats
/// keys and every trace report), so silently running a different sampling
/// plan than the one asked for is exactly what the deterministic tracing
/// layer exists to prevent.
pub fn trace_plan_from_env() -> Result<Option<crate::trace::TracePlan>, MachineError> {
    // Both variables are validated whenever set, even when the other one
    // would make the result `None` — a typo must never pass silently.
    let seed = match std::env::var("CEDAR_TRACE_SEED") {
        Err(_) => 0,
        Ok(raw) => {
            let s = raw.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse::<u64>(),
            };
            parsed.map_err(|_| {
                MachineError::InvalidConfig(format!(
                    "CEDAR_TRACE_SEED={raw:?} is not a u64 (decimal or 0x-prefixed hex)"
                ))
            })?
        }
    };
    let ppm = match std::env::var("CEDAR_TRACE_SAMPLE_PPM") {
        Err(_) => return Ok(None),
        Ok(raw) => {
            let parsed = raw.trim().parse::<u32>().ok().filter(|&p| p <= 1_000_000);
            parsed.ok_or_else(|| {
                MachineError::InvalidConfig(format!(
                    "CEDAR_TRACE_SAMPLE_PPM={raw:?} is not a rate in 0..=1000000"
                ))
            })?
        }
    };
    if ppm == 0 {
        return Ok(None);
    }
    Ok(Some(crate::trace::TracePlan {
        seed,
        sample_ppm: ppm,
    }))
}

/// The auto-checkpoint interval requested through the
/// `CEDAR_CHECKPOINT_EVERY` environment variable: unset → `Ok(None)`, a
/// non-negative cycle count → `Ok(Some(n))` (`0` switches checkpointing
/// off, overriding a configured interval).
///
/// # Errors
///
/// Strict like [`fault_seed_from_env`]: garbage is a hard
/// [`MachineError::InvalidConfig`]. Checkpointing silently off when a CI
/// leg or an operator asked for it would void the crash-recovery
/// guarantee the knob exists to provide — the run would finish, report
/// correct results, and leave nothing to resume from after a crash.
pub fn checkpoint_every_from_env() -> Result<Option<u64>, MachineError> {
    let Ok(raw) = std::env::var("CEDAR_CHECKPOINT_EVERY") else {
        return Ok(None);
    };
    raw.trim().parse::<u64>().map(Some).map_err(|_| {
        MachineError::InvalidConfig(format!(
            "CEDAR_CHECKPOINT_EVERY={raw:?} is not a cycle count (non-negative integer)"
        ))
    })
}

/// The auto-checkpoint file requested through the
/// `CEDAR_CHECKPOINT_PATH` environment variable: unset → `Ok(None)`, a
/// non-empty path → `Ok(Some(path))`.
///
/// # Errors
///
/// Strict: an empty (or all-whitespace) value is a hard
/// [`MachineError::InvalidConfig`] — it almost certainly means a CI
/// variable expansion came up empty, and "checkpoint to nowhere" must
/// not pass silently.
pub fn checkpoint_path_from_env() -> Result<Option<std::path::PathBuf>, MachineError> {
    let Ok(raw) = std::env::var("CEDAR_CHECKPOINT_PATH") else {
        return Ok(None);
    };
    if raw.trim().is_empty() {
        return Err(MachineError::InvalidConfig(
            "CEDAR_CHECKPOINT_PATH is set but empty".to_string(),
        ));
    }
    Ok(Some(std::path::PathBuf::from(raw)))
}

/// True when the `CEDAR_NO_FASTFWD` environment variable asks for the
/// cycle-by-cycle loop (`1`/`true`/`yes`, case-insensitive). Anything else
/// — unset, `0`, garbage — leaves [`MachineConfig::fast_forward`] in
/// charge, so a CI matrix can pass `0` for the default behaviour.
///
/// [`MachineConfig::fast_forward`]: crate::config::MachineConfig::fast_forward
pub fn fastfwd_disabled_from_env() -> bool {
    truthy_env("CEDAR_NO_FASTFWD")
}

/// True when the `CEDAR_NO_FLOWPATH` environment variable asks for the
/// dense per-flit oracle sweep (`1`/`true`/`yes`, case-insensitive).
/// Anything else — unset, `0`, garbage — leaves
/// [`MachineConfig::flow_path`] in charge, so a CI matrix can pass `0`
/// for the default behaviour. Mirrors `CEDAR_NO_FASTFWD`.
///
/// [`MachineConfig::flow_path`]: crate::config::MachineConfig::flow_path
pub fn flowpath_disabled_from_env() -> bool {
    truthy_env("CEDAR_NO_FLOWPATH")
}

/// True when the `CEDAR_NO_LOWER` environment variable asks for the
/// tree-walking CE interpreter (`1`/`true`/`yes`, case-insensitive).
/// Anything else — unset, `0`, garbage — leaves
/// [`MachineConfig::lowered`] in charge, so a CI matrix can pass `0`
/// for the default behaviour. Mirrors `CEDAR_NO_FLOWPATH`.
///
/// [`MachineConfig::lowered`]: crate::config::MachineConfig::lowered
pub fn lowered_disabled_from_env() -> bool {
    truthy_env("CEDAR_NO_LOWER")
}

/// The shared affirmative-flag parser behind the `CEDAR_NO_*` hatches.
fn truthy_env(var: &str) -> bool {
    std::env::var(var)
        .is_ok_and(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    // One test owns each variable end to end: unit tests share a process,
    // so splitting a variable's cases across tests would race on the
    // environment.
    #[test]
    fn env_thread_knob_parses_and_feeds_with_env_threads() {
        std::env::remove_var("CEDAR_NUM_THREADS");
        assert_eq!(threads_from_env(), None);
        assert_eq!(MachineConfig::cedar().with_env_threads().num_threads, 1);

        std::env::set_var("CEDAR_NUM_THREADS", " 4 ");
        assert_eq!(threads_from_env(), Some(4));
        assert_eq!(MachineConfig::cedar().with_env_threads().num_threads, 4);

        // Garbage and zero are ignored (with a stderr warning), not errors.
        for bad in ["zero", "", "0", "-2"] {
            std::env::set_var("CEDAR_NUM_THREADS", bad);
            assert_eq!(threads_from_env(), None, "{bad:?} should not parse");
        }
        std::env::remove_var("CEDAR_NUM_THREADS");
    }

    // Same single-owner rule for CEDAR_CHUNK_CYCLES.
    #[test]
    fn env_chunk_knob_is_lenient() {
        std::env::remove_var("CEDAR_CHUNK_CYCLES");
        assert_eq!(chunk_cycles_from_env(), None);

        // Zero is a legal value (automatic bound), unlike the thread knob.
        std::env::set_var("CEDAR_CHUNK_CYCLES", "0");
        assert_eq!(chunk_cycles_from_env(), Some(0));
        std::env::set_var("CEDAR_CHUNK_CYCLES", " 4 ");
        assert_eq!(chunk_cycles_from_env(), Some(4));

        for bad in ["auto", "", "-3", "1.5"] {
            std::env::set_var("CEDAR_CHUNK_CYCLES", bad);
            assert_eq!(chunk_cycles_from_env(), None, "{bad:?} should not parse");
        }
        std::env::remove_var("CEDAR_CHUNK_CYCLES");
    }

    // Same single-owner rule for CEDAR_FAULT_SEED.
    #[test]
    fn env_fault_seed_parses_strictly() {
        std::env::remove_var("CEDAR_FAULT_SEED");
        assert_eq!(fault_seed_from_env().unwrap(), None);

        std::env::set_var("CEDAR_FAULT_SEED", " 42 ");
        assert_eq!(fault_seed_from_env().unwrap(), Some(42));
        std::env::set_var("CEDAR_FAULT_SEED", "0xCEDA");
        assert_eq!(fault_seed_from_env().unwrap(), Some(0xCEDA));

        // Garbage is a hard error, not a silent fallback.
        std::env::set_var("CEDAR_FAULT_SEED", "not-a-seed");
        let err = fault_seed_from_env().unwrap_err();
        assert!(matches!(err, MachineError::InvalidConfig(_)));
        assert!(err.to_string().contains("CEDAR_FAULT_SEED"));
        std::env::remove_var("CEDAR_FAULT_SEED");
    }
}

//! Error types for the machine simulator.

use core::fmt;

use crate::ids::{CeId, CounterId};

/// Errors raised while building or running a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// The machine configuration is internally inconsistent.
    InvalidConfig(String),
    /// A program referenced a CE outside the configured machine.
    NoSuchCe(CeId),
    /// A program referenced an undeclared scheduling counter.
    NoSuchCounter(CounterId),
    /// A program is malformed (e.g. consumes prefetch data that was never
    /// armed, or nests loops deeper than the supported depth).
    BadProgram { ce: CeId, reason: String },
    /// The simulation exceeded its cycle budget without completing —
    /// a genuinely slow run (the forward-progress watchdog catches true
    /// deadlocks before the budget runs out; see [`MachineError::Deadlock`]).
    CycleLimitExceeded { limit: u64 },
    /// The forward-progress watchdog decided the machine can never
    /// finish: either no subsystem has a future event while work remains,
    /// or every live CE sat in a synchronization wait across repeated
    /// checks. The report captures the machine state at detection.
    Deadlock { report: Box<HangReport> },
    /// A CE's retry controller exhausted its budget on one global-memory
    /// operation (persistent drops, NACKs, or an offline module): the
    /// machine cannot make that operation complete.
    Faulted { ce: CeId, reason: String },
    /// A machine snapshot could not be written, or could not be restored:
    /// wrong magic/version, torn or corrupted payload, or state that does
    /// not match the machine's configuration. Restore never panics on bad
    /// bytes — it returns this.
    Snapshot(String),
}

/// Machine state captured by the forward-progress watchdog at the moment
/// it declared a deadlock: who is waiting on what, and what is in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Machine cycle at detection.
    pub at_cycle: u64,
    /// What tripped the watchdog: `"event starvation"` (no subsystem has
    /// a future event) or `"synchronization stall"` (every live CE stuck
    /// in a sync wait across repeated checks).
    pub kind: String,
    /// Engine state of every unfinished CE, as `(ce index, state)`.
    pub ces: Vec<(usize, String)>,
    /// How many of those CEs are blocked in barrier/counter/sync waits.
    pub barrier_waiters: usize,
    /// Packets in flight on the forward (CE → memory) network.
    pub fwd_in_flight: usize,
    /// Packets in flight on the reverse (memory → CE) network.
    pub rev_in_flight: usize,
    /// Queued requests per global-memory module, `(module, depth)`,
    /// non-empty modules only.
    pub module_queues: Vec<(usize, usize)>,
    /// Global-memory operations still tracked by CE retry controllers.
    pub pending_retries: u64,
    /// Lookahead-chunked parallel-engine context at detection; `None`
    /// when the serial engine tripped the watchdog.
    pub chunked: Option<ChunkedContext>,
}

/// What the lookahead-chunked parallel engine was doing when the
/// watchdog fired, so a hang in the chunked exchange is diagnosable from
/// the report alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedContext {
    /// Cycles per chunk in the most recent exchange round (1 = the
    /// per-cycle fallback path).
    pub chunk_cycles: u64,
    /// Exchange rounds completed since the run started.
    pub exchanges: u64,
    /// Per-worker time parked at the exchange barriers, as
    /// `(worker, waits, nanoseconds)`.
    pub worker_sync_waits: Vec<(usize, u64, u64)>,
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hang at cycle {} ({}): {} unfinished CE(s), {} in sync waits, \
             {} fwd / {} rev packets in flight, {} pending retries",
            self.at_cycle,
            self.kind,
            self.ces.len(),
            self.barrier_waiters,
            self.fwd_in_flight,
            self.rev_in_flight,
            self.pending_retries,
        )?;
        if let Some(c) = &self.chunked {
            writeln!(
                f,
                "  chunked engine: chunk={}cy, {} exchanges",
                c.chunk_cycles, c.exchanges
            )?;
            for (worker, waits, ns) in &c.worker_sync_waits {
                writeln!(f, "    worker[{worker}]: {waits} waits, {ns}ns parked")?;
            }
        }
        for (ce, state) in &self.ces {
            writeln!(f, "  ce[{ce}]: {state}")?;
        }
        if !self.module_queues.is_empty() {
            write!(f, "  module queues:")?;
            for (m, depth) in &self.module_queues {
                write!(f, " [{m}]={depth}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
            MachineError::NoSuchCe(ce) => write!(f, "no such CE: {ce}"),
            MachineError::NoSuchCounter(c) => write!(f, "no such scheduling counter: {c}"),
            MachineError::BadProgram { ce, reason } => {
                write!(f, "bad program on {ce}: {reason}")
            }
            MachineError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded {limit} cycles without completing")
            }
            MachineError::Deadlock { report } => {
                write!(f, "machine deadlocked: {report}")
            }
            MachineError::Faulted { ce, reason } => {
                write!(f, "unrecoverable fault on {ce}: {reason}")
            }
            MachineError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenient result alias for machine operations.
pub type Result<T> = std::result::Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs: Vec<MachineError> = vec![
            MachineError::InvalidConfig("x".into()),
            MachineError::NoSuchCe(CeId(99)),
            MachineError::NoSuchCounter(CounterId(3)),
            MachineError::BadProgram {
                ce: CeId(0),
                reason: "oops".into(),
            },
            MachineError::CycleLimitExceeded { limit: 10 },
            MachineError::Deadlock {
                report: Box::new(sample_report()),
            },
            MachineError::Faulted {
                ce: CeId(3),
                reason: "request seq 9 failed after 17 attempts".into(),
            },
            MachineError::Snapshot("payload checksum mismatch".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    fn sample_report() -> HangReport {
        HangReport {
            at_cycle: 40_960,
            kind: "synchronization stall".into(),
            ces: vec![
                (0, "GlobalBarrier(poll)".into()),
                (8, "AwaitCounter".into()),
            ],
            barrier_waiters: 2,
            fwd_in_flight: 1,
            rev_in_flight: 0,
            module_queues: vec![(3, 2)],
            pending_retries: 1,
            chunked: Some(ChunkedContext {
                chunk_cycles: 6,
                exchanges: 512,
                worker_sync_waits: vec![(0, 512, 90_000), (1, 512, 81_000)],
            }),
        }
    }

    #[test]
    fn hang_report_display_names_every_waiter() {
        let r = sample_report();
        let text = r.to_string();
        assert!(text.contains("cycle 40960"));
        assert!(text.contains("ce[0]: GlobalBarrier(poll)"));
        assert!(text.contains("ce[8]: AwaitCounter"));
        assert!(text.contains("[3]=2"));
        assert!(
            text.contains("chunk=6cy"),
            "chunked context missing: {text}"
        );
        assert!(text.contains("512 exchanges"));
        assert!(text.contains("worker[1]: 512 waits"));
        let e = MachineError::Deadlock {
            report: Box::new(r),
        };
        assert!(e.to_string().contains("deadlocked"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineError>();
    }
}

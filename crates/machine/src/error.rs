//! Error types for the machine simulator.

use core::fmt;

use crate::ids::{CeId, CounterId};

/// Errors raised while building or running a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// The machine configuration is internally inconsistent.
    InvalidConfig(String),
    /// A program referenced a CE outside the configured machine.
    NoSuchCe(CeId),
    /// A program referenced an undeclared scheduling counter.
    NoSuchCounter(CounterId),
    /// A program is malformed (e.g. consumes prefetch data that was never
    /// armed, or nests loops deeper than the supported depth).
    BadProgram { ce: CeId, reason: String },
    /// The simulation exceeded its cycle budget without completing —
    /// almost always a deadlocked program (e.g. a barrier some CE never
    /// reaches).
    CycleLimitExceeded { limit: u64 },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
            MachineError::NoSuchCe(ce) => write!(f, "no such CE: {ce}"),
            MachineError::NoSuchCounter(c) => write!(f, "no such scheduling counter: {c}"),
            MachineError::BadProgram { ce, reason } => {
                write!(f, "bad program on {ce}: {reason}")
            }
            MachineError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded {limit} cycles without completing")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenient result alias for machine operations.
pub type Result<T> = std::result::Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs: Vec<MachineError> = vec![
            MachineError::InvalidConfig("x".into()),
            MachineError::NoSuchCe(CeId(99)),
            MachineError::NoSuchCounter(CounterId(3)),
            MachineError::BadProgram {
                ce: CeId(0),
                reason: "oops".into(),
            },
            MachineError::CycleLimitExceeded { limit: 10 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineError>();
    }
}

//! CE programs: the instruction-stream model executed by the simulator.
//!
//! A [`Program`] is a tree of [`Op`]s. It abstracts the 68020+vector
//! instruction set to the granularity that determines timing: scalar work,
//! register–memory vector instructions with one memory operand, prefetch
//! arm/fire, synchronization instructions, loop constructs (counted
//! repeats and self-scheduled parallel loops) and barriers. Addresses are
//! affine expressions in the enclosing loop indices so that one compact
//! program can sweep large data structures.

use std::sync::Arc;

use crate::ids::CounterId;
use crate::memory::sync::SyncInstr;

/// Identifier of a machine-level barrier allocated with
/// [`Machine::alloc_barrier`](crate::machine::Machine::alloc_barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub usize);

/// An affine address expression: `base + Σ coeffs[d] · loop_index[d]`,
/// where `d` is the absolute nesting depth of the enclosing loops
/// (0 = outermost).
///
/// # Examples
///
/// ```
/// use cedar_machine::program::AddressExpr;
/// // base 1000, plus 64 words per outer-loop iteration:
/// let a = AddressExpr::new(1000).with_coeff(0, 64);
/// assert_eq!(a.eval(&[3]), 1000 + 3 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressExpr {
    /// Base word address.
    pub base: u64,
    /// `(loop depth, words per iteration)` pairs.
    pub coeffs: Vec<(u8, i64)>,
}

impl AddressExpr {
    /// A constant address.
    pub fn new(base: u64) -> AddressExpr {
        AddressExpr {
            base,
            coeffs: Vec::new(),
        }
    }

    /// Add a dependence on the loop at `depth` with the given word stride.
    pub fn with_coeff(mut self, depth: u8, coeff: i64) -> AddressExpr {
        self.coeffs.push((depth, coeff));
        self
    }

    /// Evaluate under the current loop indices (index 0 = outermost).
    /// Depths beyond the provided stack contribute zero.
    pub fn eval(&self, indices: &[u64]) -> u64 {
        let mut a = self.base as i64;
        for &(d, c) in &self.coeffs {
            if let Some(&i) = indices.get(d as usize) {
                a += c * i as i64;
            }
        }
        a as u64
    }
}

impl From<u64> for AddressExpr {
    fn from(base: u64) -> AddressExpr {
        AddressExpr::new(base)
    }
}

/// The single memory operand of a register–memory vector instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOperand {
    /// Register–register: no memory operand.
    None,
    /// Strided read from global memory, one direct request per element
    /// (limited to two outstanding — the GM/no-pref mode of Table 1).
    GlobalRead { addr: AddressExpr, stride: i64 },
    /// Consume elements from the prefetch buffer in request order.
    Prefetched,
    /// Strided write to global memory (writes do not stall the CE).
    GlobalWrite { addr: AddressExpr, stride: i64 },
    /// Strided read from cluster memory through the shared cache.
    ClusterRead { addr: AddressExpr, stride: i64 },
    /// Strided write to cluster memory through the shared cache.
    ClusterWrite { addr: AddressExpr, stride: i64 },
    /// Indexed (gather) read from global memory: element addresses are
    /// data-dependent and effectively scattered over the modules. Like
    /// direct reads, gathers bypass the prefetch unit and are limited to
    /// two outstanding requests.
    GlobalGather { addr: AddressExpr },
    /// Indexed (scatter) write to global memory.
    GlobalScatter { addr: AddressExpr },
}

/// One vector instruction: up to `length` elements, `flops_per_element`
/// floating-point operations each (2 with chaining — e.g. a multiply–add
/// triad), and at most one memory operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorOp {
    pub length: u32,
    pub flops_per_element: u8,
    pub operand: MemOperand,
}

/// A straight-line block of operations, cheaply shareable between loop
/// frames and across CEs.
pub type Block = Arc<[Op]>;

/// One operation in a CE program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Busy scalar computation for the given number of cycles.
    ScalarWork { cycles: u32 },
    /// Scalar floating-point work: `flops` operations at
    /// `cycles_per_flop` cycles each (the 68020+FPU scalar rate; used for
    /// unvectorized baselines so MFLOPS accounting stays truthful).
    ScalarFlops { flops: u32, cycles_per_flop: u8 },
    /// A single scalar load from global memory (latency-bound).
    ScalarGlobalRead { addr: AddressExpr },
    /// A single scalar store to global memory (does not stall).
    ScalarGlobalWrite { addr: AddressExpr },
    /// A vector instruction.
    Vector(VectorOp),
    /// Arm the prefetch unit with a shape.
    PrefetchArm { length: u32, stride: i64 },
    /// Fire the prefetch unit at an address (asynchronous; overlaps with
    /// subsequent computation).
    PrefetchFire { base: AddressExpr },
    /// Rewind the prefetch buffer to reuse its contents.
    PrefetchRewind,
    /// Execute the body `count` times; pushes a loop index.
    Repeat { count: u32, body: Block },
    /// A self-scheduled parallel loop: iterations are fetched in chunks
    /// from a shared counter until `limit`; pushes a loop index.
    /// `dispatch_cost` cycles are charged after each successful chunk
    /// fetch (runtime-library software around the counter access).
    SelfSchedLoop {
        counter: CounterId,
        limit: u64,
        chunk: u32,
        dispatch_cost: u32,
        body: Block,
    },
    /// Wait at a machine barrier.
    Barrier { barrier: BarrierId },
    /// Issue a synchronization instruction to a global address and wait
    /// for the result.
    SyncOp { addr: AddressExpr, instr: SyncInstr },
    /// Wait until all of this CE's outstanding global writes have been
    /// acknowledged (software fence; the global memory is weakly ordered).
    Fence,
    /// Post a software event to the performance-monitoring hardware
    /// (§2 "Performance monitoring": programs can post events to the
    /// external tracers).
    PostEvent { tag: u32 },
}

/// Static program shape, computed once at construction instead of
/// re-walking the op tree on every query. Loop ops count themselves plus
/// their bodies; `max_loop_depth` is the deepest `Repeat`/`SelfSchedLoop`
/// nesting (0 for straight-line programs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramMeta {
    /// Total static operation count, loop bodies included.
    pub ops: usize,
    /// Deepest loop nesting anywhere in the program.
    pub max_loop_depth: usize,
}

impl ProgramMeta {
    fn of_block(block: &Block) -> ProgramMeta {
        let mut meta = ProgramMeta::default();
        for op in block.iter() {
            match op {
                Op::Repeat { body, .. } | Op::SelfSchedLoop { body, .. } => {
                    let inner = ProgramMeta::of_block(body);
                    meta.ops += 1 + inner.ops;
                    meta.max_loop_depth = meta.max_loop_depth.max(1 + inner.max_loop_depth);
                }
                _ => meta.ops += 1,
            }
        }
        meta
    }
}

/// A complete program for one CE.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    body: Block,
    meta: ProgramMeta,
}

impl Program {
    /// Wrap a block as a program.
    pub fn from_block(body: Block) -> Program {
        let meta = ProgramMeta::of_block(&body);
        Program { body, meta }
    }

    /// An empty program (the CE finishes immediately).
    pub fn empty() -> Program {
        Program::from_block(Arc::from(Vec::new()))
    }

    /// The top-level block.
    pub fn body(&self) -> &Block {
        &self.body
    }

    /// The top-level block, by value (no refcount traffic when the
    /// program is being consumed, e.g. loading an engine).
    pub fn into_body(self) -> Block {
        self.body
    }

    /// Static shape, cached at construction.
    pub fn meta(&self) -> ProgramMeta {
        self.meta
    }

    /// Total static operation count (for sanity checks and reporting).
    pub fn op_count(&self) -> usize {
        self.meta.ops
    }
}

/// Builder for CE programs with structured nesting.
///
/// # Examples
///
/// ```
/// use cedar_machine::program::{ProgramBuilder, VectorOp, MemOperand};
/// let mut b = ProgramBuilder::new();
/// b.scalar(10);
/// b.repeat(4, |b| {
///     b.vector(VectorOp {
///         length: 32,
///         flops_per_element: 2,
///         operand: MemOperand::None,
///     });
/// });
/// let p = b.build();
/// assert_eq!(p.op_count(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    stack: Vec<Vec<Op>>,
    depth: u8,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            stack: vec![Vec::new()],
            depth: 0,
        }
    }

    /// Current loop nesting depth — the depth the *next* enclosed loop
    /// index will get, usable in [`AddressExpr::with_coeff`].
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Append any operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.stack
            .last_mut()
            .expect("builder always has an open block")
            .push(op);
        self
    }

    /// Append scalar work.
    pub fn scalar(&mut self, cycles: u32) -> &mut Self {
        self.push(Op::ScalarWork { cycles })
    }

    /// Append a vector instruction.
    pub fn vector(&mut self, v: VectorOp) -> &mut Self {
        self.push(Op::Vector(v))
    }

    /// Append a counted loop; `f` fills the body. The body sees its index
    /// at depth [`ProgramBuilder::depth`] as captured *before* this call.
    pub fn repeat(&mut self, count: u32, f: impl FnOnce(&mut ProgramBuilder)) -> &mut Self {
        self.stack.push(Vec::new());
        self.depth += 1;
        f(self);
        self.depth -= 1;
        let body = self.stack.pop().expect("pushed above");
        self.push(Op::Repeat {
            count,
            body: Arc::from(body),
        })
    }

    /// Append a self-scheduled loop over `0..limit` in chunks of `chunk`.
    pub fn self_sched(
        &mut self,
        counter: CounterId,
        limit: u64,
        chunk: u32,
        f: impl FnOnce(&mut ProgramBuilder),
    ) -> &mut Self {
        self.self_sched_with_cost(counter, limit, chunk, 0, f)
    }

    /// [`ProgramBuilder::self_sched`] with a per-dispatch software cost.
    pub fn self_sched_with_cost(
        &mut self,
        counter: CounterId,
        limit: u64,
        chunk: u32,
        dispatch_cost: u32,
        f: impl FnOnce(&mut ProgramBuilder),
    ) -> &mut Self {
        assert!(chunk > 0, "self-scheduled chunk must be nonzero");
        self.stack.push(Vec::new());
        self.depth += 1;
        f(self);
        self.depth -= 1;
        let body = self.stack.pop().expect("pushed above");
        self.push(Op::SelfSchedLoop {
            counter,
            limit,
            chunk,
            dispatch_cost,
            body: Arc::from(body),
        })
    }

    /// Finish and return the program.
    ///
    /// # Panics
    ///
    /// Panics if called while a nested block is still open (cannot happen
    /// through the closure API).
    pub fn build(mut self) -> Program {
        assert_eq!(self.stack.len(), 1, "unclosed block in program builder");
        Program::from_block(Arc::from(self.stack.pop().expect("root block")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_expr_eval() {
        let a = AddressExpr::new(100).with_coeff(0, 10).with_coeff(1, -2);
        assert_eq!(a.eval(&[]), 100);
        assert_eq!(a.eval(&[3]), 130);
        assert_eq!(a.eval(&[3, 5]), 120);
        // Depths beyond the stack are ignored.
        let b = AddressExpr::new(0).with_coeff(4, 1000);
        assert_eq!(b.eval(&[1, 2]), 0);
    }

    #[test]
    fn builder_nests_and_counts() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.depth(), 0);
        b.scalar(5);
        b.repeat(3, |b| {
            assert_eq!(b.depth(), 1);
            b.repeat(2, |b| {
                assert_eq!(b.depth(), 2);
                b.scalar(1);
            });
        });
        let p = b.build();
        assert_eq!(p.op_count(), 4);
        assert_eq!(p.meta().max_loop_depth, 2);
    }

    #[test]
    fn empty_program() {
        assert_eq!(Program::empty().op_count(), 0);
        assert_eq!(Program::empty().meta(), ProgramMeta::default());
    }

    #[test]
    fn meta_counts_match_a_hand_walk() {
        let mut b = ProgramBuilder::new();
        b.scalar(1);
        b.repeat(2, |b| {
            b.scalar(1);
            b.repeat(3, |b| {
                b.scalar(1);
            });
        });
        b.repeat(4, |_| {});
        let p = b.build();
        // scalar + repeat(scalar + repeat(scalar)) + empty repeat
        assert_eq!(p.meta().ops, 6);
        assert_eq!(p.meta().max_loop_depth, 2);
    }

    #[test]
    #[should_panic(expected = "chunk must be nonzero")]
    fn zero_chunk_rejected() {
        let mut b = ProgramBuilder::new();
        b.self_sched(CounterId(0), 10, 0, |_| {});
    }

    #[test]
    fn from_u64_address() {
        let a: AddressExpr = 7u64.into();
        assert_eq!(a.eval(&[]), 7);
    }
}

//! Virtual-memory modelling: per-cluster TLBs over a shared page table.
//!
//! Cedar runs a paged virtual memory system with 4 KB pages. The paper's
//! TRFD analysis found multicluster versions spending ~50 % of their time
//! in virtual-memory activity: each additional cluster takes TLB-miss
//! faults on pages whose PTE is already valid in global memory
//! \[MaEG92\]. The simulator models both levels: a per-cluster TLB of
//! bounded capacity ([`Tlb`]), and the machine-wide page table
//! ([`PageTable`]) that distinguishes a *TLB-miss fault* (PTE valid in
//! global memory — the dominant multicluster cost) from a *hard fault*
//! (first touch machine-wide, serviced by Xylem).

use std::collections::{HashMap, VecDeque};

use crate::ids::PageId;
use crate::snapshot::{SnapReader, SnapResult, SnapWriter};

/// Statistics for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    pub hits: u64,
    pub misses: u64,
}

/// The machine-wide page table: which pages have a valid PTE in global
/// memory (i.e. have been touched by any cluster since reset).
#[derive(Debug, Default)]
pub struct PageTable {
    valid: std::collections::HashSet<PageId>,
    hard_faults: u64,
    soft_faults: u64,
}

impl PageTable {
    /// A fresh, empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Record a TLB miss on `page`. Returns `true` when the PTE was
    /// already valid in global memory (a cheap TLB-miss fault); `false`
    /// on a first-touch hard fault, which also validates the PTE.
    pub fn miss(&mut self, page: PageId) -> bool {
        if self.valid.contains(&page) {
            self.soft_faults += 1;
            true
        } else {
            self.hard_faults += 1;
            self.valid.insert(page);
            false
        }
    }

    /// Hard (first-touch) faults serviced.
    pub fn hard_faults(&self) -> u64 {
        self.hard_faults
    }

    /// TLB-miss faults with a valid PTE — the multicluster TRFD cost.
    pub fn soft_faults(&self) -> u64 {
        self.soft_faults
    }

    /// Pages with valid PTEs.
    pub fn resident_pages(&self) -> usize {
        self.valid.len()
    }

    /// Clear all PTEs (between independent runs).
    pub fn reset(&mut self) {
        self.valid.clear();
        self.hard_faults = 0;
        self.soft_faults = 0;
    }

    /// Valid PTEs serialize in sorted page order so the snapshot bytes
    /// are deterministic (the set itself is hash-ordered).
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        let mut pages: Vec<u64> = self.valid.iter().map(|p| p.0).collect();
        pages.sort_unstable();
        w.seq(pages.iter(), |w, p| w.u64(*p));
        w.u64(self.hard_faults);
        w.u64(self.soft_faults);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.valid = r.seq(|r| Ok(PageId(r.u64()?)))?.into_iter().collect();
        self.hard_faults = r.u64()?;
        self.soft_faults = r.u64()?;
        Ok(())
    }
}

/// A per-cluster TLB with FIFO replacement.
#[derive(Debug)]
pub struct Tlb {
    capacity: usize,
    entries: HashMap<PageId, ()>,
    order: VecDeque<PageId>,
    stats: TlbStats,
}

impl Tlb {
    /// A TLB holding `capacity` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: TlbStats::default(),
        }
    }

    /// Touch `page`: returns `true` on a hit; on a miss, installs the page
    /// (evicting FIFO) and returns `false`.
    pub fn touch(&mut self, page: PageId) -> bool {
        if self.entries.contains_key(&page) {
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        self.entries.insert(page, ());
        self.order.push_back(page);
        false
    }

    /// Statistics so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Drop all entries (e.g. at a context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// The FIFO order is the whole replacement state; the entry map is
    /// rebuilt from it on restore.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.order.iter(), |w, p| w.u64(p.0));
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
    }

    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.order = r.seq(|r| Ok(PageId(r.u64()?)))?.into_iter().collect();
        self.entries = self.order.iter().map(|&p| (p, ())).collect();
        self.stats = TlbStats {
            hits: r.u64()?,
            misses: r.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_table_distinguishes_hard_and_soft_faults() {
        let mut pt = PageTable::new();
        assert!(!pt.miss(PageId(1)), "first touch is a hard fault");
        assert!(pt.miss(PageId(1)), "second cluster's miss finds the PTE");
        assert_eq!(pt.hard_faults(), 1);
        assert_eq!(pt.soft_faults(), 1);
        assert_eq!(pt.resident_pages(), 1);
        pt.reset();
        assert_eq!(pt.resident_pages(), 0);
        assert!(!pt.miss(PageId(1)));
    }

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4);
        assert!(!t.touch(PageId(1)));
        assert!(t.touch(PageId(1)));
        assert_eq!(t.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn fifo_eviction() {
        let mut t = Tlb::new(2);
        t.touch(PageId(1));
        t.touch(PageId(2));
        t.touch(PageId(3)); // evicts 1
        assert!(!t.touch(PageId(1)));
        assert!(t.touch(PageId(3)));
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(2);
        t.touch(PageId(1));
        t.flush();
        assert!(!t.touch(PageId(1)));
    }
}

//! Snapshot encodings for the network packet vocabulary.
//!
//! Packets are the one datatype that crosses every subsystem boundary
//! (network slabs, module queues, CE reply latches, retry controllers),
//! so their encoding lives here once instead of per subsystem. Enum
//! discriminants are explicit byte values — the wire format must not
//! depend on Rust enum layout.

use crate::ids::CeId;
use crate::memory::sync::{Rel, SyncInstr, SyncOpKind};
use crate::network::packet::{MemReply, MemRequest, Packet, Payload, RequestKind, Stream};

use super::{SnapReader, SnapResult, SnapWriter};

fn put_stream(w: &mut SnapWriter, s: Stream) {
    match s {
        Stream::Direct { elem } => {
            w.u8(0);
            w.u32(elem);
        }
        Stream::Prefetch { elem, fire_seq } => {
            w.u8(1);
            w.u32(elem);
            w.u64(fire_seq);
        }
        Stream::Scalar => w.u8(2),
        Stream::Sync => w.u8(3),
        Stream::WriteAck => w.u8(4),
    }
}

fn get_stream(r: &mut SnapReader) -> SnapResult<Stream> {
    Ok(match r.u8()? {
        0 => Stream::Direct { elem: r.u32()? },
        1 => Stream::Prefetch {
            elem: r.u32()?,
            fire_seq: r.u64()?,
        },
        2 => Stream::Scalar,
        3 => Stream::Sync,
        4 => Stream::WriteAck,
        b => return Err(r.err_invalid("stream", b)),
    })
}

fn put_rel(w: &mut SnapWriter, rel: Rel) {
    w.u8(match rel {
        Rel::Eq => 0,
        Rel::Ne => 1,
        Rel::Lt => 2,
        Rel::Le => 3,
        Rel::Gt => 4,
        Rel::Ge => 5,
    });
}

fn get_rel(r: &mut SnapReader) -> SnapResult<Rel> {
    Ok(match r.u8()? {
        0 => Rel::Eq,
        1 => Rel::Ne,
        2 => Rel::Lt,
        3 => Rel::Le,
        4 => Rel::Gt,
        5 => Rel::Ge,
        b => return Err(r.err_invalid("rel", b)),
    })
}

pub(crate) fn put_sync_instr(w: &mut SnapWriter, si: SyncInstr) {
    w.opt(si.test.as_ref(), |w, (rel, operand)| {
        put_rel(w, *rel);
        w.i32(*operand);
    });
    let (d, v) = match si.op {
        SyncOpKind::Read => (0u8, 0i32),
        SyncOpKind::Write(v) => (1, v),
        SyncOpKind::Add(v) => (2, v),
        SyncOpKind::Sub(v) => (3, v),
        SyncOpKind::And(v) => (4, v),
        SyncOpKind::Or(v) => (5, v),
    };
    w.u8(d);
    w.i32(v);
}

pub(crate) fn get_sync_instr(r: &mut SnapReader) -> SnapResult<SyncInstr> {
    let test = r.opt(|r| Ok((get_rel(r)?, r.i32()?)))?;
    let d = r.u8()?;
    let v = r.i32()?;
    let op = match d {
        0 => SyncOpKind::Read,
        1 => SyncOpKind::Write(v),
        2 => SyncOpKind::Add(v),
        3 => SyncOpKind::Sub(v),
        4 => SyncOpKind::And(v),
        5 => SyncOpKind::Or(v),
        b => return Err(r.err_invalid("sync op", b)),
    };
    Ok(SyncInstr { test, op })
}

pub(crate) fn put_request(w: &mut SnapWriter, req: &MemRequest) {
    w.usize(req.ce.0);
    match req.kind {
        RequestKind::Read => w.u8(0),
        RequestKind::Write => w.u8(1),
        RequestKind::Sync(si) => {
            w.u8(2);
            put_sync_instr(w, si);
        }
    }
    w.u64(req.addr);
    put_stream(w, req.stream);
    w.cycle(req.issued);
    w.u64(req.seq);
    w.bool(req.nacked);
    w.u64(req.trace);
}

pub(crate) fn get_request(r: &mut SnapReader) -> SnapResult<MemRequest> {
    let ce = CeId(r.usize()?);
    let kind = match r.u8()? {
        0 => RequestKind::Read,
        1 => RequestKind::Write,
        2 => RequestKind::Sync(get_sync_instr(r)?),
        b => return Err(r.err_invalid("request kind", b)),
    };
    Ok(MemRequest {
        ce,
        kind,
        addr: r.u64()?,
        stream: get_stream(r)?,
        issued: r.cycle()?,
        seq: r.u64()?,
        nacked: r.bool()?,
        trace: r.u64()?,
    })
}

pub(crate) fn put_reply(w: &mut SnapWriter, rep: &MemReply) {
    w.usize(rep.ce.0);
    put_stream(w, rep.stream);
    w.u64(rep.addr);
    w.i64(rep.value);
    w.cycle(rep.req_issued);
    w.u64(rep.seq);
    w.bool(rep.nack);
    w.u64(rep.trace);
}

pub(crate) fn get_reply(r: &mut SnapReader) -> SnapResult<MemReply> {
    Ok(MemReply {
        ce: CeId(r.usize()?),
        stream: get_stream(r)?,
        addr: r.u64()?,
        value: r.i64()?,
        req_issued: r.cycle()?,
        seq: r.u64()?,
        nack: r.bool()?,
        trace: r.u64()?,
    })
}

pub(crate) fn put_packet(w: &mut SnapWriter, p: &Packet) {
    w.usize(p.dst);
    w.u8(p.words);
    match &p.payload {
        Payload::Request(req) => {
            w.u8(0);
            put_request(w, req);
        }
        Payload::Reply(rep) => {
            w.u8(1);
            put_reply(w, rep);
        }
    }
}

pub(crate) fn get_packet(r: &mut SnapReader) -> SnapResult<Packet> {
    let dst = r.usize()?;
    let words = r.u8()?;
    let payload = match r.u8()? {
        0 => Payload::Request(get_request(r)?),
        1 => Payload::Reply(get_reply(r)?),
        b => return Err(r.err_invalid("payload", b)),
    };
    Ok(Packet {
        dst,
        words,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycle;

    #[test]
    fn packet_round_trips() {
        let packets = [
            Packet::read_request(
                3,
                MemRequest {
                    ce: CeId(7),
                    kind: RequestKind::Sync(SyncInstr::test_ge_read(5)),
                    addr: 0xDEAD_BEEF,
                    stream: Stream::Prefetch {
                        elem: 9,
                        fire_seq: 1234,
                    },
                    issued: Cycle(42),
                    seq: 17,
                    nacked: true,
                    trace: 99,
                },
            ),
            Packet::reply(
                1,
                MemReply {
                    ce: CeId(1),
                    stream: Stream::Scalar,
                    addr: 8,
                    value: -3,
                    req_issued: Cycle(2),
                    seq: 0,
                    nack: false,
                    trace: 0,
                },
            ),
        ];
        for p in &packets {
            let mut w = SnapWriter::new();
            put_packet(&mut w, p);
            let payload = w.into_payload();
            let mut r = SnapReader::new(&payload);
            assert_eq!(&get_packet(&mut r).unwrap(), p);
            assert!(r.exhausted());
        }
    }
}

//! Deterministic machine checkpoint/restore.
//!
//! A snapshot is a versioned, self-describing binary serialization of the
//! complete mutable machine state — every queue, ring, lock, RNG counter
//! and statistic that the tick loop can touch — taken mid-run and
//! restorable onto a freshly constructed machine with the same
//! configuration and programs. The determinism work (bit-identical
//! results across threads × fast-forward × flow path × lowering × faults
//! × tracing × chunking) extends to restored runs: a run killed at an
//! arbitrary cycle and resumed from its last checkpoint finishes with the
//! same fingerprint, memory digest, stats tree and report as the
//! uninterrupted run. `tests/snapshot.rs` is the proof harness.
//!
//! ## Wire format
//!
//! ```text
//! magic   [8]  b"CEDARSNP"
//! version [4]  little-endian u32 (SNAPSHOT_VERSION)
//! length  [8]  little-endian u64 payload byte count
//! check   [8]  little-endian u64 FNV-1a over the payload
//! payload [length] tagged sections, one per subsystem
//! ```
//!
//! Everything after the header is written through [`SnapWriter`] — a
//! hand-rolled little-endian encoder (the workspace is std-only; no
//! serde). Each subsystem brackets its state with a 4-byte section tag so
//! a reader that desynchronizes fails with a *named* section error
//! instead of silently misinterpreting bytes. Torn or bit-flipped files
//! fail the length or checksum test in [`read_payload`] before any field
//! is decoded; every decode error surfaces as
//! [`MachineError::Snapshot`], never a panic.
//!
//! What is deliberately *not* captured: configuration-derived immutable
//! tables (network routing/shuffle tables, stat-key formatting caches,
//! lowered program streams), the loaded programs themselves (the caller
//! re-loads them — experiment drivers are deterministic, so the programs
//! are identical), and the host-side wall-clock profiler (it measures
//! the host, not the machine). See DESIGN.md §10.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::error::MachineError;

mod machine;
mod wire;

pub(crate) use machine::{save_payload, CkptCtl, RunSnap, SaveCtx};
pub(crate) use wire::{get_packet, get_request, put_packet, put_request};

/// Format magic: identifies a Cedar machine snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CEDARSNP";

/// Current snapshot format version. Bumped on any layout change; a
/// mismatch is a structured restore error, never a misparse.
pub const SNAPSHOT_VERSION: u32 = 1;

/// 64-bit FNV-1a over `bytes` — the header checksum. Not cryptographic;
/// it exists to catch torn writes and bit rot, not adversaries.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A snapshot decode failure: what went wrong, usually naming the
/// section. Converts into [`MachineError::Snapshot`].
#[derive(Debug)]
pub(crate) struct SnapError(pub String);

impl From<SnapError> for MachineError {
    fn from(e: SnapError) -> MachineError {
        MachineError::Snapshot(e.0)
    }
}

pub(crate) type SnapResult<T> = std::result::Result<T, SnapError>;

/// Little-endian binary encoder for snapshot payloads.
#[derive(Debug, Default)]
pub(crate) struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Open a subsystem section. Tags make desync failures nameable.
    pub fn tag(&mut self, t: &[u8; 4]) {
        self.buf.extend_from_slice(t);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn cycle(&mut self, v: crate::time::Cycle) {
        self.u64(v.0);
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `Some`/`None` prefix byte followed by the value when present.
    pub fn opt<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut SnapWriter, &T)) {
        match v {
            Some(v) => {
                self.bool(true);
                f(self, v);
            }
            None => self.bool(false),
        }
    }

    /// Length-prefixed sequence.
    pub fn seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut SnapWriter, T),
    ) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }
}

/// Little-endian binary decoder; every getter is bounds-checked and
/// returns a [`SnapError`] instead of panicking on truncated input.
#[derive(Debug)]
pub(crate) struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Last section tag opened, for error messages.
    section: [u8; 4],
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader {
            buf,
            pos: 0,
            section: *b"hdr ",
        }
    }

    /// An "invalid discriminant" decode error for enum encodings.
    pub fn err_invalid(&self, what: &str, byte: u8) -> SnapError {
        self.err(&format!("invalid {what} discriminant {byte}"))
    }

    /// A "snapshot disagrees with this machine's configuration" error —
    /// decoded fine, but cannot be applied here.
    pub fn err_mismatch(&self, what: &str) -> SnapError {
        self.err(what)
    }

    fn err(&self, what: &str) -> SnapError {
        SnapError(format!(
            "snapshot section `{}` at byte {}: {what}",
            String::from_utf8_lossy(&self.section),
            self.pos,
        ))
    }

    /// True when every payload byte has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Check and consume a section tag.
    pub fn tag(&mut self, t: &[u8; 4]) -> SnapResult<()> {
        let got = self.take(4)?;
        if got != t {
            return Err(SnapError(format!(
                "snapshot at byte {}: expected section `{}`, found `{}`",
                self.pos - 4,
                String::from_utf8_lossy(t),
                String::from_utf8_lossy(got),
            )));
        }
        self.section = *t;
        Ok(())
    }

    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(&format!("invalid bool byte {b}"))),
        }
    }

    pub fn u16(&mut self) -> SnapResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> SnapResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> SnapResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> SnapResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err("count overflows usize"))
    }

    /// A length that is about to size an allocation: additionally bounded
    /// by the bytes remaining, so a corrupted count cannot trigger a
    /// multi-gigabyte `Vec::with_capacity` before the decode fails.
    pub fn len(&mut self) -> SnapResult<usize> {
        let v = self.usize()?;
        if v > self.buf.len().saturating_sub(self.pos).saturating_add(1) * 64 {
            return Err(self.err(&format!("implausible element count {v}")));
        }
        Ok(v)
    }

    pub fn cycle(&mut self) -> SnapResult<crate::time::Cycle> {
        Ok(crate::time::Cycle(self.u64()?))
    }

    pub fn str(&mut self) -> SnapResult<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid utf-8 string"))
    }

    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut SnapReader<'a>) -> SnapResult<T>,
    ) -> SnapResult<Option<T>> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut SnapReader<'a>) -> SnapResult<T>,
    ) -> SnapResult<Vec<T>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Decode a fixed-length sequence in place, checking the stored count
    /// against the structural count the configuration implies.
    pub fn seq_exact(
        &mut self,
        expect: usize,
        mut f: impl FnMut(&mut SnapReader<'a>, usize) -> SnapResult<()>,
    ) -> SnapResult<()> {
        let n = self.len()?;
        if n != expect {
            return Err(self.err(&format!("expected {expect} elements, snapshot holds {n}")));
        }
        for i in 0..expect {
            f(self, i)?;
        }
        Ok(())
    }
}

/// Frame `payload` with the snapshot header (magic, version, length,
/// FNV-1a checksum).
pub(crate) fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate the header of a complete snapshot file image and return the
/// payload slice. A torn file (truncated payload), a foreign file (bad
/// magic), a future format (version mismatch) and a corrupted body
/// (checksum mismatch) are each rejected with a distinct
/// [`MachineError::Snapshot`] message.
pub(crate) fn read_payload(image: &[u8]) -> Result<&[u8], MachineError> {
    let fail = |m: String| Err(MachineError::Snapshot(m));
    if image.len() < 28 {
        return fail(format!(
            "file too short for a snapshot header ({} bytes)",
            image.len()
        ));
    }
    if image[..8] != SNAPSHOT_MAGIC {
        return fail("bad magic: not a Cedar snapshot".to_string());
    }
    let version = u32::from_le_bytes(image[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return fail(format!(
            "format version {version} (this build reads version {SNAPSHOT_VERSION})"
        ));
    }
    let len = u64::from_le_bytes(image[12..20].try_into().unwrap());
    let check = u64::from_le_bytes(image[20..28].try_into().unwrap());
    let body = &image[28..];
    if len != body.len() as u64 {
        return fail(format!(
            "torn file: header promises {len} payload bytes, file holds {}",
            body.len()
        ));
    }
    if fnv1a(body) != check {
        return fail("payload checksum mismatch (corrupted snapshot)".to_string());
    }
    Ok(body)
}

/// Write a framed snapshot image to `path` atomically: the bytes go to a
/// sibling temporary file which is fsynced and then renamed over the
/// target, so a crash mid-write leaves either the previous snapshot or
/// none — never a torn one. (And if a torn file appears anyway — e.g. a
/// dying filesystem — the header checksum catches it at restore.)
pub fn write_snapshot_file(path: &Path, image: &[u8]) -> Result<(), MachineError> {
    let io_err = |stage: &str, e: std::io::Error| {
        MachineError::Snapshot(format!("{stage} {}: {e}", path.display()))
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
    f.write_all(image).map_err(|e| io_err("write", e))?;
    f.sync_all().map_err(|e| io_err("sync", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.tag(b"TEST");
        w.u8(7);
        w.bool(true);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i32(-5);
        w.i64(-6);
        w.str("hello");
        w.opt(Some(&3u64), |w, v| w.u64(*v));
        w.opt::<u64>(None, |w, v| w.u64(*v));
        w.seq([1u32, 2, 3].iter(), |w, v| w.u32(*v));
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        r.tag(b"TEST").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.i64().unwrap(), -6);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(3));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u32()).unwrap(), vec![1, 2, 3]);
        assert!(r.exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(42);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn wrong_tag_names_both_sections() {
        let mut w = SnapWriter::new();
        w.tag(b"AAAA");
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        let e = r.tag(b"BBBB").unwrap_err();
        assert!(e.0.contains("BBBB") && e.0.contains("AAAA"), "{}", e.0);
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let payload = b"some machine state".to_vec();
        let image = frame_payload(&payload);
        assert_eq!(read_payload(&image).unwrap(), &payload[..]);

        // Torn: drop trailing bytes.
        assert!(read_payload(&image[..image.len() - 3]).is_err());
        // Foreign file.
        assert!(read_payload(b"not a snapshot at all......").is_err());
        // Future version.
        let mut future = image.clone();
        future[8] = SNAPSHOT_VERSION as u8 + 1;
        let e = read_payload(&future).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
        // Flip one payload bit: checksum mismatch.
        let mut flipped = image.clone();
        *flipped.last_mut().unwrap() ^= 0x10;
        let e = read_payload(&flipped).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("cedar_snap_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckpt");
        let image = frame_payload(b"abc");
        write_snapshot_file(&path, &image).unwrap();
        let back = std::fs::read(&path).unwrap();
        assert_eq!(read_payload(&back).unwrap(), b"abc");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Machine-level snapshot composition: the `MACH` section (run context,
//! allocation tables, monitoring state) followed by every subsystem's
//! section in a fixed order — forward omega, reverse omega, global
//! memory, per-cluster cache/bus/TLB, fault schedule, CE engines.
//!
//! The save side is a free function over *iterators* of clusters and
//! engines rather than a `&Machine` method: mid-run the parallel engine
//! holds its clusters and engines inside per-worker shards, and the
//! coordinator checkpoints at a chunk-exchange boundary by walking the
//! shard guards in shard order (shards partition the clusters
//! contiguously, so that is exactly the serial engine's order — the
//! payload bytes are identical to what the serial loop would write at
//! the same cycle). The load side always runs on a whole, reassembled
//! machine, so it is a `&mut Machine` method.

use std::path::Path;

use super::{frame_payload, read_payload, write_snapshot_file, SnapReader, SnapResult, SnapWriter};
use crate::ce::CeEngine;
use crate::error::{MachineError, Result};
use crate::fault::FaultSchedule;
use crate::ids::{CeId, ClusterId};
use crate::lower::LowerMeta;
use crate::machine::{Cluster, Machine, Watchdog};
use crate::memory::global::GlobalMemory;
use crate::monitor::{EventTracer, Histogrammer};
use crate::network::Omega;
use crate::program::Program;
use crate::sched::{BarrierDef, BarrierScope, CounterDef};
use crate::stats::{MachineStats, UtilizationTimeline};
use crate::time::Cycle;
use crate::trace::TraceStore;
use crate::vm::PageTable;

/// The run-loop context captured alongside the machine state when a
/// checkpoint is taken mid-run: everything `Machine::resume` needs to
/// re-enter the loop exactly where the killed run left it.
pub(crate) struct RunSnap<'a> {
    /// Cycle the interrupted run started at.
    pub start: Cycle,
    /// The interrupted run's cycle budget (resume keeps it).
    pub limit: u64,
    /// Forward-progress watchdog state, so restored watchdog decisions
    /// land on exactly the cycles the uninterrupted run inspects.
    pub wd_next_check: Cycle,
    pub wd_sync_stuck: u32,
    /// The registry baseline taken at run start; the resumed run's report
    /// deltas against this, not against the restored machine's counters.
    pub stats_start: &'a MachineStats,
}

/// Auto-checkpoint control threaded through the run loops when
/// [`crate::config::MachineConfig::checkpoint_every`] is set.
pub(crate) struct CkptCtl<'a> {
    pub every: u64,
    pub path: std::path::PathBuf,
    /// Earliest cycle at which the next checkpoint is due. The loops only
    /// test this at their natural boundaries (post-tick in the serial
    /// engine, post-exchange in the parallel engine), so a snapshot is
    /// never taken mid-round.
    pub next: Cycle,
    pub start: Cycle,
    pub limit: u64,
    pub stats_start: &'a MachineStats,
}

/// The run context decoded from a snapshot, handed back to
/// [`Machine::resume`] to re-enter the run loop.
pub(crate) struct ResumeCtx {
    pub start: Cycle,
    /// The interrupted run's cycle budget, kept as provenance. `resume`
    /// runs under the caller-supplied budget instead: a crashed run may
    /// have died *because* it hit its limit, and replaying that limit
    /// would kill the resumed run on its first cycle.
    pub limit: u64,
    pub watchdog: Watchdog,
    pub stats_start: MachineStats,
}

/// Borrowed view of everything outside the clusters and engines that a
/// machine snapshot captures. The serial engine builds it from `&Machine`
/// ([`Machine::save_ctx`]); the parallel coordinator builds it from its
/// destructured field borrows mid-scope.
pub(crate) struct SaveCtx<'a> {
    pub cfg: &'a crate::config::MachineConfig,
    pub lowered: bool,
    pub now: Cycle,
    pub forward: &'a Omega,
    pub reverse: &'a Omega,
    pub gmem: &'a GlobalMemory,
    pub page_table: &'a PageTable,
    pub tracer: &'a EventTracer,
    pub latency_histogram: &'a Histogrammer,
    pub timeline: &'a UtilizationTimeline,
    pub fastfwd_skipped: u64,
    pub fault_sched: Option<&'a FaultSchedule>,
    pub trace_store: &'a TraceStore,
    pub counters: &'a [CounterDef],
    pub barriers: &'a [BarrierDef],
    pub next_sync_slot: u64,
    pub next_bus_barrier_slot: usize,
    pub program_meta: Option<LowerMeta>,
    pub run: Option<RunSnap<'a>>,
}

fn put_counter(w: &mut SnapWriter, c: &CounterDef) {
    match *c {
        CounterDef::Cluster { cluster, slot } => {
            w.u8(0);
            w.usize(cluster.0);
            w.usize(slot);
        }
        CounterDef::Global { base_addr } => {
            w.u8(1);
            w.u64(base_addr);
        }
        CounterDef::GlobalShared { base_addr } => {
            w.u8(2);
            w.u64(base_addr);
        }
    }
}

fn get_counter(r: &mut SnapReader) -> SnapResult<CounterDef> {
    Ok(match r.u8()? {
        0 => CounterDef::Cluster {
            cluster: ClusterId(r.usize()?),
            slot: r.usize()?,
        },
        1 => CounterDef::Global {
            base_addr: r.u64()?,
        },
        2 => CounterDef::GlobalShared {
            base_addr: r.u64()?,
        },
        b => return Err(r.err_invalid("counter definition", b)),
    })
}

fn put_barrier(w: &mut SnapWriter, b: &BarrierDef) {
    match b.scope {
        BarrierScope::Cluster(c) => {
            w.u8(0);
            w.usize(c.0);
        }
        BarrierScope::Global => w.u8(1),
    }
    w.u32(b.expected);
    w.u64(b.base_addr);
}

fn get_barrier(r: &mut SnapReader) -> SnapResult<BarrierDef> {
    let scope = match r.u8()? {
        0 => BarrierScope::Cluster(ClusterId(r.usize()?)),
        1 => BarrierScope::Global,
        b => return Err(r.err_invalid("barrier scope", b)),
    };
    Ok(BarrierDef {
        scope,
        expected: r.u32()?,
        base_addr: r.u64()?,
    })
}

/// Serialize the complete machine (and, mid-run, the run context) into an
/// unframed payload. `clusters` and `engines` must yield the machine's
/// clusters and engine slots in id order — `cfg.clusters` and
/// `cfg.total_ces()` entries respectively.
pub(crate) fn save_payload<'a>(
    ctx: &SaveCtx<'_>,
    clusters: impl Iterator<Item = &'a Cluster>,
    engines: impl Iterator<Item = &'a Option<CeEngine>>,
) -> Vec<u8> {
    let cfg = ctx.cfg;
    let mut w = SnapWriter::new();
    w.tag(b"MACH");
    // Structural echo: enough of the configuration to reject a snapshot
    // taken on a differently shaped machine with a named error before any
    // per-section count check trips.
    w.u32(cfg.clusters as u32);
    w.u32(cfg.ces_per_cluster as u32);
    w.u32(cfg.network_ports() as u32);
    w.u32(cfg.global_memory.modules as u32);
    w.bool(cfg.vm.enabled);
    w.bool(cfg.faults.as_ref().is_some_and(|p| p.enabled()));
    w.bool(cfg.trace.as_ref().is_some_and(|p| p.enabled()));
    w.bool(ctx.lowered);
    w.cycle(ctx.now);
    w.u64(ctx.fastfwd_skipped);
    w.u64(ctx.next_sync_slot);
    w.usize(ctx.next_bus_barrier_slot);
    w.seq(ctx.counters.iter(), put_counter);
    w.seq(ctx.barriers.iter(), put_barrier);
    w.opt(ctx.program_meta.as_ref(), |w, m| {
        w.usize(m.source_ops);
        w.usize(m.uops);
        w.usize(m.fused_ops);
        w.usize(m.max_loop_depth);
    });
    ctx.latency_histogram.save_state(&mut w);
    ctx.timeline.save_state(&mut w);
    ctx.tracer.save_state(&mut w);
    ctx.page_table.save_state(&mut w);
    ctx.trace_store.save_state(&mut w);
    w.opt(ctx.run.as_ref(), |w, run| {
        w.cycle(run.start);
        w.u64(run.limit);
        w.cycle(run.wd_next_check);
        w.u32(run.wd_sync_stuck);
        run.stats_start.save_state(w);
    });
    ctx.forward.save_state(&mut w);
    ctx.reverse.save_state(&mut w);
    ctx.gmem.save_state(&mut w);
    let mut n_clusters = 0usize;
    for cl in clusters {
        cl.cache.save_state(&mut w);
        cl.ccbus.save_state(&mut w);
        cl.tlb.save_state(&mut w);
        n_clusters += 1;
    }
    debug_assert_eq!(n_clusters, cfg.clusters, "cluster iterator mismatch");
    w.opt(ctx.fault_sched, |w, fs| fs.save_state(w));
    let mut n_engines = 0usize;
    let mut ew = SnapWriter::new();
    for e in engines {
        ew.opt(e.as_ref(), |w, e| e.save_state(w));
        n_engines += 1;
    }
    debug_assert_eq!(n_engines, cfg.total_ces(), "engine iterator mismatch");
    w.usize(n_engines);
    let engine_bytes = ew.into_payload();
    let mut payload = w.into_payload();
    payload.extend_from_slice(&engine_bytes);
    payload
}

impl Machine {
    /// Build the borrowed snapshot view from a whole machine (the serial
    /// engine and the public between-runs entry points).
    pub(crate) fn save_ctx<'a>(&'a self, run: Option<RunSnap<'a>>) -> SaveCtx<'a> {
        SaveCtx {
            cfg: &self.cfg,
            lowered: self.lowered_enabled(),
            now: self.now,
            forward: &self.forward,
            reverse: &self.reverse,
            gmem: &self.gmem,
            page_table: &self.page_table,
            tracer: &self.tracer,
            latency_histogram: &self.latency_histogram,
            timeline: &self.timeline,
            fastfwd_skipped: self.fastfwd_skipped,
            fault_sched: self.fault_sched.as_ref(),
            trace_store: &self.trace_store,
            counters: &self.counters,
            barriers: &self.barriers,
            next_sync_slot: self.next_sync_slot,
            next_bus_barrier_slot: self.next_bus_barrier_slot,
            program_meta: self.program_meta,
            run,
        }
    }

    /// The framed snapshot image of this machine, mid-run.
    pub(crate) fn run_image(&self, ck: &CkptCtl<'_>, watchdog: &Watchdog) -> Vec<u8> {
        let run = RunSnap {
            start: ck.start,
            limit: ck.limit,
            wd_next_check: watchdog.next_check(),
            wd_sync_stuck: watchdog.sync_stuck,
            stats_start: ck.stats_start,
        };
        let ctx = self.save_ctx(Some(run));
        frame_payload(&save_payload(
            &ctx,
            self.clusters.iter(),
            self.engines.iter(),
        ))
    }

    /// Serialize the complete machine state to `w` as a versioned,
    /// checksummed snapshot image (see the module docs for the format).
    ///
    /// Taken between runs this archives the machine; the mid-run
    /// auto-checkpoint (see
    /// [`checkpoint_every`](crate::config::MachineConfig::checkpoint_every))
    /// additionally embeds the run context that [`Machine::resume`] needs.
    ///
    /// # Errors
    ///
    /// [`MachineError::Snapshot`] when writing to `w` fails.
    pub fn checkpoint<W: std::io::Write>(&self, w: &mut W) -> Result<()> {
        let ctx = self.save_ctx(None);
        let image = frame_payload(&save_payload(
            &ctx,
            self.clusters.iter(),
            self.engines.iter(),
        ));
        w.write_all(&image)
            .map_err(|e| MachineError::Snapshot(format!("write: {e}")))
    }

    /// [`Machine::checkpoint`] to a file, written atomically
    /// (temporary-file-and-rename, fsynced), so a crash mid-write never
    /// leaves a torn snapshot behind.
    ///
    /// # Errors
    ///
    /// [`MachineError::Snapshot`] on any I/O failure.
    pub fn checkpoint_to(&self, path: &Path) -> Result<()> {
        let ctx = self.save_ctx(None);
        let image = frame_payload(&save_payload(
            &ctx,
            self.clusters.iter(),
            self.engines.iter(),
        ));
        write_snapshot_file(path, &image)
    }

    /// Restore this machine's complete mutable state from a snapshot image
    /// read out of `r`. The machine must be built from the same
    /// configuration (and hold the same counter/barrier allocations and
    /// loaded programs) as the one that wrote the snapshot; any
    /// disagreement — as well as a torn, truncated, corrupted or
    /// future-versioned image — is a structured [`MachineError::Snapshot`],
    /// never a panic. To continue an interrupted *run*, use
    /// [`Machine::resume`], which also restores the run context.
    ///
    /// # Errors
    ///
    /// [`MachineError::Snapshot`] on any read, validation or decode
    /// failure. The machine may be partially overwritten when a decode
    /// fails mid-payload; restore onto a scratch machine when that
    /// matters.
    pub fn restore<R: std::io::Read>(&mut self, r: &mut R) -> Result<()> {
        let mut image = Vec::new();
        r.read_to_end(&mut image)
            .map_err(|e| MachineError::Snapshot(format!("read: {e}")))?;
        self.load_image(&image).map(|_| ())
    }

    /// Re-load `programs` exactly as the interrupted run did, restore the
    /// machine from `image` (which must hold a mid-run checkpoint written
    /// by the auto-checkpoint), and run to completion under `limit`
    /// cycles measured from the *original* run's start — exactly the
    /// budget semantics of an uninterrupted [`Machine::run`] with the
    /// same limit. The report, stats tree, memory digest and cycle count
    /// are bit-identical to the uninterrupted run's (`tests/snapshot.rs`
    /// is the proof harness).
    ///
    /// # Errors
    ///
    /// Everything [`Machine::run`] and [`Machine::restore`] can return,
    /// plus [`MachineError::Snapshot`] when the image holds no run
    /// context (it was written between runs, not by a checkpoint).
    pub fn resume(
        &mut self,
        programs: Vec<(CeId, Program)>,
        image: &[u8],
        limit: u64,
    ) -> Result<crate::machine::RunReport> {
        self.prepare_run(programs)?;
        let ctx = self.load_image(image)?.ok_or_else(|| {
            MachineError::Snapshot(
                "snapshot holds no run context to resume (written between runs?)".to_string(),
            )
        })?;
        let _interrupted_budget = ctx.limit;
        self.run_prepared(ctx.start, limit, ctx.stats_start, ctx.watchdog)
    }

    /// [`Machine::resume`] from a snapshot file.
    ///
    /// # Errors
    ///
    /// As [`Machine::resume`], plus [`MachineError::Snapshot`] when the
    /// file cannot be read.
    pub fn resume_from_file(
        &mut self,
        programs: Vec<(CeId, Program)>,
        path: &Path,
        limit: u64,
    ) -> Result<crate::machine::RunReport> {
        let image = std::fs::read(path)
            .map_err(|e| MachineError::Snapshot(format!("read {}: {e}", path.display())))?;
        let mut report = self.resume(programs, &image, limit)?;
        report.resumed_from = Some(path.to_path_buf());
        Ok(report)
    }

    /// Validate `image` and overwrite this machine's state from it,
    /// returning the embedded run context when the snapshot was taken
    /// mid-run.
    pub(crate) fn load_image(&mut self, image: &[u8]) -> Result<Option<ResumeCtx>> {
        let payload = read_payload(image)?;
        let mut r = SnapReader::new(payload);
        let ctx = self.load_payload(&mut r)?;
        Ok(ctx)
    }

    fn load_payload(&mut self, r: &mut SnapReader) -> Result<Option<ResumeCtx>> {
        r.tag(b"MACH")?;
        let cfg = &self.cfg;
        let checks: [(&str, u64, u64); 4] = [
            ("cluster count", u64::from(r.u32()?), cfg.clusters as u64),
            (
                "CEs per cluster",
                u64::from(r.u32()?),
                cfg.ces_per_cluster as u64,
            ),
            (
                "network port count",
                u64::from(r.u32()?),
                cfg.network_ports() as u64,
            ),
            (
                "memory module count",
                u64::from(r.u32()?),
                cfg.global_memory.modules as u64,
            ),
        ];
        for (what, snap, here) in checks {
            if snap != here {
                return Err(r
                    .err_mismatch(&format!("{what} {snap} (this machine has {here})"))
                    .into());
            }
        }
        let flags: [(&str, bool, bool); 4] = [
            ("VM modelling", r.bool()?, cfg.vm.enabled),
            (
                "fault injection",
                r.bool()?,
                cfg.faults.as_ref().is_some_and(|p| p.enabled()),
            ),
            (
                "journey tracing",
                r.bool()?,
                cfg.trace.as_ref().is_some_and(|p| p.enabled()),
            ),
            ("lowered execution", r.bool()?, self.lowered_enabled()),
        ];
        for (what, snap, here) in flags {
            if snap != here {
                return Err(r
                    .err_mismatch(&format!(
                        "{what} is {} in the snapshot but {} on this machine",
                        on_off(snap),
                        on_off(here),
                    ))
                    .into());
            }
        }
        self.now = r.cycle()?;
        self.fastfwd_skipped = r.u64()?;
        self.next_sync_slot = r.u64()?;
        self.next_bus_barrier_slot = r.usize()?;
        let counters = r.seq(get_counter).map_err(MachineError::from)?;
        if counters != self.counters {
            return Err(r
                .err_mismatch("allocated counters do not match the snapshot's")
                .into());
        }
        let barriers = r.seq(get_barrier).map_err(MachineError::from)?;
        if barriers != self.barriers {
            return Err(r
                .err_mismatch("allocated barriers do not match the snapshot's")
                .into());
        }
        self.program_meta = r
            .opt(|r| {
                Ok(LowerMeta {
                    source_ops: r.usize()?,
                    uops: r.usize()?,
                    fused_ops: r.usize()?,
                    max_loop_depth: r.usize()?,
                })
            })
            .map_err(MachineError::from)?;
        self.latency_histogram =
            std::sync::Arc::new(Histogrammer::decode(r).map_err(MachineError::from)?);
        self.timeline.load_state(r).map_err(MachineError::from)?;
        self.tracer.load_state(r).map_err(MachineError::from)?;
        self.page_table.load_state(r).map_err(MachineError::from)?;
        self.trace_store.load_state(r).map_err(MachineError::from)?;
        let run = r
            .opt(|r| {
                let start = r.cycle()?;
                let limit = r.u64()?;
                let wd_next = r.cycle()?;
                let wd_stuck = r.u32()?;
                let stats_start = MachineStats::decode(r)?;
                Ok(ResumeCtx {
                    start,
                    limit,
                    watchdog: Watchdog::from_state(wd_next, wd_stuck),
                    stats_start,
                })
            })
            .map_err(MachineError::from)?;
        self.forward.load_state(r).map_err(MachineError::from)?;
        self.reverse.load_state(r).map_err(MachineError::from)?;
        self.gmem.load_state(r).map_err(MachineError::from)?;
        for cl in &mut self.clusters {
            cl.cache.load_state(r).map_err(MachineError::from)?;
            cl.ccbus.load_state(r).map_err(MachineError::from)?;
            cl.tlb.load_state(r).map_err(MachineError::from)?;
        }
        let had_faults = r.bool().map_err(MachineError::from)?;
        match (had_faults, self.fault_sched.as_mut()) {
            (true, Some(fs)) => fs.load_state(r).map_err(MachineError::from)?,
            (false, None) => {}
            (snap, _) => {
                return Err(r
                    .err_mismatch(&format!(
                        "fault schedule is {} in the snapshot but {} on this machine",
                        on_off(snap),
                        on_off(!snap),
                    ))
                    .into());
            }
        }
        let n_engines = r.len().map_err(MachineError::from)?;
        if n_engines != self.engines.len() {
            return Err(r
                .err_mismatch(&format!(
                    "snapshot holds {n_engines} engine slots, this machine has {}",
                    self.engines.len()
                ))
                .into());
        }
        for i in 0..n_engines {
            let had = r.bool().map_err(MachineError::from)?;
            match (had, self.engines[i].as_mut()) {
                (true, Some(e)) => e.load_state(r).map_err(MachineError::from)?,
                (false, None) => {}
                (snap, _) => {
                    return Err(r
                        .err_mismatch(&format!(
                            "CE {i} {} a program in the snapshot but {} one here \
                             (resume must re-load the interrupted run's programs)",
                            if snap { "runs" } else { "does not run" },
                            if snap { "lacks" } else { "holds" },
                        ))
                        .into());
                }
            }
        }
        if !r.exhausted() {
            return Err(r
                .err_mismatch("trailing bytes after the last section")
                .into());
        }
        Ok(run)
    }
}

fn on_off(v: bool) -> &'static str {
    if v {
        "on"
    } else {
        "off"
    }
}

//! The deterministic parallel execution engine.
//!
//! The simulated Cedar is four largely independent Alliant clusters that
//! interact only through the omega networks, the global memory and the
//! concurrency control buses — the same decomposition the hardware
//! exploits. This engine exploits it in software *twice over*: the
//! cluster-local work (CE engines, prefetch units, cluster cache and
//! memory, CC bus) is sharded across `std::thread::scope` workers, and
//! the workers advance their clusters **several cycles per barrier
//! round** whenever the machine's conservative lookahead allows it,
//! instead of synchronizing every cycle.
//!
//! # Lookahead chunking
//!
//! A cluster can only be affected by another cluster through the shared
//! components: a reverse-network delivery is the *only* externally
//! driven input a CE ever sees mid-run. At the start of a round the
//! coordinator therefore derives a **horizon** `H` — a lower bound on
//! the number of upcoming cycles that are certainly delivery-free —
//! from the shared components' states (see DESIGN.md §9 for the
//! derivation). The network is double-clocked, so a packet whose tail
//! word has left its injector can cross *all* switch stages within one
//! cycle: the bounds are word- and service-limited, never
//! stage-limited. `H` is the minimum over the applicable bounds:
//!
//! * reverse network busy → `H = 0` (a delivery may land next cycle);
//! * a busy memory module → `H = gmem.next_event − t0` (a module's
//!   earliest visible action is a reply injection, and a 1-word
//!   write-ack delivers the cycle after it is injected);
//! * forward network busy → `H = service + 2` (module delivery next
//!   cycle, service pickup the cycle after, minimum service time, then
//!   the 1-word reply bound);
//! * always applicable → `H = service + 4` (a fresh CE request staged
//!   at `t0+1` needs an injector-drain cycle and a module-delivery
//!   cycle before the same service-and-reply path).
//!
//! The chunk length `L` is `H` clamped by every event the coordinator
//! must observe on its exact cycle: the utilization-timeline boundary,
//! the next fault-schedule transition, the watchdog's next inspection,
//! the cycle limit, the `CEDAR_CHUNK_CYCLES` cap, and — the subtle one —
//! per-port injector headroom (below). `L ≤ 1` degenerates to the
//! per-cycle barrier round, which is also the `CEDAR_CHUNK_CYCLES=1`
//! escape hatch.
//!
//! For a chunk, each worker runs its clusters `L` cycles back to back,
//! staging every injection with its cycle tag. The coordinator then
//! *replays* the shared components cycle by cycle — memory tick, reverse
//! tick (asserted delivery-free), forward tick, then the staged
//! injections and trace events for that cycle in (cluster, CE) order —
//! so the real networks and memory observe **exactly the serial
//! engine's call sequence** and every stat, stall charge, fault draw and
//! trace stamp lands where the serial loop would put it.
//!
//! # Determinism
//!
//! The engine is bit-for-bit equivalent to the single-threaded engine in
//! [`Machine::run`](crate::machine::Machine::run), not merely "equivalent
//! up to reordering". That follows from four facts:
//!
//! 1. **Cluster state is disjoint.** A CE only touches its own cluster's
//!    cache, TLB and CC bus, so shards never share mutable state.
//! 2. **Cross-cluster traffic is per-port.** A CE (and its prefetch unit)
//!    injects only at its own forward-network port, and acceptance
//!    depends only on that port's injector occupancy. Each staging port
//!    ([`PortStage`]) mirrors the occupancy with a shadow ring seeded
//!    from the real injector at the round start and drained one word per
//!    cycle — exactly the real injector's drain rate, which is
//!    guaranteed because the chunk is clamped to the port's stage-queue
//!    headroom (`queue_cap − occupancy`, plus one free cycle when the
//!    ring starts empty), so the real drain can never block mid-chunk.
//! 3. **Within a cycle, injections are invisible.** The serial tick moves
//!    network words *before* ticking CEs, so a packet injected during the
//!    CE phase is not observed by anything until the next cycle; applying
//!    it at the replay step instead of mid-phase changes nothing.
//! 4. **Chunks are delivery-free.** The horizon bound guarantees no
//!    reverse-network delivery falls inside a chunk (debug-asserted), so
//!    no cluster input is ever computed from stale shared state.
//!
//! Tracer events posted by CEs are buffered per shard with their cycle
//! tags and merged per replayed cycle in shard order — the serial
//! engine's exact post order, including capacity drops, which only the
//! machine-level tracer applies. The one model the barrier scheme cannot
//! reproduce is demand paging, where same-cycle faults from different
//! clusters race for the machine-wide page table; with
//! [`VmConfig::enabled`] (`crate::config::VmConfig::enabled`) set the
//! machine silently falls back to the serial engine.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::ce::{min_event, CeContext, CeEngine};
use crate::error::{ChunkedContext, MachineError, Result};
use crate::ids::CeId;
use crate::machine::{Cluster, Machine, Watchdog, STUCK_SYNC_CHECKS};
use crate::monitor::{EventTracer, Histogrammer};
use crate::network::omega::INJ_CAP;
use crate::network::packet::{Packet, Payload, Stream};
use crate::network::{InjectPort, NetSink};
use crate::sched::{BarrierDef, CounterDef};
use crate::stats::UtilSample;
use crate::time::Cycle;
use crate::trace::{profiled, region};
use crate::vm::PageTable;

/// A reusable sense-reversing barrier. `std::sync::Barrier` parks and
/// wakes through a mutex/condvar pair, which costs microseconds per wait;
/// at two waits per barrier round that would swamp the cluster work.
/// This one spins briefly and then yields, so it stays cheap both on
/// dedicated cores and on oversubscribed hosts.
struct SpinBarrier {
    members: usize,
    /// Spin iterations before falling back to `yield_now`. Zero when the
    /// host has fewer cores than barrier members: spinning there only
    /// burns the timeslice the straggler needs.
    max_spins: u32,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(members: usize) -> SpinBarrier {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        SpinBarrier {
            members,
            max_spins: if cores >= members { 128 } else { 0 },
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.members {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < self.max_spins {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Per-worker barrier-wait accounting: wall time spent waiting and the
/// number of waits, read into the host profiler after the run.
type SyncWait = (AtomicU64, AtomicU64); // (total_ns, waits)

/// Wait on `b`, charging the wait's wall time to `acc` when profiling.
#[inline]
fn timed_wait(b: &SpinBarrier, acc: Option<&SyncWait>) {
    match acc {
        Some((ns, waits)) => {
            let t0 = std::time::Instant::now();
            b.wait();
            ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            waits.fetch_add(1, Ordering::Relaxed);
        }
        None => b.wait(),
    }
}

/// A per-port staging buffer standing in for the forward network during
/// the sharded cluster phase. It mirrors the port's real injector with a
/// shadow ring of remaining word counts, so acceptance decisions over a
/// whole chunk match what the serial engine's `Omega::try_inject` would
/// have returned cycle by cycle, and records accepted packets with their
/// cycle tags for deterministic replay at the exchange.
struct PortStage {
    /// The global network port this stage fronts (the owning CE's port).
    port: usize,
    /// The real injector's packet capacity.
    cap: usize,
    /// Link forced down by the fault layer, frozen for the round (chunks
    /// are clamped to end before the next fault-schedule transition).
    down: bool,
    /// Injection attempts refused because the link is down; folded into
    /// the network's `link_blocked` at the exchange, exactly the stat
    /// (and the only state) the serial `try_inject` charges for these.
    blocked: u64,
    /// Shadow injector ring: remaining words of each queued packet, in
    /// drain order. Seeded from the real injector at the round start.
    ring: [u8; INJ_CAP],
    ring_len: usize,
    /// The worker-side cycle currently executing; tags staged packets.
    now: Cycle,
    /// Accepted packets in injection order, tagged with their cycle.
    staged: Vec<(Cycle, Packet)>,
    /// Replay cursor into `staged` (entries are cycle-ascending).
    replayed: usize,
}

impl PortStage {
    /// Start worker-side cycle `now`. On the chunked path (`drain`), the
    /// shadow ring first streams one word the way `Omega::inject_words`
    /// will during the replay of this cycle; the chunk clamp guarantees
    /// the real drain cannot block, so one word per cycle is exact. On
    /// the per-cycle path the real network already drained before the
    /// occupancy was frozen, so only the cycle tag advances.
    #[inline]
    fn begin_cycle(&mut self, now: Cycle, drain: bool) {
        self.now = now;
        if drain && self.ring_len > 0 {
            self.ring[0] -= 1;
            if self.ring[0] == 0 {
                self.ring.copy_within(1..self.ring_len, 0);
                self.ring_len -= 1;
            }
        }
    }
}

impl InjectPort for PortStage {
    fn try_inject(&mut self, port: usize, packet: Packet) -> bool {
        debug_assert_eq!(port, self.port, "CE injected at a foreign port");
        if self.down {
            // Serial order: the down check precedes the capacity check
            // and charges `link_blocked` without consuming fault-mix
            // draws or clearing stall state.
            self.blocked += 1;
            return false;
        }
        if self.ring_len >= self.cap {
            return false;
        }
        self.ring[self.ring_len] = packet.words;
        self.ring_len += 1;
        self.staged.push((self.now, packet));
        true
    }
}

/// One worker's slice of the machine: a contiguous run of clusters and
/// their engines, plus the staging state that decouples the shard from
/// everything shared.
struct Shard {
    first_cluster: usize,
    clusters: Vec<Cluster>,
    /// Engines of the shard's CEs, indexed by CE id minus the shard base.
    engines: Vec<Option<CeEngine>>,
    /// One staging buffer per engine slot (port = shard base + index).
    stages: Vec<PortStage>,
    /// Per-round event buffer, merged into the machine tracer in cycle
    /// then cluster order at the exchange. Unbounded: only the machine
    /// tracer applies capacity, so drops land exactly where the serial
    /// engine drops.
    events: EventTracer,
    /// Merge cursor into `events` (entries are cycle-ascending).
    events_cursor: usize,
    /// Scratch page table handed to `CeContext`. Never touched: the
    /// parallel engine only runs with VM modelling off.
    page_table: PageTable,
    /// First cycle at whose end every local engine was done, while that
    /// has stayed true since (doneness is monotone mid-run; the replay's
    /// completion check uses this to stop a chunk on the exact cycle the
    /// serial loop would).
    done_since: Option<Cycle>,
}

impl Shard {
    /// The cluster phase of one cycle, mirroring the serial engine's
    /// order: every CC bus first, then the engines in CE-id order.
    /// `drain` streams the shadow injector rings (chunked rounds only).
    fn tick(&mut self, now: Cycle, drain: bool, counters: &[CounterDef], barriers: &[BarrierDef]) {
        let Shard {
            first_cluster,
            clusters,
            engines,
            stages,
            events,
            page_table,
            done_since,
            ..
        } = self;
        for st in stages.iter_mut() {
            st.begin_cycle(now, drain);
        }
        for cl in clusters.iter_mut() {
            cl.ccbus.tick(now);
        }
        let mut all_done = true;
        for (i, e) in engines.iter_mut().enumerate() {
            let Some(e) = e else { continue };
            // Lowered mode: parked in a fused timed stall (or finished) —
            // one attribution increment, no context plumbing.
            let cluster = &mut clusters[e.cluster().0 - *first_cluster];
            if e.try_quick_tick(now, &cluster.ccbus) {
                all_done &= e.is_done();
                continue;
            }
            let mut ctx = CeContext {
                forward: &mut stages[i],
                cache: &mut cluster.cache,
                ccbus: &mut cluster.ccbus,
                tlb: &mut cluster.tlb,
                page_table,
                counters,
                barriers,
                tracer: events,
            };
            e.tick(now, &mut ctx);
            all_done &= e.is_done();
        }
        *done_since = if all_done {
            done_since.or(Some(now))
        } else {
            None
        };
    }
}

/// Routes reverse-network deliveries into the engines now living inside
/// shards — the parallel twin of the serial engine's `CeSink`, running on
/// the coordinator between barriers (the per-delivery lock is never
/// contended there).
struct ShardCeSink<'a> {
    shards: &'a [Mutex<Shard>],
    /// Shard index owning each cluster.
    cluster_of: &'a [usize],
    ces_per_cluster: usize,
    histogram: &'a mut Arc<Histogrammer>,
    now: Cycle,
}

impl NetSink for ShardCeSink<'_> {
    fn try_begin(&mut self, _port: usize) -> bool {
        true
    }

    fn deliver(&mut self, port: usize, packet: Packet) {
        if let Payload::Reply(r) = packet.payload {
            if matches!(r.stream, Stream::Prefetch { .. }) {
                Arc::make_mut(self.histogram)
                    .record(self.now.saturating_since(r.req_issued) as usize);
            }
            let Some(&shard) = self.cluster_of.get(port / self.ces_per_cluster) else {
                return;
            };
            let mut sh = self.shards[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let idx = port - sh.first_cluster * self.ces_per_cluster;
            if let Some(Some(e)) = sh.engines.get_mut(idx) {
                e.receive(self.now, r);
            }
        } else {
            debug_assert!(false, "request packet delivered to CE side");
        }
    }
}

/// Fill `out` with cumulative per-CE utilization samples read out of the
/// shards, in CE-id order (shards partition the CEs contiguously). The
/// parallel twin of [`crate::machine::fill_util_samples`].
fn fill_shard_samples(shards: &[Mutex<Shard>], out: &mut Vec<UtilSample>) {
    out.clear();
    for sm in shards {
        let sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        out.extend(sh.engines.iter().map(|e| match e {
            Some(e) => {
                let s = e.stats();
                UtilSample {
                    busy: s.busy,
                    stall_mem: s.stall_mem,
                    stall_sync: s.stall_sync,
                    idle: s.idle,
                }
            }
            None => UtilSample::default(),
        }));
    }
}

/// The shard half of `Machine::next_machine_event`: fold the CC buses and
/// engines living inside the shards. Also reports whether every CE is
/// done, so the caller can tell completion (no skip needed — the loop
/// head breaks) from deadlock (jump past the cycle limit).
///
/// The `done` flag is only meaningful when the returned event is `None`;
/// the fold bails out early once the next cycle is known to be live.
fn next_shard_event(
    shards: &[Mutex<Shard>],
    now: Cycle,
    counters: &[CounterDef],
) -> (Option<Cycle>, bool) {
    let soon = now + 1;
    let mut best: Option<Cycle> = None;
    let mut all_done = true;
    for sm in shards {
        let sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Direct doneness: `done_since` can lag an engine that finished
        // during a fast-forward skip.
        all_done &= sh.engines.iter().flatten().all(CeEngine::is_done);
        for cl in &sh.clusters {
            best = min_event(best, cl.ccbus.next_event(now));
            if best == Some(soon) {
                return (best, false);
            }
        }
        for e in sh.engines.iter().flatten() {
            let ccbus = &sh.clusters[e.cluster().0 - sh.first_cluster].ccbus;
            best = min_event(best, e.next_event(now, ccbus, counters));
            if best == Some(soon) {
                return (best, false);
            }
        }
    }
    (best, all_done)
}

/// Why the parallel run loop stopped early. The loop cannot build a
/// [`MachineError::Deadlock`] itself — the hang report needs the engines
/// back inside the machine — so it breaks with this marker and the error
/// is materialized after reassembly.
enum Stop {
    Limit,
    Deadlock(&'static str),
    Faulted(CeId, String),
    /// Writing an auto-checkpoint failed (disk full, permissions).
    Snapshot(MachineError),
}

/// The parallel twin of `Machine::progress_verdict`: inspect the engines
/// inside the shards. `machine_event` is the full event horizon (networks,
/// memory, fault schedule, shards) at `now`.
fn shard_progress_verdict(
    shards: &[Mutex<Shard>],
    watchdog: &mut Watchdog,
    now: Cycle,
    machine_event: Option<Cycle>,
) -> Option<Stop> {
    watchdog.arm_next(now);
    let mut unfinished = 0usize;
    let mut sync_waiting = 0usize;
    for sm in shards {
        let sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for e in sh.engines.iter().flatten() {
            if let Some(reason) = e.fault_exhausted() {
                return Some(Stop::Faulted(e.id(), reason));
            }
            if !e.is_done() {
                unfinished += 1;
                if e.sync_blocked() {
                    sync_waiting += 1;
                }
            }
        }
    }
    // The caller only inspects while work remains (the loop head breaks
    // on completion), so a drained event horizon means a dead machine.
    if machine_event.is_none() {
        return Some(Stop::Deadlock("event starvation"));
    }
    if unfinished > 0 && sync_waiting == unfinished {
        watchdog.sync_stuck += 1;
        if watchdog.sync_stuck >= STUCK_SYNC_CHECKS {
            return Some(Stop::Deadlock("synchronization stall"));
        }
    } else {
        watchdog.sync_stuck = 0;
    }
    None
}

impl Machine {
    /// The parallel run loop: shard the clusters across
    /// `effective_threads` scoped workers and step the machine in
    /// lookahead-sized chunks with a two-barrier exchange per round. See
    /// the module docs for the chunking scheme and the determinism
    /// argument.
    ///
    /// Fast-forward runs on the coordinator after the exchange phase: at
    /// that point the machine state is exactly the serial engine's
    /// post-tick state, so the skip decision (and the bulk credit) is
    /// identical to the serial one. Jumping `now` between iterations is
    /// transparent to the parked workers — the cycle atomic is re-stored
    /// every round.
    pub(crate) fn run_loop_parallel(
        &mut self,
        start: Cycle,
        limit: u64,
        fastfwd: bool,
        watchdog: &mut Watchdog,
        ckpt: &mut Option<crate::snapshot::CkptCtl<'_>>,
    ) -> Result<()> {
        let threads = self.effective_threads();
        debug_assert!(threads > 1, "parallel loop needs two or more workers");
        let cpc = self.cfg.ces_per_cluster;
        let n_clusters = self.cfg.clusters;
        let ce_ports = n_clusters * cpc;
        // An explicit configured chunk length wins (tests pin lengths so
        // they stay meaningful under a CI env matrix); otherwise the
        // environment steers. 0 means the automatic lookahead bound.
        let chunk_cap = if self.cfg.chunk_cycles > 0 {
            self.cfg.chunk_cycles as u64
        } else {
            crate::env::chunk_cycles_from_env().unwrap_or(0) as u64
        };
        // Minimum module service time: the floor under every
        // request-to-reply bound in the horizon (sync requests only add
        // to it). Validation guarantees it is at least 1.
        let min_service = u64::from(self.cfg.global_memory.service_cycles);
        let queue_cap = self.forward.stage_queue_cap();
        let injector_cap = self.forward.injector_capacity();
        let prof_on = self.profiler.is_some();

        // Partition the clusters (and their engines) contiguously, as
        // evenly as possible.
        let mut cluster_iter = std::mem::take(&mut self.clusters).into_iter();
        let mut engine_iter = std::mem::take(&mut self.engines).into_iter();
        let mut shards: Vec<Mutex<Shard>> = Vec::with_capacity(threads);
        let mut cluster_of = Vec::with_capacity(n_clusters);
        let mut first_cluster = 0;
        for w in 0..threads {
            let count = n_clusters / threads + usize::from(w < n_clusters % threads);
            let clusters: Vec<Cluster> = cluster_iter.by_ref().take(count).collect();
            let engines: Vec<Option<CeEngine>> = engine_iter.by_ref().take(count * cpc).collect();
            let stages = (0..count * cpc)
                .map(|i| PortStage {
                    port: first_cluster * cpc + i,
                    cap: injector_cap,
                    down: false,
                    blocked: 0,
                    ring: [0; INJ_CAP],
                    ring_len: 0,
                    now: start,
                    staged: Vec::new(),
                    replayed: 0,
                })
                .collect();
            let done_since = engines
                .iter()
                .flatten()
                .all(CeEngine::is_done)
                .then_some(start);
            cluster_of.extend(std::iter::repeat_n(w, count));
            shards.push(Mutex::new(Shard {
                first_cluster,
                clusters,
                engines,
                stages,
                events: EventTracer::with_capacity(usize::MAX),
                events_cursor: 0,
                page_table: PageTable::new(),
                done_since,
            }));
            first_cluster += count;
        }

        let (result, chunked) = {
            let Machine {
                cfg,
                now,
                forward,
                reverse,
                gmem,
                counters,
                barriers,
                tracer,
                latency_histogram,
                timeline,
                util_scratch,
                fastfwd_skipped,
                fault_sched,
                profiler,
                page_table,
                trace_store,
                next_sync_slot,
                next_bus_barrier_slot,
                program_meta,
                lowered,
                ..
            } = &mut *self;
            let counters: &[CounterDef] = counters;
            let barriers: &[BarrierDef] = barriers;
            let go = SpinBarrier::new(threads);
            let handoff = SpinBarrier::new(threads);
            let stop = AtomicBool::new(false);
            // One round's work order for the workers: run cycles
            // `base+1 ..= base+len` (`len > 1` implies a chunked round,
            // which drains the shadow injector rings).
            let cycle = AtomicU64::new(now.0);
            let chunk_len = AtomicU64::new(1);
            let sync_waits: Vec<SyncWait> = (0..threads)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect();
            let shards = &shards;

            let scoped = std::thread::scope(|s| {
                for (w, shard) in shards.iter().enumerate().skip(1) {
                    let (go, handoff, stop) = (&go, &handoff, &stop);
                    let (cycle, chunk_len) = (&cycle, &chunk_len);
                    let acc = prof_on.then(|| &sync_waits[w]);
                    s.spawn(move || loop {
                        timed_wait(go, acc);
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let base = cycle.load(Ordering::Acquire);
                        let len = chunk_len.load(Ordering::Acquire);
                        let mut sh = shard
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        for k in 1..=len {
                            sh.tick(Cycle(base + k), len > 1, counters, barriers);
                        }
                        drop(sh);
                        timed_wait(handoff, acc);
                    });
                }

                // A coordinator panic (e.g. a violated debug assertion)
                // would unwind into the scope's implicit join while the
                // workers spin at `go`; release them first or the join
                // never returns. This covers the between-rounds window,
                // where every coordinator-side assertion lives — a panic
                // inside a shard tick (on either side of the
                // `go`/`handoff` pair) still hangs, as it must under any
                // barrier scheme.
                struct ReleaseOnPanic<'a> {
                    stop: &'a AtomicBool,
                    go: &'a SpinBarrier,
                    armed: bool,
                }
                impl Drop for ReleaseOnPanic<'_> {
                    fn drop(&mut self) {
                        if self.armed {
                            self.stop.store(true, Ordering::Release);
                            self.go.wait();
                        }
                    }
                }
                let mut guard = ReleaseOnPanic {
                    stop: &stop,
                    go: &go,
                    armed: true,
                };

                let acc0 = prof_on.then(|| &sync_waits[0]);
                let mut rounds = 0u64;
                let mut last_chunk = 1u64;
                let result = loop {
                    // Direct engine doneness, not the tick-maintained
                    // `done_since` marker: an engine can finish during a
                    // fast-forward skip, between shard ticks, which the
                    // marker cannot observe.
                    let ces_done = shards.iter().all(|s| {
                        s.lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .engines
                            .iter()
                            .flatten()
                            .all(CeEngine::is_done)
                    });
                    if ces_done && forward.is_idle() && reverse.is_idle() && gmem.is_idle() {
                        break Ok(());
                    }
                    // Watchdog before the budget check, as in the serial
                    // loop: a true deadlock surfaces as `Deadlock`.
                    if watchdog.due(*now) {
                        let t = *now;
                        let mut ev = min_event(forward.next_event(t), reverse.next_event(t));
                        ev = min_event(ev, gmem.next_event(t));
                        if let Some(fs) = fault_sched.as_ref() {
                            ev = min_event(ev, fs.next_event(t));
                        }
                        let (shard_ev, _) = next_shard_event(shards, t, counters);
                        ev = min_event(ev, shard_ev);
                        if let Some(stop) = shard_progress_verdict(shards, watchdog, t, ev) {
                            break Err(stop);
                        }
                    }
                    if now.saturating_since(start) > limit {
                        break Err(Stop::Limit);
                    }

                    // Chunk scheduling: the delivery-free horizon — the
                    // minimum over every source that could put a reply
                    // into the reverse network (module-doc derivation) —
                    // clamped by every event that must land on its exact
                    // cycle.
                    let t0 = *now;
                    let mut l: u64 = if !reverse.is_idle() {
                        0
                    } else {
                        // A fresh CE request staged at t0+1: injector
                        // drain at t0+2, module delivery at t0+3, then
                        // service and the 1-word-reply delivery bound.
                        let mut h = min_service + 4;
                        if !forward.is_idle() {
                            // An in-flight request: module delivery at
                            // t0+1, service pickup at t0+2.
                            h = h.min(min_service + 2);
                        }
                        if let Some(ev) = gmem.next_event(t0) {
                            // A busy module: its earliest visible action
                            // is the reply injection itself, and a 1-word
                            // reply delivers the cycle after.
                            h = h.min(ev.saturating_since(t0));
                        }
                        h
                    };
                    if l > 1 {
                        if chunk_cap > 0 {
                            l = l.min(chunk_cap);
                        }
                        l = l.min(watchdog.next_check().saturating_since(t0));
                        l = l.min(timeline.next_boundary().saturating_since(t0));
                        l = l.min(
                            start
                                .0
                                .saturating_add(limit)
                                .saturating_add(1)
                                .saturating_sub(t0.0),
                        );
                        if let Some(fs) = fault_sched.as_ref() {
                            if let Some(ev) = fs.next_event(t0) {
                                l = l.min(ev.saturating_since(t0).saturating_sub(1));
                            }
                        }
                        // Injector headroom: the shadow drain is one word
                        // per cycle only while the real drain can't block
                        // on a full stage-0 queue. The +1 when the ring
                        // starts empty reflects that the first staged
                        // packet reaches the real ring a cycle later.
                        for port in 0..ce_ports {
                            if l <= 1 {
                                break;
                            }
                            let room = (queue_cap - forward.stage0_queue_len(port)) as u64
                                + u64::from(forward.injector_len(port) == 0);
                            l = l.min(room);
                        }
                    }

                    last_chunk = l.max(1);
                    if l <= 1 {
                        // ---- Per-cycle round (the CEDAR_CHUNK_CYCLES=1
                        // hatch). Serial phases first, in the serial
                        // engine's order: fault schedule, memory, reverse
                        // network (delivering into shard engines),
                        // forward network.
                        *now += 1;
                        let t = *now;
                        forward.set_trace_now(t);
                        reverse.set_trace_now(t);
                        if let Some(fs) = fault_sched.as_mut() {
                            profiled(profiler, region::FAULTS, || {
                                fs.apply_due(t, forward, reverse, gmem);
                            });
                        }
                        profiled(profiler, region::GMEM, || gmem.tick(t, reverse));
                        profiled(profiler, region::REVERSE, || {
                            let mut sink = ShardCeSink {
                                shards,
                                cluster_of: &cluster_of,
                                ces_per_cluster: cpc,
                                histogram: latency_histogram,
                                now: t,
                            };
                            // Constant epoch: the CE side always accepts.
                            reverse.tick_epoch(&mut sink, 0);
                        });
                        profiled(profiler, region::FORWARD, || {
                            let epoch = gmem.accept_epoch();
                            forward.tick_epoch(&mut *gmem, epoch);
                        });
                        // Freeze this cycle's injector state into the
                        // staging buffers (post-tick occupancy; the ring
                        // word counts are not consulted without drain).
                        for sm in shards.iter() {
                            let mut sh =
                                sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            for st in &mut sh.stages {
                                st.down = forward.port_link_down(st.port);
                                st.ring_len = forward.injector_len(st.port);
                                debug_assert!(st.staged.is_empty(), "stage not drained");
                            }
                        }
                        cycle.store(t0.0, Ordering::Release);
                        chunk_len.store(1, Ordering::Release);

                        // Cluster phase: all workers (this thread is
                        // shard 0's).
                        timed_wait(&go, acc0);
                        profiled(profiler, region::CLUSTER, || {
                            shards[0]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .tick(t, false, counters, barriers);
                        });
                        timed_wait(&handoff, acc0);

                        // Exchange phase: replay staged traffic in
                        // (cluster, CE) order — the serial engine's exact
                        // order — and merge trace events likewise.
                        profiled(profiler, region::EXCHANGE, || {
                            let mut blocked = 0u64;
                            for sm in shards.iter() {
                                let mut sh =
                                    sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                                let Shard {
                                    stages,
                                    events,
                                    events_cursor,
                                    ..
                                } = &mut *sh;
                                for st in stages.iter_mut() {
                                    for (_, pkt) in st.staged.drain(..) {
                                        let accepted = forward.try_inject(st.port, pkt);
                                        debug_assert!(
                                            accepted,
                                            "staged injection exceeded capacity"
                                        );
                                    }
                                    blocked += std::mem::take(&mut st.blocked);
                                }
                                for &(at, tag) in events.events() {
                                    tracer.post(at, tag);
                                }
                                events.clear();
                                *events_cursor = 0;
                            }
                            if blocked > 0 {
                                forward.add_link_blocked(blocked);
                            }
                        });
                    } else {
                        // ---- Chunked round: workers run `l` cycles of
                        // pure cluster work; the coordinator then replays
                        // the shared components per cycle.
                        for sm in shards.iter() {
                            let mut sh =
                                sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            for st in &mut sh.stages {
                                st.down = forward.port_link_down(st.port);
                                let (ring, len) = forward.injector_backlog(st.port);
                                st.ring = ring;
                                st.ring_len = len;
                                debug_assert!(st.staged.is_empty(), "stage not drained");
                            }
                        }
                        cycle.store(t0.0, Ordering::Release);
                        chunk_len.store(l, Ordering::Release);

                        timed_wait(&go, acc0);
                        profiled(profiler, region::CLUSTER, || {
                            let mut sh = shards[0]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            for k in 1..=l {
                                sh.tick(Cycle(t0.0 + k), true, counters, barriers);
                            }
                        });
                        timed_wait(&handoff, acc0);

                        // Replay: the shared components observe the exact
                        // serial call sequence for each chunk cycle, with
                        // that cycle's staged injections and trace events
                        // applied in (cluster, CE) order afterwards.
                        #[cfg(debug_assertions)]
                        let delivered_before = reverse.stats().packets_delivered;
                        let chunk_end = Cycle(t0.0 + l);
                        let mut completed = false;
                        while *now < chunk_end && !completed {
                            *now += 1;
                            let u = *now;
                            forward.set_trace_now(u);
                            reverse.set_trace_now(u);
                            if let Some(fs) = fault_sched.as_mut() {
                                profiled(profiler, region::FAULTS, || {
                                    fs.apply_due(u, forward, reverse, gmem);
                                });
                            }
                            profiled(profiler, region::GMEM, || gmem.tick(u, reverse));
                            profiled(profiler, region::REVERSE, || {
                                let mut sink = ShardCeSink {
                                    shards,
                                    cluster_of: &cluster_of,
                                    ces_per_cluster: cpc,
                                    histogram: latency_histogram,
                                    now: u,
                                };
                                reverse.tick_epoch(&mut sink, 0);
                            });
                            #[cfg(debug_assertions)]
                            debug_assert_eq!(
                                reverse.stats().packets_delivered,
                                delivered_before,
                                "lookahead violated: a delivery landed at cycle {} \
                                 inside the chunk t0={} l={l}",
                                u.0,
                                t0.0,
                            );
                            profiled(profiler, region::FORWARD, || {
                                let epoch = gmem.accept_epoch();
                                forward.tick_epoch(&mut *gmem, epoch);
                            });
                            profiled(profiler, region::EXCHANGE, || {
                                let mut all_done = true;
                                for sm in shards.iter() {
                                    let mut sh = sm
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    all_done &= sh.done_since.is_some_and(|d| d <= u);
                                    let Shard {
                                        stages,
                                        events,
                                        events_cursor,
                                        ..
                                    } = &mut *sh;
                                    for st in stages.iter_mut() {
                                        while let Some(&(at, pkt)) = st.staged.get(st.replayed) {
                                            if at != u {
                                                break;
                                            }
                                            let accepted = forward.try_inject(st.port, pkt);
                                            debug_assert!(
                                                accepted,
                                                "staged injection exceeded capacity"
                                            );
                                            st.replayed += 1;
                                        }
                                    }
                                    let evs = events.events();
                                    while let Some(&(at, tag)) = evs.get(*events_cursor) {
                                        if at != u {
                                            break;
                                        }
                                        tracer.post(at, tag);
                                        *events_cursor += 1;
                                    }
                                }
                                // Stop replaying where the serial loop
                                // would stop ticking: everything done and
                                // drained at the end of cycle `u`.
                                if all_done
                                    && forward.is_idle()
                                    && reverse.is_idle()
                                    && gmem.is_idle()
                                {
                                    completed = true;
                                }
                            });
                        }
                        if completed && *now < chunk_end {
                            // The workers overshot the completion cycle;
                            // every overshot tick of a done engine is a
                            // pure `idle += 1`, so retract the overshoot
                            // and stats match the serial loop exactly.
                            let over = chunk_end.saturating_since(*now);
                            for sm in shards.iter() {
                                let mut sh =
                                    sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                                for e in sh.engines.iter_mut().flatten() {
                                    e.uncount_idle(over);
                                }
                            }
                        }
                        let mut blocked = 0u64;
                        for sm in shards.iter() {
                            let mut sh =
                                sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            let Shard {
                                stages,
                                events,
                                events_cursor,
                                ..
                            } = &mut *sh;
                            for st in stages.iter_mut() {
                                debug_assert_eq!(
                                    st.replayed,
                                    st.staged.len(),
                                    "unreplayed staged injection"
                                );
                                st.staged.clear();
                                st.replayed = 0;
                                blocked += std::mem::take(&mut st.blocked);
                            }
                            debug_assert_eq!(
                                *events_cursor,
                                events.events().len(),
                                "unmerged trace event"
                            );
                            events.clear();
                            *events_cursor = 0;
                        }
                        if blocked > 0 {
                            forward.add_link_blocked(blocked);
                        }
                    }
                    rounds += 1;

                    let t = *now;
                    if timeline.due(t) {
                        profiled(profiler, region::TIMELINE, || {
                            fill_shard_samples(shards, util_scratch);
                            timeline.record(util_scratch);
                        });
                    }

                    // Fast-forward: the state here equals the serial
                    // engine's post-tick state, so the same skip decision
                    // applies. Workers are parked at `go`; they observe
                    // nothing until the cycle atomic is stored again.
                    if fastfwd && forward.is_idle() && reverse.is_idle() {
                        let soon = t + 1;
                        let mut ev = gmem.next_event(t);
                        if ev != Some(soon) {
                            if let Some(fs) = fault_sched.as_ref() {
                                ev = min_event(ev, fs.next_event(t));
                            }
                        }
                        let mut ces_done = false;
                        if ev != Some(soon) {
                            let (shard_ev, done) = next_shard_event(shards, t, counters);
                            ev = min_event(ev, shard_ev);
                            ces_done = done;
                        }
                        let deadlock_cap = Cycle(start.0.saturating_add(limit).saturating_add(2));
                        let target = match ev {
                            Some(e) if e > soon => Some(e.min(deadlock_cap)),
                            Some(_) => None,
                            None if ces_done => None,
                            None => Some(deadlock_cap),
                        };
                        if let Some(target) = target {
                            profiled(profiler, region::FASTFWD, || {
                                while *now + 1 < target {
                                    let boundary = timeline.next_boundary();
                                    let chunk_end = boundary.min(Cycle(target.0 - 1)).max(*now + 1);
                                    let k = chunk_end - *now;
                                    gmem.skip(k);
                                    for sm in shards.iter() {
                                        let mut sh = sm
                                            .lock()
                                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                                        for e in sh.engines.iter_mut().flatten() {
                                            e.skip(*now, k);
                                        }
                                    }
                                    *fastfwd_skipped += k;
                                    *now = chunk_end;
                                    if timeline.due(*now) {
                                        fill_shard_samples(shards, util_scratch);
                                        timeline.record(util_scratch);
                                    }
                                }
                            });
                        }
                    }

                    // Auto-checkpoint, only ever at a chunk-exchange
                    // boundary: the workers are parked at `go`, every
                    // staged injection and trace event is drained, and
                    // the shard state equals the serial engine's
                    // post-tick state — walking the shards in order
                    // writes the exact payload the serial loop would.
                    if let Some(ck) = ckpt.as_mut() {
                        if *now >= ck.next {
                            let run = crate::snapshot::RunSnap {
                                start: ck.start,
                                limit: ck.limit,
                                wd_next_check: watchdog.next_check(),
                                wd_sync_stuck: watchdog.sync_stuck,
                                stats_start: ck.stats_start,
                            };
                            let ctx = crate::snapshot::SaveCtx {
                                cfg,
                                lowered: *lowered,
                                now: *now,
                                forward,
                                reverse,
                                gmem,
                                page_table,
                                tracer,
                                latency_histogram,
                                timeline,
                                fastfwd_skipped: *fastfwd_skipped,
                                fault_sched: fault_sched.as_ref(),
                                trace_store,
                                counters,
                                barriers,
                                next_sync_slot: *next_sync_slot,
                                next_bus_barrier_slot: *next_bus_barrier_slot,
                                program_meta: *program_meta,
                                run: Some(run),
                            };
                            let guards: Vec<_> = shards
                                .iter()
                                .map(|sm| {
                                    sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
                                })
                                .collect();
                            let payload = crate::snapshot::save_payload(
                                &ctx,
                                guards.iter().flat_map(|g| g.clusters.iter()),
                                guards.iter().flat_map(|g| g.engines.iter()),
                            );
                            drop(guards);
                            let image = crate::snapshot::frame_payload(&payload);
                            if let Err(e) = crate::snapshot::write_snapshot_file(&ck.path, &image) {
                                break Err(Stop::Snapshot(e));
                            }
                            ck.next = *now + ck.every;
                        }
                    }
                };
                guard.armed = false;
                stop.store(true, Ordering::Release);
                timed_wait(&go, acc0);
                if let Some(p) = profiler.as_deref_mut() {
                    for (w, (ns, waits)) in sync_waits.iter().enumerate() {
                        p.add_named(
                            &format!("sync_wait_w{w}"),
                            waits.load(Ordering::Relaxed),
                            ns.load(Ordering::Relaxed),
                        );
                    }
                    p.add_named("exchanges", rounds, 0);
                }
                (result, rounds, last_chunk)
            });

            let (result, rounds, last_chunk) = scoped;
            let worker_sync_waits: Vec<(usize, u64, u64)> = sync_waits
                .iter()
                .enumerate()
                .map(|(w, (ns, waits))| {
                    (w, waits.load(Ordering::Relaxed), ns.load(Ordering::Relaxed))
                })
                .collect();
            (
                result,
                ChunkedContext {
                    chunk_cycles: last_chunk,
                    exchanges: rounds,
                    worker_sync_waits,
                },
            )
        };

        // Reassemble the machine whether the run finished or stopped
        // early: `report`/`stats` — and a hang report — need the engines
        // back in place.
        for sm in shards {
            let sh = sm
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.clusters.extend(sh.clusters);
            self.engines.extend(sh.engines);
        }
        match result {
            Ok(()) => Ok(()),
            Err(Stop::Limit) => Err(MachineError::CycleLimitExceeded { limit }),
            Err(Stop::Deadlock(kind)) => {
                let mut report = self.hang_report(kind);
                report.chunked = Some(chunked);
                Err(MachineError::Deadlock {
                    report: Box::new(report),
                })
            }
            Err(Stop::Faulted(ce, reason)) => Err(MachineError::Faulted { ce, reason }),
            Err(Stop::Snapshot(e)) => Err(e),
        }
    }
}
